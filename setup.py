"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so PEP 517
editable installs (which need ``bdist_wheel``) are unavailable.  This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (or
``python setup.py develop``) install the package with plain setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
