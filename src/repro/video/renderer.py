"""Frame rendering: turning ground truth into pixel arrays.

The approximate filters in this reproduction are trained on pixels, exactly
as in the paper — they never see the simulator's ground truth directly (the
ground truth is only used to produce training labels, the role Mask R-CNN
plays in the paper).  The renderer therefore needs to produce frames in which
object classes are visually distinguishable but noisy enough that estimation
is a non-trivial learning problem: objects are drawn with class-specific
shapes and per-instance colors over a textured static background, objects can
overlap (occlusion), and per-frame sensor noise is added.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.objects import NAMED_COLORS, ObjectState
from repro.video.scene import FrameGroundTruth


@dataclass(frozen=True)
class RendererConfig:
    """Rendering parameters.

    ``output_size`` is the resolution (square) of the rendered array; it can
    be lower than the logical frame size — the filters operate on
    down-sampled input just like the paper resizes frames to the network
    input resolution (448x448 for YOLOv2).
    """

    output_size: int = 112
    background_color: tuple[int, int, int] = (90, 95, 100)
    background_texture: float = 6.0
    pixel_noise: float = 4.0
    draw_borders: bool = True
    seed: int = 0


class FrameRenderer:
    """Renders :class:`FrameGroundTruth` into ``(H, W, 3)`` uint8 arrays."""

    def __init__(self, config: RendererConfig | None = None) -> None:
        self._config = config or RendererConfig()
        self._background_cache: dict[tuple[int, int], np.ndarray] = {}

    @property
    def config(self) -> RendererConfig:
        return self._config

    # ------------------------------------------------------------------
    # Background
    # ------------------------------------------------------------------
    def _background(self, height: int, width: int) -> np.ndarray:
        """The static background of the (single, fixed) camera."""
        key = (height, width)
        cached = self._background_cache.get(key)
        if cached is not None:
            return cached
        config = self._config
        rng = np.random.default_rng(config.seed)
        base = np.empty((height, width, 3), dtype=np.float32)
        base[..., 0] = config.background_color[0]
        base[..., 1] = config.background_color[1]
        base[..., 2] = config.background_color[2]
        if config.background_texture > 0:
            texture = rng.normal(0.0, config.background_texture, size=(height, width, 1))
            base = base + texture
        # A couple of static structures (road / horizon bands) so the
        # background is not uniform; they are part of the fixed camera view.
        band_top = int(height * 0.55)
        base[band_top:, :, :] *= 0.85
        lane_y = int(height * 0.75)
        base[lane_y : lane_y + max(height // 60, 1), :, :] += 35.0
        background = np.clip(base, 0, 255)
        self._background_cache[key] = background
        return background

    # ------------------------------------------------------------------
    # Object drawing
    # ------------------------------------------------------------------
    @staticmethod
    def _scaled_box(
        state: ObjectState, scale_x: float, scale_y: float, width: int, height: int
    ) -> tuple[int, int, int, int] | None:
        box = state.box.scaled(scale_x, scale_y).clipped(width, height)
        if box is None:
            return None
        x_min = int(np.floor(box.x_min))
        y_min = int(np.floor(box.y_min))
        x_max = max(int(np.ceil(box.x_max)), x_min + 1)
        y_max = max(int(np.ceil(box.y_max)), y_min + 1)
        return x_min, y_min, min(x_max, width), min(y_max, height)

    def _draw_object(
        self,
        canvas: np.ndarray,
        state: ObjectState,
        scale_x: float,
        scale_y: float,
        rng: np.random.Generator,
    ) -> None:
        height, width = canvas.shape[:2]
        scaled = self._scaled_box(state, scale_x, scale_y, width, height)
        if scaled is None:
            return
        x_min, y_min, x_max, y_max = scaled
        color = np.array(NAMED_COLORS[state.color_name], dtype=np.float32)
        # Slight per-instance shading so identically colored objects still differ.
        shade = float(rng.uniform(0.85, 1.1))
        color = np.clip(color * shade, 0, 255)

        region = canvas[y_min:y_max, x_min:x_max, :]
        h, w = region.shape[:2]
        if h == 0 or w == 0:
            return

        if state.object_class.appearance.shape == "ellipse":
            yy, xx = np.mgrid[0:h, 0:w]
            cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
            ry, rx = max(h / 2.0, 1.0), max(w / 2.0, 1.0)
            mask = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 <= 1.0
        else:
            mask = np.ones((h, w), dtype=bool)

        region[mask] = color
        if self._config.draw_borders and min(h, w) >= 4:
            border = np.clip(color * 0.55, 0, 255)
            region[0, :, :][mask[0, :]] = border
            region[-1, :, :][mask[-1, :]] = border
            region[:, 0, :][mask[:, 0]] = border
            region[:, -1, :][mask[:, -1]] = border
        # Class-specific detail: vehicles get a darker "windshield" patch near
        # the top, which helps distinguish rectangles of similar colors.
        if state.object_class.appearance.shape == "rectangle" and h >= 6 and w >= 6:
            ws_h = max(h // 4, 1)
            ws_w = max(w // 2, 1)
            ws_x = (w - ws_w) // 2
            region[1 : 1 + ws_h, ws_x : ws_x + ws_w, :] = np.clip(color * 0.4, 0, 255)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def render(self, ground_truth: FrameGroundTruth) -> np.ndarray:
        """Render a frame to an ``(output_size, output_size, 3)`` uint8 array."""
        config = self._config
        size = config.output_size
        scale_x = size / ground_truth.frame_width
        scale_y = size / ground_truth.frame_height
        canvas = self._background(size, size).copy()
        # Deterministic per-frame randomness: shading and sensor noise depend
        # only on (seed, frame_index), so renders are reproducible.
        rng = np.random.default_rng((config.seed, ground_truth.frame_index))
        # Draw in order of the object's vertical position so nearer (lower)
        # objects occlude farther ones, a crude but consistent depth ordering.
        ordered = sorted(ground_truth.objects, key=lambda s: s.box.y_max)
        for state in ordered:
            self._draw_object(canvas, state, scale_x, scale_y, rng)
        if config.pixel_noise > 0:
            canvas = canvas + rng.normal(0.0, config.pixel_noise, size=canvas.shape)
        return np.clip(canvas, 0, 255).astype(np.uint8)
