"""Scene simulation: turning a dataset profile into frame-by-frame ground truth.

The simulator controls the per-frame object count directly: it draws a
smooth, autocorrelated target-count series whose mean and standard deviation
match the dataset profile (Table II), then keeps exactly that many tracked
objects alive at every frame by spawning new objects and retiring the oldest
ones.  This gives precise control over the count distribution — the single
most important statistic for the count filters — while the motion models give
objects realistic trajectories for the location filters and spatial queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.spatial.geometry import Box, Point
from repro.spatial.grid import Grid, GridMask
from repro.video.motion import LinearMotion, MotionModel, ParkedMotion, WanderMotion
from repro.video.objects import (
    ObjectClass,
    ObjectState,
    TrackedObject,
    default_class_registry,
)
from repro.video.synthesis import ClassMixEntry, DatasetProfile


@dataclass(frozen=True)
class FrameGroundTruth:
    """Everything that is true about a single frame."""

    frame_index: int
    objects: tuple[ObjectState, ...]
    frame_width: int
    frame_height: int

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of objects visible in the frame."""
        return len(self.objects)

    def count_of(self, class_name: str) -> int:
        """Number of objects of ``class_name`` in the frame."""
        return sum(1 for obj in self.objects if obj.class_name == class_name)

    def counts_by_class(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for obj in self.objects:
            counts[obj.class_name] = counts.get(obj.class_name, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Object access
    # ------------------------------------------------------------------
    def objects_of(self, class_name: str) -> list[ObjectState]:
        return [obj for obj in self.objects if obj.class_name == class_name]

    def boxes_of(self, class_name: str) -> list[Box]:
        return [obj.box for obj in self.objects_of(class_name)]

    def location_mask(self, grid: Grid, class_name: str) -> GridMask:
        """Ground-truth occupancy mask of ``class_name`` on ``grid``."""
        return grid.mask_from_boxes(self.boxes_of(class_name))

    def location_masks(self, grid: Grid, class_names: Sequence[str]) -> dict[str, GridMask]:
        return {name: self.location_mask(grid, name) for name in class_names}


@dataclass(frozen=True)
class SceneConfig:
    """Low-level scene parameters, usually derived from a :class:`DatasetProfile`."""

    frame_width: int
    frame_height: int
    num_frames: int
    mean_count: float
    std_count: float
    count_autocorrelation: float
    class_mix: tuple[ClassMixEntry, ...]
    max_count: int
    seed: int = 0

    @classmethod
    def from_profile(
        cls, profile: DatasetProfile, num_frames: int, seed: int = 0
    ) -> "SceneConfig":
        return cls(
            frame_width=profile.frame_width,
            frame_height=profile.frame_height,
            num_frames=num_frames,
            mean_count=profile.mean_objects_per_frame,
            std_count=profile.std_objects_per_frame,
            count_autocorrelation=profile.count_autocorrelation,
            class_mix=profile.classes,
            max_count=profile.max_objects_per_frame,
            seed=seed,
        )


class Scene:
    """A fully-materialised scene: tracked objects plus per-frame ground truth."""

    def __init__(
        self,
        config: SceneConfig,
        tracks: Sequence[TrackedObject],
        active_tracks_per_frame: Sequence[Sequence[int]],
    ) -> None:
        self._config = config
        self._tracks = list(tracks)
        self._active = [list(ids) for ids in active_tracks_per_frame]
        if len(self._active) != config.num_frames:
            raise ValueError(
                "active-track table length does not match the number of frames"
            )
        self._track_by_id = {track.track_id: track for track in self._tracks}

    @property
    def config(self) -> SceneConfig:
        return self._config

    @property
    def num_frames(self) -> int:
        return self._config.num_frames

    @property
    def frame_width(self) -> int:
        return self._config.frame_width

    @property
    def frame_height(self) -> int:
        return self._config.frame_height

    @property
    def tracks(self) -> list[TrackedObject]:
        return list(self._tracks)

    def ground_truth(self, frame_index: int) -> FrameGroundTruth:
        """The ground truth of frame ``frame_index``."""
        if not 0 <= frame_index < self.num_frames:
            raise IndexError(
                f"frame {frame_index} out of range [0, {self.num_frames})"
            )
        states = []
        for track_id in self._active[frame_index]:
            state = self._track_by_id[track_id].state_at(frame_index)
            if state is not None:
                states.append(state)
        return FrameGroundTruth(
            frame_index=frame_index,
            objects=tuple(states),
            frame_width=self.frame_width,
            frame_height=self.frame_height,
        )

    def iter_ground_truth(self) -> Iterable[FrameGroundTruth]:
        for index in range(self.num_frames):
            yield self.ground_truth(index)

    def count_series(self) -> np.ndarray:
        """Per-frame object counts (useful for validating dataset statistics)."""
        return np.array([len(self._active[i]) for i in range(self.num_frames)])


class SceneSimulator:
    """Generates a :class:`Scene` from a :class:`SceneConfig`.

    The simulation is deterministic given the seed, so datasets can be
    re-materialised identically across processes (training vs benchmarking).
    """

    def __init__(self, config: SceneConfig, class_registry: Mapping[str, ObjectClass] | None = None) -> None:
        self._config = config
        self._registry = dict(class_registry or default_class_registry())
        for entry in config.class_mix:
            if entry.class_name not in self._registry:
                raise KeyError(f"class {entry.class_name!r} missing from registry")

    # ------------------------------------------------------------------
    # Count process
    # ------------------------------------------------------------------
    def _target_counts(self, rng: np.random.Generator) -> np.ndarray:
        """A smooth integer count series with the configured mean and std."""
        config = self._config
        n = config.num_frames
        rho = config.count_autocorrelation
        # AR(1) process with stationary variance 1.
        innovations = rng.normal(0.0, np.sqrt(max(1.0 - rho**2, 1e-9)), size=n)
        latent = np.empty(n)
        latent[0] = rng.normal(0.0, 1.0)
        for i in range(1, n):
            latent[i] = rho * latent[i - 1] + innovations[i]
        # Standardise the realised path so that even short streams hit the
        # profile's mean / std (an un-standardised AR(1) path with high
        # autocorrelation wanders far from its stationary mean over a few
        # hundred frames, which would break the Table II reproduction).
        latent = latent - latent.mean()
        latent_std = latent.std()
        if latent_std > 1e-9:
            latent = latent / latent_std
        counts = config.mean_count + config.std_count * latent
        counts = np.clip(np.rint(counts), 0, config.max_count)
        return counts.astype(int)

    # ------------------------------------------------------------------
    # Track construction
    # ------------------------------------------------------------------
    def _sample_class(self, rng: np.random.Generator) -> ClassMixEntry:
        entries = self._config.class_mix
        weights = np.array([entry.frequency for entry in entries], dtype=float)
        weights = weights / weights.sum()
        index = int(rng.choice(len(entries), p=weights))
        return entries[index]

    def _make_motion(
        self,
        entry: ClassMixEntry,
        width: float,
        height: float,
        spawn_frame: int,
        rng: np.random.Generator,
    ) -> tuple[MotionModel, int]:
        """Build a motion model and a lifetime (in frames) for a new object."""
        config = self._config
        frame_w, frame_h = config.frame_width, config.frame_height
        style = entry.motion
        if style == "traffic" and rng.uniform() < entry.parked_probability:
            style = "parked"

        if style == "parked":
            position = Point(
                float(rng.uniform(width, frame_w - width)),
                float(rng.uniform(height, frame_h - height)),
            )
            lifetime = int(rng.integers(200, 2000))
            return ParkedMotion(position=position, jitter=0.3, seed=int(rng.integers(1 << 30))), lifetime

        if style == "wander":
            anchor = Point(
                float(rng.uniform(width, frame_w - width)),
                float(rng.uniform(height, frame_h - height)),
            )
            radius = float(rng.uniform(0.05, 0.2)) * min(frame_w, frame_h)
            lifetime = int(rng.integers(100, 800))
            return (
                WanderMotion(anchor=anchor, radius=radius, speed=1.0, seed=int(rng.integers(1 << 30))),
                lifetime,
            )

        if style == "walk":
            # Pedestrians cross the frame slowly along one of two sidewalk
            # bands (top and bottom of the visible area).
            speed = float(rng.uniform(0.4, 1.2))
            direction = 1 if rng.uniform() < 0.5 else -1
            band_low = rng.uniform() < 0.5
            y_fraction = rng.uniform(0.86, 0.95) if band_low else rng.uniform(0.08, 0.18)
            y = float(frame_h * y_fraction)
            start_x = -width if direction > 0 else frame_w + width
            start = Point(start_x, y)
            velocity = (direction * speed, float(rng.normal(0.0, 0.05)))
            travel = frame_w + 2 * width
            lifetime = max(int(travel / speed), 2)
            return LinearMotion(start=start, velocity=velocity), lifetime

        # Traffic: drive across the frame horizontally or vertically.  Vehicles
        # follow lanes, and every lane has a fixed direction and a shared base
        # speed (vehicles in the same lane move together, as real traffic
        # does), which keeps vehicles from driving through one another and
        # keeps occlusion at realistic levels even in dense scenes.
        horizontal = bool(rng.uniform() < 0.75)
        num_lanes = 7
        lane = int(rng.integers(num_lanes))
        lane_rng = np.random.default_rng((self._config.seed, lane, int(horizontal)))
        direction = 1 if lane % 2 == 0 else -1
        lane_speed = float(lane_rng.uniform(1.5, 4.5))
        speed = lane_speed * float(rng.uniform(0.97, 1.03))
        if horizontal:
            lane_span = frame_h * (0.85 - 0.2)
            y = frame_h * 0.2 + (lane + 0.5) * lane_span / num_lanes
            y += float(rng.normal(0.0, lane_span / (10 * num_lanes)))
            start_x = -width if direction > 0 else frame_w + width
            start = Point(start_x, float(y))
            velocity = (direction * speed, 0.0)
            travel = frame_w + 2 * width
        else:
            lane_span = frame_w * (0.85 - 0.15)
            x = frame_w * 0.15 + (lane + 0.5) * lane_span / num_lanes
            x += float(rng.normal(0.0, lane_span / (10 * num_lanes)))
            start_y = -height if direction > 0 else frame_h + height
            start = Point(float(x), start_y)
            velocity = (0.0, direction * speed)
            travel = frame_h + 2 * height
        lifetime = max(int(travel / speed), 2)
        return LinearMotion(start=start, velocity=velocity), lifetime

    def _spawn_track(
        self, track_id: int, spawn_frame: int, rng: np.random.Generator
    ) -> TrackedObject:
        entry = self._sample_class(rng)
        object_class = self._registry[entry.class_name]
        width, height, color = object_class.appearance.sample(rng)
        motion, lifetime = self._make_motion(entry, width, height, spawn_frame, rng)
        return TrackedObject(
            track_id=track_id,
            object_class=object_class,
            width=width,
            height=height,
            color_name=color,
            spawn_frame=spawn_frame,
            despawn_frame=spawn_frame + lifetime,
            motion=motion,
        )

    def _visible(self, track: TrackedObject, frame_index: int) -> bool:
        state = track.state_at(frame_index)
        if state is None:
            return False
        return (
            state.box.clipped(self._config.frame_width, self._config.frame_height)
            is not None
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self) -> Scene:
        """Run the simulation and return the materialised scene."""
        config = self._config
        rng = np.random.default_rng(config.seed)
        target_counts = self._target_counts(rng)

        tracks: list[TrackedObject] = []
        active_ids: list[int] = []
        active_per_frame: list[list[int]] = []
        next_track_id = 0

        for frame_index in range(config.num_frames):
            # Retire tracks that died or left the frame.
            active_ids = [
                track_id
                for track_id in active_ids
                if self._visible(tracks[track_id], frame_index)
            ]
            target = int(target_counts[frame_index])
            # Spawn to reach the target count.
            attempts = 0
            while len(active_ids) < target and attempts < 10 * config.max_count:
                attempts += 1
                track = self._spawn_track(next_track_id, frame_index, rng)
                tracks.append(track)
                next_track_id += 1
                if self._visible(track, frame_index):
                    active_ids.append(track.track_id)
                else:
                    # Traffic objects spawn just outside the frame; pull their
                    # spawn time back so they are already visible now, and add
                    # a random extra head start so that simultaneously spawned
                    # objects appear spread across the frame instead of
                    # stacked on top of each other at the entry edge.
                    frames_to_enter = self._frames_to_enter(track)
                    lifetime = track.despawn_frame - track.spawn_frame
                    max_extra = max(lifetime - frames_to_enter - 2, 0)
                    extra = int(rng.integers(0, max_extra + 1)) if max_extra > 0 else 0
                    adjusted = TrackedObject(
                        track_id=track.track_id,
                        object_class=track.object_class,
                        width=track.width,
                        height=track.height,
                        color_name=track.color_name,
                        spawn_frame=track.spawn_frame - frames_to_enter - extra,
                        despawn_frame=track.despawn_frame,
                        motion=track.motion,
                    )
                    if not self._visible(adjusted, frame_index):
                        adjusted = TrackedObject(
                            track_id=track.track_id,
                            object_class=track.object_class,
                            width=track.width,
                            height=track.height,
                            color_name=track.color_name,
                            spawn_frame=track.spawn_frame - frames_to_enter,
                            despawn_frame=track.despawn_frame,
                            motion=track.motion,
                        )
                    tracks[track.track_id] = adjusted
                    if self._visible(adjusted, frame_index):
                        active_ids.append(adjusted.track_id)
            # Retire the oldest tracks when above the target.
            if len(active_ids) > target:
                surplus = len(active_ids) - target
                active_ids = active_ids[surplus:]
            active_per_frame.append(list(active_ids))

        return Scene(config=config, tracks=tracks, active_tracks_per_frame=active_per_frame)

    def _frames_to_enter(self, track: TrackedObject) -> int:
        """How many frames until a freshly spawned off-screen object becomes visible."""
        for age in range(1, 400):
            state_frame = track.spawn_frame + age
            if track.state_at(state_frame) is None:
                break
            state = track.state_at(state_frame)
            if state is not None and state.box.clipped(
                self._config.frame_width, self._config.frame_height
            ) is not None:
                return age
        return 0
