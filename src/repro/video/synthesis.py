"""Dataset profiles: the knobs that make a synthetic stream look like Coral / Jackson / Detrac.

A :class:`DatasetProfile` captures everything the paper reports about a video
dataset in Table II — which object classes appear, their relative frequency,
and the mean / standard deviation of the number of objects per frame — plus
the behavioural knobs (motion style, arrival burstiness) needed to make the
synthetic stream a plausible stand-in.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClassMixEntry:
    """One object class participating in a dataset.

    ``frequency`` is the relative share of object instances belonging to this
    class (Table II reports e.g. car 92% / bus 6% / truck 2% for Detrac).
    ``motion`` selects the behaviour of spawned objects:

    * ``"traffic"`` — drive across the frame in a lane;
    * ``"walk"``    — cross the frame slowly along a sidewalk band (pedestrians);
    * ``"wander"``  — move smoothly around an anchor (fish, loitering people);
    * ``"parked"``  — stay still for the whole lifetime.

    ``parked_probability`` lets a traffic class occasionally produce a parked
    instance (the aggregate-query scenario of a car parked next to a stop
    sign).
    """

    class_name: str
    frequency: float
    motion: str = "traffic"
    speed_range: tuple[float, float] = (1.5, 4.0)
    parked_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError(f"class frequency must be positive: {self.frequency}")
        if self.motion not in ("traffic", "walk", "wander", "parked"):
            raise ValueError(f"unknown motion style: {self.motion!r}")
        if not 0.0 <= self.parked_probability <= 1.0:
            raise ValueError(
                f"parked_probability must be in [0, 1]: {self.parked_probability}"
            )


@dataclass(frozen=True)
class DatasetProfile:
    """Statistical profile of a video dataset.

    ``mean_objects_per_frame`` / ``std_objects_per_frame`` drive the per-frame
    count process; ``count_autocorrelation`` controls how smoothly the count
    evolves from frame to frame (real traffic changes slowly, so counts are
    strongly autocorrelated).  ``paper_train_size`` / ``paper_test_size``
    record the sizes reported in Table II; ``default_train_size`` /
    ``default_test_size`` are the scaled-down sizes used by tests and
    benchmarks so that the full pipeline runs in seconds on a laptop CPU.
    """

    name: str
    description: str
    classes: tuple[ClassMixEntry, ...]
    mean_objects_per_frame: float
    std_objects_per_frame: float
    frame_width: int = 448
    frame_height: int = 448
    fps: int = 30
    count_autocorrelation: float = 0.98
    max_objects_per_frame: int = 60
    background_color: tuple[int, int, int] = (90, 95, 100)
    background_texture: float = 6.0
    paper_train_size: int = 0
    paper_test_size: int = 0
    default_train_size: int = 1500
    default_val_size: int = 300
    default_test_size: int = 600

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a dataset profile needs at least one class")
        if self.mean_objects_per_frame < 0 or self.std_objects_per_frame < 0:
            raise ValueError("count statistics must be non-negative")
        if not 0.0 <= self.count_autocorrelation < 1.0:
            raise ValueError(
                f"count_autocorrelation must be in [0, 1): {self.count_autocorrelation}"
            )
        if self.max_objects_per_frame <= 0:
            raise ValueError("max_objects_per_frame must be positive")

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(entry.class_name for entry in self.classes)

    @property
    def class_frequencies(self) -> dict[str, float]:
        """Class mix normalised to sum to 1."""
        total = sum(entry.frequency for entry in self.classes)
        return {entry.class_name: entry.frequency / total for entry in self.classes}

    def entry_for(self, class_name: str) -> ClassMixEntry:
        for entry in self.classes:
            if entry.class_name == class_name:
                return entry
        raise KeyError(f"class {class_name!r} not part of profile {self.name!r}")

    def scaled(
        self,
        train_size: int | None = None,
        val_size: int | None = None,
        test_size: int | None = None,
    ) -> "DatasetProfile":
        """A copy of the profile with different default split sizes."""
        from dataclasses import replace

        return replace(
            self,
            default_train_size=train_size if train_size is not None else self.default_train_size,
            default_val_size=val_size if val_size is not None else self.default_val_size,
            default_test_size=test_size if test_size is not None else self.default_test_size,
        )
