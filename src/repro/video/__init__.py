"""Synthetic single-static-camera video substrate.

The paper evaluates on three real surveillance video datasets (Coral, Jackson
town square, Detrac).  Those videos are not redistributable and are annotated
with a GPU object detector, so this package provides the substitute described
in DESIGN.md: a parameterised scene simulator whose per-frame object count
distribution, class mix and motion behaviour match the statistics the paper
reports in Table II, together with a pixel renderer that draws class-
distinctive objects so that the approximate filters face an honest learning
problem on real pixel input.
"""

from repro.video.objects import (
    AppearanceModel,
    ObjectClass,
    ObjectState,
    TrackedObject,
    default_class_registry,
)
from repro.video.motion import (
    LinearMotion,
    MotionModel,
    ParkedMotion,
    WanderMotion,
    WaypointMotion,
)
from repro.video.scene import FrameGroundTruth, Scene, SceneConfig, SceneSimulator
from repro.video.synthesis import ClassMixEntry, DatasetProfile
from repro.video.renderer import FrameRenderer, RendererConfig
from repro.video.stream import Frame, VideoDataset, VideoStream
from repro.video.datasets import (
    CORAL_PROFILE,
    DETRAC_PROFILE,
    JACKSON_PROFILE,
    build_coral,
    build_dataset,
    build_detrac,
    build_jackson,
    dataset_profiles,
)

__all__ = [
    "AppearanceModel",
    "ObjectClass",
    "ObjectState",
    "TrackedObject",
    "default_class_registry",
    "MotionModel",
    "LinearMotion",
    "ParkedMotion",
    "WanderMotion",
    "WaypointMotion",
    "Scene",
    "SceneConfig",
    "SceneSimulator",
    "FrameGroundTruth",
    "ClassMixEntry",
    "DatasetProfile",
    "FrameRenderer",
    "RendererConfig",
    "Frame",
    "VideoStream",
    "VideoDataset",
    "CORAL_PROFILE",
    "JACKSON_PROFILE",
    "DETRAC_PROFILE",
    "build_coral",
    "build_jackson",
    "build_detrac",
    "build_dataset",
    "dataset_profiles",
]
