"""Object classes, appearances and tracked objects.

Every object in a synthetic scene belongs to an :class:`ObjectClass` (car,
truck, bus, person, fish, ...) with a class-specific appearance model: a size
range, an aspect ratio, a shape ("rectangle" for vehicles, "ellipse" for
people/fish) and a palette of plausible colors.  Individual objects draw a
concrete size and color when they are spawned and keep them for their entire
lifetime, which is what allows queries such as "red car" to be meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.spatial.geometry import Box, Point


# Named colors used both by the renderer (RGB values) and by queries
# ("vehColor = red").  Values are uint8 RGB.
NAMED_COLORS: dict[str, tuple[int, int, int]] = {
    "red": (200, 40, 40),
    "blue": (40, 70, 200),
    "green": (40, 160, 60),
    "white": (230, 230, 230),
    "black": (30, 30, 30),
    "silver": (170, 175, 180),
    "yellow": (220, 200, 40),
    "orange": (230, 140, 30),
}


@dataclass(frozen=True)
class AppearanceModel:
    """How objects of a class look on screen."""

    shape: str  # "rectangle" or "ellipse"
    width_range: tuple[float, float]
    aspect_ratio_range: tuple[float, float]  # height / width
    color_names: tuple[str, ...]
    color_weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.shape not in ("rectangle", "ellipse"):
            raise ValueError(f"unknown shape: {self.shape!r}")
        if self.width_range[0] <= 0 or self.width_range[1] < self.width_range[0]:
            raise ValueError(f"invalid width range: {self.width_range}")
        if not self.color_names:
            raise ValueError("appearance needs at least one color")
        for name in self.color_names:
            if name not in NAMED_COLORS:
                raise ValueError(f"unknown color name: {name!r}")
        if self.color_weights is not None and len(self.color_weights) != len(
            self.color_names
        ):
            raise ValueError("color_weights length must match color_names")

    def sample(self, rng: np.random.Generator) -> tuple[float, float, str]:
        """Draw ``(width, height, color_name)`` for a new object instance."""
        width = float(rng.uniform(*self.width_range))
        aspect = float(rng.uniform(*self.aspect_ratio_range))
        if self.color_weights is None:
            color = str(rng.choice(list(self.color_names)))
        else:
            weights = np.asarray(self.color_weights, dtype=float)
            weights = weights / weights.sum()
            color = str(rng.choice(list(self.color_names), p=weights))
        return width, width * aspect, color


@dataclass(frozen=True)
class ObjectClass:
    """A detectable object class (car, person, ...)."""

    name: str
    appearance: AppearanceModel
    class_id: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def default_class_registry() -> dict[str, ObjectClass]:
    """The object classes used by the three dataset profiles.

    Appearance parameters are chosen so that classes are visually separable
    (different shapes / palettes / sizes), mirroring the real datasets where
    cars, buses, trucks and people are clearly distinguishable at typical
    surveillance resolutions (an explicit scoping assumption in the paper).
    """
    classes = {
        # Palettes are chosen with limited overlap between classes that share
        # a dataset: the paper's stated scope is surveillance video where
        # object classes are clearly distinguishable at typical resolutions,
        # and our per-cell features are far weaker than a pretrained CNN's,
        # so class identity is carried mainly by color and size.
        "car": ObjectClass(
            name="car",
            class_id=0,
            appearance=AppearanceModel(
                shape="rectangle",
                width_range=(28.0, 52.0),
                aspect_ratio_range=(0.45, 0.65),
                color_names=("blue", "white", "black", "silver"),
                color_weights=(0.3, 0.25, 0.2, 0.25),
            ),
        ),
        "bus": ObjectClass(
            name="bus",
            class_id=1,
            appearance=AppearanceModel(
                shape="rectangle",
                width_range=(75.0, 115.0),
                aspect_ratio_range=(0.35, 0.5),
                color_names=("yellow", "green"),
                color_weights=(0.7, 0.3),
            ),
        ),
        "truck": ObjectClass(
            name="truck",
            class_id=2,
            appearance=AppearanceModel(
                shape="rectangle",
                width_range=(55.0, 90.0),
                aspect_ratio_range=(0.55, 0.85),
                color_names=("orange",),
                color_weights=(1.0,),
            ),
        ),
        "person": ObjectClass(
            name="person",
            class_id=3,
            appearance=AppearanceModel(
                shape="ellipse",
                width_range=(10.0, 18.0),
                aspect_ratio_range=(2.2, 3.0),
                color_names=("red", "green"),
            ),
        ),
        "fish": ObjectClass(
            name="fish",
            class_id=4,
            appearance=AppearanceModel(
                shape="ellipse",
                width_range=(16.0, 34.0),
                aspect_ratio_range=(0.35, 0.55),
                color_names=("orange", "yellow", "silver", "blue"),
            ),
        ),
        "bicycle": ObjectClass(
            name="bicycle",
            class_id=5,
            appearance=AppearanceModel(
                shape="ellipse",
                width_range=(16.0, 26.0),
                aspect_ratio_range=(1.2, 1.8),
                color_names=("red", "black"),
            ),
        ),
    }
    return classes


@dataclass(frozen=True)
class ObjectState:
    """The state of a single object at a single frame: where it is and what it is."""

    track_id: int
    object_class: ObjectClass
    box: Box
    color_name: str
    occluded_fraction: float = 0.0

    @property
    def center(self) -> Point:
        return self.box.center

    @property
    def class_name(self) -> str:
        return self.object_class.name


@dataclass
class TrackedObject:
    """An object with a lifetime, an appearance and a motion model.

    The scene simulator creates tracked objects and asks them for their state
    at each frame between ``spawn_frame`` (inclusive) and ``despawn_frame``
    (exclusive).
    """

    track_id: int
    object_class: ObjectClass
    width: float
    height: float
    color_name: str
    spawn_frame: int
    despawn_frame: int
    motion: "MotionModelProtocol"
    metadata: Mapping[str, object] = field(default_factory=dict)

    def alive_at(self, frame_index: int) -> bool:
        return self.spawn_frame <= frame_index < self.despawn_frame

    def state_at(self, frame_index: int) -> ObjectState | None:
        """The object's state at ``frame_index`` or ``None`` when not alive."""
        if not self.alive_at(frame_index):
            return None
        center = self.motion.position_at(frame_index - self.spawn_frame)
        box = Box.from_center(center.x, center.y, self.width, self.height)
        return ObjectState(
            track_id=self.track_id,
            object_class=self.object_class,
            box=box,
            color_name=self.color_name,
        )


class MotionModelProtocol:
    """Structural protocol for motion models (see :mod:`repro.video.motion`)."""

    def position_at(self, age: int) -> Point:  # pragma: no cover - interface
        raise NotImplementedError
