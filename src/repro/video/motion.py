"""Motion models for tracked objects.

A motion model answers "where is the object's center ``age`` frames after it
was spawned".  The models cover the behaviours seen in the paper's
surveillance settings: vehicles driving through the scene (linear), parked
vehicles (the aggregate-query example of a car next to a stop sign for 10
minutes), pedestrians and fish wandering, and vehicles following a road
polyline (waypoints).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spatial.geometry import Point


class MotionModel:
    """Base class; subclasses implement :meth:`position_at`."""

    def position_at(self, age: int) -> Point:
        raise NotImplementedError


@dataclass(frozen=True)
class LinearMotion(MotionModel):
    """Constant-velocity motion from a starting point."""

    start: Point
    velocity: tuple[float, float]  # pixels per frame

    def position_at(self, age: int) -> Point:
        if age < 0:
            raise ValueError(f"age must be non-negative: {age}")
        return Point(
            self.start.x + self.velocity[0] * age,
            self.start.y + self.velocity[1] * age,
        )


@dataclass(frozen=True)
class ParkedMotion(MotionModel):
    """An object that stays (almost) still, with optional tiny jitter.

    Jitter is deterministic (seeded) so that a scene replays identically.
    """

    position: Point
    jitter: float = 0.0
    seed: int = 0

    def position_at(self, age: int) -> Point:
        if age < 0:
            raise ValueError(f"age must be non-negative: {age}")
        if self.jitter <= 0:
            return self.position
        rng = np.random.default_rng(self.seed + age)
        dx, dy = rng.normal(0.0, self.jitter, size=2)
        return Point(self.position.x + float(dx), self.position.y + float(dy))


@dataclass(frozen=True)
class WanderMotion(MotionModel):
    """A smooth random walk around an anchor point (pedestrians, fish).

    The trajectory is a deterministic function of the seed: a sum of a slow
    sinusoidal drift and a bounded random walk, which keeps the object in the
    neighbourhood of its anchor without ever teleporting between frames.
    """

    anchor: Point
    radius: float
    speed: float = 1.0
    seed: int = 0

    def position_at(self, age: int) -> Point:
        if age < 0:
            raise ValueError(f"age must be non-negative: {age}")
        rng = np.random.default_rng(self.seed)
        phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
        freq_x, freq_y = rng.uniform(0.01, 0.05, size=2) * self.speed
        dx = self.radius * np.sin(freq_x * age + phase_x)
        dy = self.radius * np.sin(freq_y * age + phase_y)
        return Point(self.anchor.x + float(dx), self.anchor.y + float(dy))


@dataclass(frozen=True)
class WaypointMotion(MotionModel):
    """Piecewise-linear motion along a polyline at constant speed.

    After the final waypoint is reached the object keeps moving along the
    last segment direction (so it eventually exits the frame and is despawned
    by the scene simulator).
    """

    waypoints: tuple[Point, ...]
    speed: float  # pixels per frame

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("waypoint motion requires at least two waypoints")
        if self.speed <= 0:
            raise ValueError(f"speed must be positive: {self.speed}")

    def _segments(self) -> list[tuple[Point, Point, float]]:
        segments = []
        for start, end in zip(self.waypoints, self.waypoints[1:]):
            length = start.distance_to(end)
            segments.append((start, end, length))
        return segments

    def position_at(self, age: int) -> Point:
        if age < 0:
            raise ValueError(f"age must be non-negative: {age}")
        distance = self.speed * age
        segments = self._segments()
        for start, end, length in segments:
            if distance <= length and length > 0:
                t = distance / length
                return Point(
                    start.x + (end.x - start.x) * t,
                    start.y + (end.y - start.y) * t,
                )
            distance -= length
        # Continue along the direction of the final segment.
        start, end, length = segments[-1]
        if length == 0:
            return end
        ux = (end.x - start.x) / length
        uy = (end.y - start.y) / length
        return Point(end.x + ux * distance, end.y + uy * distance)
