"""Dataset profiles reproducing Table II of the paper.

| Dataset | Train  | Test  | Obj/frame | std | Classes                      |
|---------|--------|-------|-----------|-----|------------------------------|
| Coral   | 52,000 | 7,215 | 8.7       | 5.1 | person                       |
| Jackson | 14,094 | 3,000 | 1.2       | 0.5 | car (80%), person (20%)      |
| Detrac  | 55,020 | 9,971 | 15.8      | 9.8 | car (92%), bus (6%), truck (2%) |

The real videos are not redistributable, so :func:`build_dataset` materialises
synthetic streams whose per-frame statistics match the table.  The *default*
split sizes are scaled down (so the whole reproduction runs on a laptop CPU in
minutes); pass ``train_size`` / ``test_size`` explicitly — or
``paper_scale=True`` — to rebuild at the paper's sizes.
"""

from __future__ import annotations

from repro.video.stream import VideoDataset, build_stream_from_profile
from repro.video.synthesis import ClassMixEntry, DatasetProfile


CORAL_PROFILE = DatasetProfile(
    name="coral",
    description="80 hour fixed-angle aquarium sequence; a single 'person' class",
    classes=(
        ClassMixEntry(class_name="person", frequency=1.0, motion="wander"),
    ),
    mean_objects_per_frame=8.7,
    std_objects_per_frame=5.1,
    background_color=(30, 70, 110),
    background_texture=8.0,
    paper_train_size=52_000,
    paper_test_size=7_215,
    default_train_size=1_200,
    default_val_size=240,
    default_test_size=480,
)

JACKSON_PROFILE = DatasetProfile(
    name="jackson",
    description="60 hour fixed-angle zoomed-in traffic intersection (Jackson town square)",
    classes=(
        ClassMixEntry(
            class_name="car",
            frequency=0.8,
            motion="traffic",
            speed_range=(2.0, 5.0),
            parked_probability=0.03,
        ),
        ClassMixEntry(class_name="person", frequency=0.2, motion="walk"),
    ),
    mean_objects_per_frame=1.2,
    std_objects_per_frame=0.5,
    background_color=(110, 105, 100),
    background_texture=5.0,
    paper_train_size=14_094,
    paper_test_size=3_000,
    default_train_size=1_200,
    default_val_size=240,
    default_test_size=480,
)

DETRAC_PROFILE = DatasetProfile(
    name="detrac",
    description="10 hours of fixed-angle traffic videos (UA-DETRAC), vehicles only",
    classes=(
        ClassMixEntry(
            class_name="car",
            frequency=0.92,
            motion="traffic",
            speed_range=(1.5, 4.5),
            parked_probability=0.05,
        ),
        ClassMixEntry(
            class_name="bus",
            frequency=0.06,
            motion="traffic",
            speed_range=(1.0, 3.0),
        ),
        ClassMixEntry(
            class_name="truck",
            frequency=0.02,
            motion="traffic",
            speed_range=(1.0, 3.5),
        ),
    ),
    mean_objects_per_frame=15.8,
    std_objects_per_frame=9.8,
    max_objects_per_frame=60,
    background_color=(95, 100, 95),
    background_texture=5.0,
    paper_train_size=55_020,
    paper_test_size=9_971,
    default_train_size=1_200,
    default_val_size=240,
    default_test_size=480,
)

_PROFILES = {
    "coral": CORAL_PROFILE,
    "jackson": JACKSON_PROFILE,
    "detrac": DETRAC_PROFILE,
}


def dataset_profiles() -> dict[str, DatasetProfile]:
    """All built-in dataset profiles, keyed by name."""
    return dict(_PROFILES)


def build_dataset(
    profile: DatasetProfile,
    train_size: int | None = None,
    val_size: int | None = None,
    test_size: int | None = None,
    seed: int = 7,
    output_size: int = 112,
    paper_scale: bool = False,
) -> VideoDataset:
    """Materialise train / validation / test streams for a profile.

    ``paper_scale=True`` uses the split sizes from Table II (slow: tens of
    thousands of frames); otherwise the profile's scaled-down defaults are
    used unless explicit sizes are given.
    """
    if paper_scale:
        train_size = train_size or profile.paper_train_size
        test_size = test_size or profile.paper_test_size
        val_size = val_size or max(profile.paper_test_size // 4, 1)
    train_size = train_size or profile.default_train_size
    val_size = val_size or profile.default_val_size
    test_size = test_size or profile.default_test_size

    # The three splits come from the same fixed camera: they share the
    # renderer (background) seed and differ only in scene content.
    train = build_stream_from_profile(
        profile,
        num_frames=train_size,
        seed=seed,
        name=f"{profile.name}-train",
        output_size=output_size,
        renderer_seed=seed,
    )
    validation = build_stream_from_profile(
        profile,
        num_frames=val_size,
        seed=seed + 1,
        name=f"{profile.name}-val",
        output_size=output_size,
        renderer_seed=seed,
    )
    test = build_stream_from_profile(
        profile,
        num_frames=test_size,
        seed=seed + 2,
        name=f"{profile.name}-test",
        output_size=output_size,
        renderer_seed=seed,
    )
    return VideoDataset(
        name=profile.name,
        profile=profile,
        train=train,
        validation=validation,
        test=test,
    )


def build_coral(**kwargs: object) -> VideoDataset:
    """The Coral (aquarium) dataset profile."""
    return build_dataset(CORAL_PROFILE, **kwargs)  # type: ignore[arg-type]


def build_jackson(**kwargs: object) -> VideoDataset:
    """The Jackson town square dataset profile."""
    return build_dataset(JACKSON_PROFILE, **kwargs)  # type: ignore[arg-type]


def build_detrac(**kwargs: object) -> VideoDataset:
    """The Detrac traffic dataset profile."""
    return build_dataset(DETRAC_PROFILE, **kwargs)  # type: ignore[arg-type]
