"""Video streams and datasets.

A :class:`VideoStream` is the unit the query engine consumes: an ordered
sequence of frames from a single static camera at a fixed fps.  A
:class:`VideoDataset` bundles the train / validation / test streams of one
dataset profile (Coral, Jackson, Detrac), mirroring the splits described in
Section IV of the paper.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from contextlib import nullcontext

from repro.spatial.grid import Grid
from repro.video.renderer import FrameRenderer, RendererConfig
from repro.video.scene import FrameGroundTruth, Scene, SceneConfig, SceneSimulator
from repro.video.synthesis import DatasetProfile

# Runtime sanitizer hook, installed by repro.analysis.sanitizers while a
# sanitized scan runs.  ``None`` means off, and every use is guarded with
# ``is not None`` so the uninstrumented path stays lock-and-dict only (INV007).
_FRAME_CACHE_SANITIZER = None

# Fault-injection hook, installed by repro.faults while a chaos session
# runs.  Same zero-overhead contract (INV009): ``None`` means off, every
# use sits behind an ``is not None`` guard.
_FAULT_INJECTOR = None


@dataclass(frozen=True)
class Frame:
    """A single video frame: its index, pixels and (oracle-only) ground truth.

    Query processing code must treat ``ground_truth`` as the private property
    of the reference detector — filters only ever see ``image``.
    """

    index: int
    image: np.ndarray
    ground_truth: FrameGroundTruth
    camera_id: str = "camera-0"

    @property
    def timestamp_seconds(self) -> float:
        """Placeholder timestamp assuming the stream's default 30 fps."""
        return self.index / 30.0


class VideoStream:
    """A finite, replayable stream of frames from one static camera."""

    def __init__(
        self,
        scene: Scene,
        renderer: FrameRenderer,
        fps: int = 30,
        camera_id: str = "camera-0",
        name: str = "stream",
        frame_cache_size: int = 32,
    ) -> None:
        if fps <= 0:
            raise ValueError(f"fps must be positive: {fps}")
        if frame_cache_size < 0:
            raise ValueError(f"frame_cache_size must be non-negative: {frame_cache_size}")
        self._scene = scene
        self._renderer = renderer
        self._fps = fps
        self._camera_id = camera_id
        self._name = name
        self._frame_cache_size = frame_cache_size
        self._frame_cache: OrderedDict[int, Frame] = OrderedDict()
        # The parallel execution engine renders ahead from prefetch threads,
        # so cache lookup / insert / evict must be atomic.  Rendering itself
        # happens outside the lock (it dominates the cost and is
        # deterministic per index, so a rare duplicate render is benign).
        self._frame_cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def fps(self) -> int:
        return self._fps

    @property
    def camera_id(self) -> str:
        return self._camera_id

    @property
    def scene(self) -> Scene:
        return self._scene

    @property
    def renderer(self) -> FrameRenderer:
        return self._renderer

    @property
    def frame_width(self) -> int:
        return self._scene.frame_width

    @property
    def frame_height(self) -> int:
        return self._scene.frame_height

    def __len__(self) -> int:
        return self._scene.num_frames

    @property
    def duration_seconds(self) -> float:
        return len(self) / self._fps

    @property
    def frame_cache_size(self) -> int:
        """Capacity of the LRU frame cache (``0`` disables caching)."""
        return self._frame_cache_size

    # ------------------------------------------------------------------
    # Frame access
    # ------------------------------------------------------------------
    def frame(self, index: int) -> Frame:
        """Materialise frame ``index``, rendering the pixels on a cache miss.

        Rendering is deterministic per index, so revisiting an index — as the
        windowed, multi-query and temporal execution paths routinely do —
        returns the cached :class:`Frame` instead of re-rendering.  The cache
        is a small LRU (``frame_cache_size`` entries, least recently
        *accessed* evicted first) and is thread-safe: lookup, insert and
        eviction happen under a lock, so the parallel engine's decode-ahead
        prefetcher may call :meth:`frame` from several threads.  Two threads
        racing on the same uncached index may both render it (rendering runs
        outside the lock); the frames are identical and one wins the cache
        slot.  ``frame_cache_size=0`` bypasses the cache and the lock
        entirely — process-backend parallel workers use this so each worker
        does not duplicate the cache's memory.  Returned frames are shared
        objects: callers must treat ``image`` as read-only, which every
        consumer in this codebase already does (filters copy via ``astype``).
        """
        if self._frame_cache_size == 0:
            return self._decode(index)
        with self._cache_section(), self._frame_cache_lock:
            cached = self._frame_cache.get(index)
            if cached is not None:
                self._frame_cache.move_to_end(index)
                return cached
        frame = self._decode(index)
        with self._cache_section(), self._frame_cache_lock:
            existing = self._frame_cache.get(index)
            if existing is not None:
                # Lost a render race: keep the first frame so repeated
                # lookups stay identity-stable.
                self._frame_cache.move_to_end(index)
                return existing
            self._frame_cache[index] = frame
            while len(self._frame_cache) > self._frame_cache_size:
                self._frame_cache.popitem(last=False)
        return frame

    def _cache_section(self):
        """Race-sanitizer window for one locked LRU section.

        The window declares the cache lock it runs under, so overlapping
        windows from concurrent prefetch threads intersect on the lock and
        stay silent; an access path that skipped the lock would declare an
        empty lockset and be reported as RC001.
        """
        if _FRAME_CACHE_SANITIZER is not None:
            return _FRAME_CACHE_SANITIZER.cache_access(
                self, frozenset((id(self._frame_cache_lock),))
            )
        return nullcontext()

    def _decode(self, index: int) -> Frame:
        """Render one frame, under the decode fault site when injecting.

        A transient decode fault retries with backoff charged to the
        injector's own simulated clock (streams carry no clock of their
        own); exhaustion propagates as ``FaultExhausted`` for the caller
        to quarantine.
        """
        if _FAULT_INJECTOR is not None:
            return _FAULT_INJECTOR.with_retry(
                "decode", index, None, lambda: self._render_frame(index)
            )
        return self._render_frame(index)

    def _render_frame(self, index: int) -> Frame:
        ground_truth = self._scene.ground_truth(index)
        image = self._renderer.render(ground_truth)
        return Frame(
            index=index,
            image=image,
            ground_truth=ground_truth,
            camera_id=self._camera_id,
        )

    def ground_truth(self, index: int) -> FrameGroundTruth:
        """Ground truth without rendering (used for labels and evaluation)."""
        return self._scene.ground_truth(index)

    def __iter__(self) -> Iterator[Frame]:
        for index in range(len(self)):
            yield self.frame(index)

    def iter_range(self, start: int, stop: int, step: int = 1) -> Iterator[Frame]:
        """Iterate over a slice of the stream."""
        for index in range(start, min(stop, len(self)), step):
            yield self.frame(index)

    def sample_indices(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random sample of ``n`` frame indices without replacement."""
        n = min(n, len(self))
        return np.sort(rng.choice(len(self), size=n, replace=False))

    def count_series(self) -> np.ndarray:
        """Per-frame total object counts (from ground truth)."""
        return self._scene.count_series()


@dataclass(frozen=True)
class VideoDataset:
    """Train / validation / test streams of one dataset profile."""

    name: str
    profile: DatasetProfile
    train: VideoStream
    validation: VideoStream
    test: VideoStream

    @property
    def class_names(self) -> tuple[str, ...]:
        return self.profile.class_names

    def grid(self, g: int = 56) -> Grid:
        """The ``g x g`` filter grid for this dataset's frame geometry."""
        return Grid(
            rows=g,
            cols=g,
            frame_width=self.profile.frame_width,
            frame_height=self.profile.frame_height,
        )

    def summary(self) -> dict[str, object]:
        """Dataset characteristics in the shape of the paper's Table II."""
        counts = self.train.count_series()
        return {
            "dataset": self.name,
            "train_size": len(self.train),
            "val_size": len(self.validation),
            "test_size": len(self.test),
            "objects_per_frame_mean": float(np.mean(counts)),
            "objects_per_frame_std": float(np.std(counts)),
            "classes": dict(self.profile.class_frequencies),
        }


def build_stream_from_profile(
    profile: DatasetProfile,
    num_frames: int,
    seed: int,
    name: str,
    output_size: int = 112,
    renderer_seed: int | None = None,
) -> VideoStream:
    """Simulate and wrap a stream for ``profile`` with ``num_frames`` frames.

    ``seed`` drives the scene content (which objects appear when); the
    renderer's static background is seeded separately with ``renderer_seed``
    so that the train / validation / test splits of one dataset share the
    same fixed-camera background, exactly as consecutive segments of one real
    surveillance video do.
    """
    scene_config = SceneConfig.from_profile(profile, num_frames=num_frames, seed=seed)
    scene = SceneSimulator(scene_config).simulate()
    renderer = FrameRenderer(
        RendererConfig(
            output_size=output_size,
            background_color=profile.background_color,
            background_texture=profile.background_texture,
            seed=seed if renderer_seed is None else renderer_seed,
        )
    )
    return VideoStream(
        scene=scene,
        renderer=renderer,
        fps=profile.fps,
        camera_id=f"{profile.name}-cam",
        name=name,
    )
