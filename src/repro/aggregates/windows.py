"""Window specifications over frame streams (hopping / sliding)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class WindowBounds:
    """A half-open frame range ``[start, stop)`` of one window instance."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid window bounds: [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        return self.stop - self.start

    def indices(self) -> range:
        return range(self.start, self.stop)

    def contains(self, frame_index: int) -> bool:
        return self.start <= frame_index < self.stop


@dataclass(frozen=True)
class HoppingWindow:
    """A hopping (tumbling when ``advance == size``) window, as in ``WINDOW HOPPING``."""

    size: int
    advance: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.advance <= 0:
            raise ValueError(f"size and advance must be positive: {self.size}, {self.advance}")

    def windows_over(self, num_frames: int, include_partial: bool = False) -> Iterator[WindowBounds]:
        """All window instances over a stream of ``num_frames`` frames.

        With the default ``include_partial=False`` only full-size windows are
        yielded, so a trailing remainder shorter than ``size`` is silently
        *not covered* (e.g. ``size=100`` over 250 frames never covers frames
        200–249).  That is the right default for the paper's fixed-size
        window experiments, where every window must hold the same number of
        frames; windowed *query execution* wants full stream coverage and
        passes ``include_partial=True`` (the executor's
        ``include_partial_windows`` default), which appends one final,
        shorter window over the remaining frames.
        """
        if num_frames <= 0:
            return
        start = 0
        while start < num_frames:
            stop = min(start + self.size, num_frames)
            if stop - start == self.size or (include_partial and stop > start):
                yield WindowBounds(start=start, stop=stop)
            if stop - start < self.size:
                break
            start += self.advance


@dataclass(frozen=True)
class SlidingWindow:
    """A sliding window that advances one frame at a time."""

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"size must be positive: {self.size}")

    def windows_over(self, num_frames: int) -> Iterator[WindowBounds]:
        for start in range(0, max(num_frames - self.size + 1, 0)):
            yield WindowBounds(start=start, stop=start + self.size)
