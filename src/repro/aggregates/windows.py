"""Window specifications over frame streams (hopping / sliding)."""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator, MutableSet


def warn_window_tail_drop(
    *,
    size: int,
    advance: int,
    start: int,
    stop: int,
    num_frames: int,
    registry: MutableSet[tuple[int, int, int, int]] | None = None,
    stacklevel: int = 2,
) -> None:
    """Emit the QA006 tail-drop warning, at most once per ``registry``.

    ``registry`` is an opaque per-scan (or per-session) set: when given, the
    warning for a ``(size, advance, start, stop)`` tail fires only the first
    time that tail is seen through that registry — a standing query over an
    endless stream warns once, not once per chunk.  ``None`` keeps the
    historical warn-every-call behaviour.
    """
    if registry is not None:
        key = (size, advance, start, stop)
        if key in registry:
            return
        registry.add(key)
    # Local import: repro.analysis depends on repro.query, whose executor
    # imports this module — a module-level import would cycle during package
    # initialisation.
    from repro.analysis import WindowTailDropWarning

    warnings.warn(
        f"window of size {size} drops the trailing "
        f"{stop - start} frame(s) [{start}, {stop}) of a "
        f"{num_frames}-frame stream (QA006); pass "
        "include_partial=True to cover them",
        WindowTailDropWarning,
        stacklevel=stacklevel,
    )


@dataclass(frozen=True)
class WindowBounds:
    """A half-open frame range ``[start, stop)`` of one window instance."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid window bounds: [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        return self.stop - self.start

    def indices(self) -> range:
        return range(self.start, self.stop)

    def contains(self, frame_index: int) -> bool:
        return self.start <= frame_index < self.stop


@dataclass(frozen=True)
class HoppingWindow:
    """A hopping (tumbling when ``advance == size``) window, as in ``WINDOW HOPPING``."""

    size: int
    advance: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.advance <= 0:
            raise ValueError(f"size and advance must be positive: {self.size}, {self.advance}")

    def windows_over(
        self,
        num_frames: int,
        include_partial: bool = False,
        *,
        warn_registry: MutableSet[tuple[int, int, int, int]] | None = None,
    ) -> Iterator[WindowBounds]:
        """All window instances over a stream of ``num_frames`` frames.

        With the default ``include_partial=False`` only full-size windows are
        yielded, so a trailing remainder shorter than ``size`` is silently
        *not covered* (e.g. ``size=100`` over 250 frames never covers frames
        200–249).  That is the right default for the paper's fixed-size
        window experiments, where every window must hold the same number of
        frames; windowed *query execution* wants full stream coverage and
        passes ``include_partial=True`` (the executor's
        ``include_partial_windows`` default), which appends one final,
        shorter window over the remaining frames.

        Dropping a non-empty tail is silent data loss from the caller's point
        of view, so it is surfaced as a
        :class:`~repro.analysis.WindowTailDropWarning` (the runtime
        counterpart of the static QA006 diagnostic) — callers that chose the
        fixed-size semantics deliberately can filter the category out.
        Callers that evaluate the same window spec repeatedly (a scan loop, a
        standing-query session) pass a shared ``warn_registry`` set so each
        distinct dropped tail warns once per scan rather than once per call.
        """
        if num_frames <= 0:
            return
        start = 0
        while start < num_frames:
            stop = min(start + self.size, num_frames)
            if stop - start == self.size or (include_partial and stop > start):
                yield WindowBounds(start=start, stop=stop)
            if stop - start < self.size:
                if not include_partial and stop > start:
                    warn_window_tail_drop(
                        size=self.size,
                        advance=self.advance,
                        start=start,
                        stop=stop,
                        num_frames=num_frames,
                        registry=warn_registry,
                        stacklevel=3,
                    )
                break
            start += self.advance


@dataclass(frozen=True)
class SlidingWindow:
    """A sliding window that advances one frame at a time."""

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"size must be positive: {self.size}")

    def windows_over(self, num_frames: int) -> Iterator[WindowBounds]:
        for start in range(0, max(num_frames - self.size + 1, 0)):
            yield WindowBounds(start=start, stop=start + self.size)
