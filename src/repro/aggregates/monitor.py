"""Aggregate monitoring: putting filters, detector and control variates together.

An :class:`AggregateQuerySpec` describes a per-frame quantity of interest —
typically an indicator ("is there a car in the lower-right quadrant?") or a
count ("number of bicycles in the bike lane") — evaluated in two ways:

* exactly, on the reference detector's output (this is ``Y``), and
* approximately, on one or more filter predictions (these are the control
  variates ``Z``).

The :class:`AggregateMonitor` samples frames (optionally per hopping window),
evaluates both, and reports the plain sampling estimate, the control-variate
estimate, the variance-reduction factor and the per-frame cost — i.e. one row
of the paper's Table IV.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.aggregates.control_variates import (
    ControlVariateEstimate,
    control_variate_estimate,
    multiple_control_variates_estimate,
)
from repro.aggregates.sampling import SampleEstimate, sample_frame_indices, sample_mean_estimate
from repro.aggregates.windows import WindowBounds
from repro.cost import SimulatedClock
from repro.detection.base import Detector, FrameDetections
from repro.filters.base import FilterPrediction, FrameFilter
from repro.query.ast import Query, WindowSpec
from repro.query.evaluation import evaluate_predicates_on_detections
from repro.query.parallel import FramePrefetcher, ParallelConfig
from repro.query.temporal import DeltaGate, TemporalConfig, TemporalStats, clocks_detached
from repro.video.stream import Frame, VideoStream


#: a function computing the exact per-frame value from detector output
ExactValueFn = Callable[[FrameDetections], float]
#: a function computing an approximate per-frame value from a filter prediction
ControlValueFn = Callable[[FilterPrediction], float]


@dataclass
class AggregateQuerySpec:
    """One aggregate monitoring query.

    ``exact_value`` maps the reference detector's output to the per-frame
    value ``Y_i``; each entry of ``control_values`` maps a filter prediction
    to one control variate ``Z_i`` (all controls are evaluated on the same
    filter prediction — use multiple specs for multiple filters).

    ``window`` carries the query's ``WINDOW HOPPING`` clause, if any;
    :meth:`~repro.query.executor.StreamingQueryExecutor.execute_aggregate`
    reports one estimate per window instance for windowed specs.  Plain
    :meth:`AggregateMonitor.estimate` ignores it (its explicit ``window``
    argument selects the sampling population).
    """

    name: str
    exact_value: ExactValueFn
    control_values: Sequence[ControlValueFn]
    description: str = ""
    window: WindowSpec | None = None

    def __post_init__(self) -> None:
        if not self.control_values:
            raise ValueError("an aggregate query needs at least one control variate")

    @classmethod
    def from_query(
        cls, query: Query, control_values: Sequence[ControlValueFn], description: str = ""
    ) -> "AggregateQuerySpec":
        """Indicator aggregate: the fraction of frames satisfying ``query``.

        The query's window clause (if any) is carried over, so a windowed
        query parsed from text turns into a windowed aggregate spec.
        """

        def exact(detections: FrameDetections) -> float:
            return 1.0 if evaluate_predicates_on_detections(query, detections) else 0.0

        return cls(
            name=query.name,
            exact_value=exact,
            control_values=list(control_values),
            description=description or query.describe(),
            window=query.window,
        )


@dataclass(frozen=True)
class MonitoringReport:
    """The estimate for one aggregate query (one row of Table IV)."""

    query_name: str
    plain: SampleEstimate
    control_variate: ControlVariateEstimate
    num_samples: int
    per_frame_cost_ms: float
    detector_only_cost_ms: float
    wall_clock_seconds: float
    #: reuse telemetry of a temporally-gated estimate (``None`` otherwise)
    temporal: TemporalStats | None = None

    @property
    def variance_reduction(self) -> float:
        return self.control_variate.variance_reduction

    @property
    def cost_overhead_ms(self) -> float:
        """Extra per-frame cost of evaluating the filters on each sample."""
        return self.per_frame_cost_ms - self.detector_only_cost_ms

    def as_row(self) -> dict[str, object]:
        return {
            "query": self.query_name,
            "samples": self.num_samples,
            "plain_mean": round(self.plain.mean, 4),
            "cv_mean": round(self.control_variate.mean, 4),
            "per_frame_ms": round(self.per_frame_cost_ms, 2),
            "variance_reduction": round(self.variance_reduction, 1),
            "correlation": round(self.control_variate.correlation, 3),
        }


class AggregateMonitor:
    """Estimates aggregate monitoring queries with control variates."""

    def __init__(
        self,
        detector: Detector,
        frame_filter: FrameFilter,
        clock: SimulatedClock | None = None,
        seed: int = 0,
    ) -> None:
        self.detector = detector
        self.frame_filter = frame_filter
        self.clock = clock or SimulatedClock()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Core estimation
    # ------------------------------------------------------------------
    def _evaluate_samples(
        self,
        spec: AggregateQuerySpec,
        stream: VideoStream,
        indices: Sequence[int],
        temporal: TemporalConfig | None = None,
        parallel: ParallelConfig | None = None,
    ) -> tuple[np.ndarray, np.ndarray, TemporalStats | None]:
        """Evaluate exact values and controls on the sampled frames.

        The filter side runs as one vectorized ``predict_batch`` call over
        all sampled frames (the simulated latency is charged per frame either
        way); only the reference detector, which defines ``Y``, still runs
        frame by frame, in sample order.  Against the historical per-frame
        ``predict`` loop the detector side is identical, and the filter side
        agrees exactly on the integer counts and thresholded masks the
        standard controls consume (raw scores may differ at the last ulp —
        see ``LinearBranchFilter.predict_batch``).

        With a ``temporal`` config the samples are delta-gated instead
        (see :mod:`repro.query.temporal`): sample indices arrive sorted, so
        on a stable stream consecutive samples are nearly identical and
        both the detector value and the control values of the previous
        sample can be reused.  Adaptive striding does not apply — the
        sample set is already sparse — so only the gate runs.  In exact
        mode every reuse is verified with the clock detached and the
        verified values are the ones used, keeping estimates bit-identical
        to the ungated path.

        A ``parallel`` config contributes decode-ahead rendering of the
        sampled frames (estimation itself stays one vectorized batch plus a
        sequential detector loop, so estimates are bit-identical with or
        without it).
        """
        prefetcher: FramePrefetcher | None = None
        fetch = stream.frame
        if parallel is not None:
            prefetcher = FramePrefetcher(
                stream,
                [int(frame_index) for frame_index in indices],
                depth=parallel.prefetch_depth * parallel.chunk_size,
                threads=parallel.effective_prefetch_threads,
            )
            fetch = prefetcher.frame
        try:
            if temporal is None:
                exact_values = np.zeros(len(indices))
                controls = np.zeros((len(indices), len(spec.control_values)))
                frames = [fetch(int(frame_index)) for frame_index in indices]
                predictions = self.frame_filter.predict_batch(frames)
                for row, (frame, prediction) in enumerate(zip(frames, predictions)):
                    detections = self.detector.detect(frame)
                    exact_values[row] = spec.exact_value(detections)
                    for col, control in enumerate(spec.control_values):
                        controls[row, col] = control(prediction)
                return exact_values, controls, None
            return self._evaluate_samples_temporal(
                spec, stream, indices, temporal, fetch=fetch
            )
        finally:
            if prefetcher is not None:
                prefetcher.close()

    def _evaluate_samples_temporal(
        self,
        spec: AggregateQuerySpec,
        stream: VideoStream,
        indices: Sequence[int],
        temporal: TemporalConfig,
        fetch=None,
    ) -> tuple[np.ndarray, np.ndarray, TemporalStats]:
        fetch = fetch if fetch is not None else stream.frame
        exact_values = np.zeros(len(indices))
        controls = np.zeros((len(indices), len(spec.control_values)))
        gate = DeltaGate(temporal)
        computed = reused = verified = mismatches = 0
        detector_component = getattr(self.detector, "name", "detector")

        def evaluate(frame: Frame) -> tuple[float, np.ndarray]:
            # predict_batch of one frame, not predict: per-frame batch rows
            # are independent, so the values match the ungated path's single
            # whole-sample batch bit for bit.
            prediction = self.frame_filter.predict_batch([frame])[0]
            detections = self.detector.detect(frame)
            value = float(spec.exact_value(detections))
            row = np.array(
                [control(prediction) for control in spec.control_values]
            )
            return value, row

        def evaluate_unclocked(frame: Frame) -> tuple[float, np.ndarray]:
            with clocks_detached([self.frame_filter], self.detector):
                return evaluate(frame)

        for position, frame_index in enumerate(indices):
            frame = fetch(int(frame_index))
            if gate.decide(frame.image):
                gate.mark_reused()
                reused += 1
                value, row = gate.outcome
                self.clock.reuse(self.frame_filter.name)
                self.clock.reuse(detector_component)
                if temporal.exact:
                    truth_value, truth_row = evaluate_unclocked(frame)
                    verified += 1
                    if truth_value != value or not np.array_equal(truth_row, row):
                        mismatches += 1
                        gate.replace_outcome((truth_value, truth_row))
                    value, row = truth_value, truth_row
            else:
                value, row = evaluate(frame)
                gate.set_keyframe(frame.image, (value, row))
                computed += 1
            exact_values[position] = value
            controls[position] = row
        stats = TemporalStats(
            frames_total=len(indices),
            frames_computed=computed,
            frames_reused=reused,
            frames_skipped=0,
            refinement_probes=0,
            verified_frames=verified,
            reuse_mismatches=mismatches,
            max_stride_used=1,
            filter_reuses=reused,
            detector_reuses=reused,
        )
        return exact_values, controls, stats

    def estimate(
        self,
        spec: AggregateQuerySpec,
        stream: VideoStream,
        sample_size: int,
        window: WindowBounds | None = None,
        frame_indices: Sequence[int] | None = None,
        temporal: TemporalConfig | None = None,
        parallel: ParallelConfig | None = None,
    ) -> MonitoringReport:
        """Estimate one aggregate query by sampling ``sample_size`` frames.

        Sampling is uniform over the window (or the whole stream).  The report
        contains both the plain sampling estimate and the control-variate
        estimate; with multiple controls the multiple-CV estimator is used.
        ``temporal`` delta-gates the sample evaluation (see
        :meth:`_evaluate_samples`); the sampled indices themselves are drawn
        identically either way.  ``parallel`` adds decode-ahead rendering of
        the sampled frames without changing any estimate.
        """
        # Delta-snapshot accounting rather than a reset, so a caller-supplied
        # shared clock keeps its history across estimates (same contract as
        # StreamingQueryExecutor.execute).
        cost_baseline = self.clock.snapshot()
        previous_filter_clock = self.frame_filter.clock
        previous_detector_clock = getattr(self.detector, "clock", None)
        self.frame_filter.clock = self.clock
        if hasattr(self.detector, "clock"):
            self.detector.clock = self.clock
        started = time.perf_counter()
        try:
            if frame_indices is None:
                if window is not None:
                    population = np.arange(window.start, min(window.stop, len(stream)))
                else:
                    population = np.arange(len(stream))
                chosen = population[
                    sample_frame_indices(len(population), sample_size, self._rng)
                ]
            else:
                chosen = np.asarray(frame_indices)
            exact_values, controls, temporal_stats = self._evaluate_samples(
                spec, stream, list(chosen), temporal=temporal, parallel=parallel
            )
        finally:
            self.frame_filter.clock = previous_filter_clock
            if hasattr(self.detector, "clock"):
                self.detector.clock = previous_detector_clock
        elapsed = time.perf_counter() - started

        plain = sample_mean_estimate(exact_values)
        if controls.shape[1] == 1:
            cv = control_variate_estimate(exact_values, controls[:, 0])
        else:
            cv = multiple_control_variates_estimate(exact_values, controls)

        num_samples = len(chosen)
        estimate_ms = self.clock.delta_since(cost_baseline).total_ms
        per_frame_ms = estimate_ms / num_samples if num_samples else 0.0
        return MonitoringReport(
            query_name=spec.name,
            plain=plain,
            control_variate=cv,
            num_samples=num_samples,
            per_frame_cost_ms=per_frame_ms,
            detector_only_cost_ms=self.detector.latency_ms,
            wall_clock_seconds=elapsed,
            temporal=temporal_stats,
        )

    def estimate_repeated(
        self,
        spec: AggregateQuerySpec,
        stream: VideoStream,
        sample_size: int,
        repetitions: int,
        window: WindowBounds | None = None,
    ) -> list[MonitoringReport]:
        """Repeat the estimation (fresh samples each time), as the paper's 100 runs."""
        if repetitions <= 0:
            raise ValueError(f"repetitions must be positive: {repetitions}")
        return [
            self.estimate(spec, stream, sample_size, window=window)
            for _ in range(repetitions)
        ]
