"""Standard control-variate functions derived from filter predictions.

These helpers build the ``Z`` side of the control-variate pairs: cheap,
filter-based approximations of the quantity the detector computes exactly.
They mirror the approximate predicate checks the query planner uses, so the
same filter output serves both query filtering and aggregate estimation.
"""

from __future__ import annotations

from typing import Callable

from scipy import ndimage

from repro.filters.base import FilterPrediction
from repro.query.ast import (
    CountPredicate,
    Predicate,
    Query,
    RegionPredicate,
    SpatialPredicate,
)
from repro.query.planner import _count_possible, _region_possible, _spatial_possible
from repro.spatial.regions import Region
from repro.spatial.relations import Direction

ControlValueFn = Callable[[FilterPrediction], float]


def class_count_control(class_name: str | None = None) -> ControlValueFn:
    """Control variate: the filter's (total or per-class) count estimate."""

    def control(prediction: FilterPrediction) -> float:
        if class_name is None:
            return float(prediction.total_count)
        return float(prediction.count_of(class_name))

    return control


def region_count_control(
    class_name: str, region: Region, dilation: int = 0
) -> ControlValueFn:
    """Control variate: number of predicted blobs of ``class_name`` inside ``region``."""

    def control(prediction: FilterPrediction) -> float:
        mask = prediction.location_mask(class_name, dilation=dilation)
        region_mask = region.grid_mask(prediction.grid)
        selected = mask.intersection(region_mask)
        if not selected:
            return 0.0
        _, blobs = ndimage.label(selected.values)
        return float(blobs)

    return control


def spatial_indicator_control(
    subject_class: str, reference_class: str, direction: Direction, dilation: int = 1
) -> ControlValueFn:
    """Control variate: 1 when the filter predicts the spatial relation holds."""
    predicate = SpatialPredicate(subject_class, reference_class, direction)

    def control(prediction: FilterPrediction) -> float:
        return 1.0 if _spatial_possible(predicate, prediction, dilation) else 0.0

    return control


def predicate_indicator_control(predicate: Predicate, tolerance: int = 0) -> ControlValueFn:
    """Control variate: 1 when the filter says the predicate may hold."""

    def control(prediction: FilterPrediction) -> float:
        if isinstance(predicate, CountPredicate):
            return 1.0 if _count_possible(predicate, prediction, tolerance) else 0.0
        if isinstance(predicate, SpatialPredicate):
            return 1.0 if _spatial_possible(predicate, prediction, tolerance) else 0.0
        if isinstance(predicate, RegionPredicate):
            return 1.0 if _region_possible(predicate, prediction, tolerance) else 0.0
        # Predicates the filters cannot evaluate (e.g. colors) contribute a
        # constant control, which the CV estimator simply ignores (beta = 0).
        return 1.0

    return control


def query_indicator_control(query: Query, tolerance: int = 0) -> ControlValueFn:
    """Control variate: 1 when the filter says *all* query predicates may hold."""
    per_predicate = [predicate_indicator_control(p, tolerance) for p in query.predicates]

    def control(prediction: FilterPrediction) -> float:
        return 1.0 if all(fn(prediction) > 0.5 for fn in per_predicate) else 0.0

    return control


def per_predicate_controls(query: Query, tolerance: int = 0) -> list[ControlValueFn]:
    """One control variate per query predicate (for multiple control variates).

    Count and region predicates contribute *value* controls (the filter's
    count estimate / in-region blob count), which correlate with the exact
    answer much better than bare indicators; spatial and other predicates
    contribute indicator controls.
    """
    controls: list[ControlValueFn] = []
    for predicate in query.predicates:
        if isinstance(predicate, CountPredicate):
            controls.append(class_count_control(predicate.class_name))
        elif isinstance(predicate, RegionPredicate):
            controls.append(
                region_count_control(predicate.class_name, predicate.region, dilation=tolerance)
            )
        else:
            controls.append(predicate_indicator_control(predicate, tolerance))
    return controls
