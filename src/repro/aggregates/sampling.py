"""Plain sampling-based estimation (the baseline the control variates improve on)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class SampleEstimate:
    """A sampling estimate of a mean, with its uncertainty."""

    mean: float
    variance: float
    std_error: float
    num_samples: int
    confidence_interval: tuple[float, float]
    confidence_level: float = 0.95

    @property
    def half_width(self) -> float:
        low, high = self.confidence_interval
        return (high - low) / 2.0


def sample_frame_indices(
    num_frames: int, sample_size: int, rng: np.random.Generator, replace: bool = False
) -> np.ndarray:
    """Uniformly sample frame indices from ``[0, num_frames)``.

    When drawing without replacement (the default), ``sample_size`` is
    clamped to ``num_frames``: asking for more samples than there are frames
    yields one exhaustive sample of every frame rather than an error, so
    small windows (e.g. the tail window of a hopping-window spec) estimate
    from their full population.
    """
    if num_frames <= 0:
        raise ValueError(f"num_frames must be positive: {num_frames}")
    if sample_size <= 0:
        raise ValueError(f"sample_size must be positive: {sample_size}")
    if not replace:
        sample_size = min(sample_size, num_frames)
    return np.sort(rng.choice(num_frames, size=sample_size, replace=replace))


def sample_mean_estimate(
    values: np.ndarray | list[float], confidence_level: float = 0.95
) -> SampleEstimate:
    """Mean / variance / confidence interval of a sample of per-frame values."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot estimate from an empty sample")
    if not 0.0 < confidence_level < 1.0:
        raise ValueError(f"confidence level must be in (0, 1): {confidence_level}")
    n = values.size
    mean = float(values.mean())
    variance = float(values.var(ddof=1)) if n > 1 else 0.0
    std_error = float(np.sqrt(variance / n)) if n > 1 else 0.0
    if n > 1 and std_error > 0:
        critical = float(stats.t.ppf(0.5 + confidence_level / 2.0, df=n - 1))
        interval = (mean - critical * std_error, mean + critical * std_error)
    else:
        interval = (mean, mean)
    return SampleEstimate(
        mean=mean,
        variance=variance,
        std_error=std_error,
        num_samples=n,
        confidence_interval=interval,
        confidence_level=confidence_level,
    )
