"""Control variates and multiple control variates (Section III of the paper).

Single control variate: to estimate ``E[Y]`` with samples ``(Y_i, X_i)``
where ``X`` has (estimated) mean ``mu_X``, use

    Y_cv = mean(Y) - beta * (mean(X) - mu_X),   beta* = Cov(X, Y) / Var(X)

which is unbiased and has variance ``(1 - rho^2) Var(mean(Y))`` where ``rho``
is the correlation between ``X`` and ``Y``.  In this reproduction ``Y_i`` is
the exact (detector-based) per-frame answer and ``X_i`` is the cheap filter's
answer for the same frame, so ``rho`` is large and the variance reduction is
substantial (Table IV).

Multiple control variates: with a vector ``Z`` of controls, ``beta* =
Sigma_ZZ^{-1} Sigma_ZY`` and the variance shrinks by the squared multiple
correlation coefficient ``R^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ControlVariateEstimate:
    """Result of a control-variate (or multiple-CV) estimation."""

    mean: float
    variance: float
    plain_mean: float
    plain_variance: float
    beta: tuple[float, ...]
    correlation: float
    num_samples: int

    @property
    def variance_reduction(self) -> float:
        """Factor by which the CV estimator's variance is smaller than plain sampling."""
        if self.variance <= 0:
            return float("inf") if self.plain_variance > 0 else 1.0
        return self.plain_variance / self.variance

    @property
    def std_error(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))


def optimal_beta(y: np.ndarray, x: np.ndarray) -> float:
    """``beta* = Cov(X, Y) / Var(X)`` estimated from samples."""
    y = np.asarray(y, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if y.shape != x.shape or y.ndim != 1:
        raise ValueError(f"y and x must be 1-D arrays of equal length: {y.shape}, {x.shape}")
    if y.size < 2:
        raise ValueError("need at least two samples to estimate beta")
    var_x = float(np.var(x, ddof=1))
    if var_x <= 0:
        return 0.0
    cov_xy = float(np.cov(x, y, ddof=1)[0, 1])
    return cov_xy / var_x


def control_variate_estimate(
    y: np.ndarray | list[float],
    x: np.ndarray | list[float],
    control_mean: float | None = None,
) -> ControlVariateEstimate:
    """Single-control-variate estimate of ``E[Y]``.

    ``control_mean`` is ``mu_X``; when ``None`` the sample mean of ``X`` is
    used (in which case the CV correction is zero but the *variance* estimate
    still reflects the reduction the CV would achieve — the paper likewise
    uses the sample mean of the filter output as ``mu_X``).
    """
    y = np.asarray(y, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if y.shape != x.shape or y.ndim != 1:
        raise ValueError(f"y and x must be 1-D arrays of equal length: {y.shape}, {x.shape}")
    n = y.size
    if n < 2:
        raise ValueError("need at least two samples")
    plain_mean = float(y.mean())
    plain_variance = float(y.var(ddof=1) / n)
    beta = optimal_beta(y, x)
    mu_x = float(x.mean()) if control_mean is None else float(control_mean)
    cv_mean = plain_mean - beta * (float(x.mean()) - mu_x)
    corrected = y - beta * (x - mu_x)
    cv_variance = float(corrected.var(ddof=1) / n)
    std_x = float(x.std(ddof=1))
    std_y = float(y.std(ddof=1))
    if std_x > 0 and std_y > 0:
        correlation = float(np.corrcoef(x, y)[0, 1])
    else:
        correlation = 0.0
    return ControlVariateEstimate(
        mean=cv_mean,
        variance=cv_variance,
        plain_mean=plain_mean,
        plain_variance=plain_variance,
        beta=(beta,),
        correlation=correlation,
        num_samples=n,
    )


def multiple_control_variates_estimate(
    y: np.ndarray | list[float],
    controls: np.ndarray,
    control_means: np.ndarray | list[float] | None = None,
) -> ControlVariateEstimate:
    """Multiple-control-variates estimate of ``E[Y]``.

    ``controls`` has shape ``(num_samples, num_controls)``; ``control_means``
    are the (estimated) expectations ``mu_Z`` of each control (sample means by
    default).  ``beta* = Sigma_ZZ^{-1} Sigma_ZY`` and the reported correlation
    is the multiple correlation coefficient ``R``.
    """
    y = np.asarray(y, dtype=np.float64)
    controls = np.asarray(controls, dtype=np.float64)
    if controls.ndim != 2 or controls.shape[0] != y.shape[0]:
        raise ValueError(
            f"controls must be (num_samples, num_controls): {controls.shape} vs y {y.shape}"
        )
    n, num_controls = controls.shape
    if n < num_controls + 2:
        raise ValueError(
            f"need at least {num_controls + 2} samples for {num_controls} controls, got {n}"
        )
    plain_mean = float(y.mean())
    plain_variance = float(y.var(ddof=1) / n)

    centered = controls - controls.mean(axis=0, keepdims=True)
    sigma_zz = (centered.T @ centered) / (n - 1)
    sigma_zy = (centered.T @ (y - y.mean())) / (n - 1)
    # Regularise in case two controls are (nearly) collinear.
    ridge = 1e-10 * np.eye(num_controls) * max(np.trace(sigma_zz), 1.0)
    beta = np.linalg.solve(sigma_zz + ridge, sigma_zy)

    mu_z = (
        controls.mean(axis=0)
        if control_means is None
        else np.asarray(control_means, dtype=np.float64)
    )
    if mu_z.shape != (num_controls,):
        raise ValueError(f"control_means must have shape ({num_controls},)")
    cv_mean = plain_mean - float(beta @ (controls.mean(axis=0) - mu_z))
    corrected = y - (controls - mu_z) @ beta
    cv_variance = float(corrected.var(ddof=1) / n)

    var_y = float(y.var(ddof=1))
    if var_y > 0:
        r_squared = float(sigma_zy @ beta / var_y)
        r_squared = float(np.clip(r_squared, 0.0, 1.0))
    else:
        r_squared = 0.0
    return ControlVariateEstimate(
        mean=cv_mean,
        variance=cv_variance,
        plain_mean=plain_mean,
        plain_variance=plain_variance,
        beta=tuple(float(b) for b in beta),
        correlation=float(np.sqrt(r_squared)),
        num_samples=n,
    )
