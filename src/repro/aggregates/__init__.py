"""Monitoring aggregates: sampling estimation with control variates.

Section III of the paper treats aggregate monitoring queries ("how many
frames in this 5000-frame window contain a blue car with a stop sign on its
right?", "what is the average number of bicycles in the bike lane per
hour?").  Rather than evaluating the expensive detector on every frame, such
queries are answered by sampling frames and estimating the aggregate, and the
cheap approximate filters are used as **control variates** to reduce the
variance of the estimate: the filter's (approximate) answer is highly
correlated with the detector's (exact) answer, so the classical CV estimator
— and its multi-variate generalisation for queries involving several objects
and constraints — yields the same unbiased mean with a much smaller variance
at a negligible increase in per-sample cost.
"""

from repro.aggregates.control_variates import (
    ControlVariateEstimate,
    control_variate_estimate,
    multiple_control_variates_estimate,
    optimal_beta,
)
from repro.aggregates.sampling import SampleEstimate, sample_mean_estimate, sample_frame_indices
from repro.aggregates.windows import HoppingWindow, SlidingWindow, WindowBounds
from repro.aggregates.monitor import (
    AggregateMonitor,
    AggregateQuerySpec,
    MonitoringReport,
)
from repro.aggregates.controls import (
    class_count_control,
    per_predicate_controls,
    predicate_indicator_control,
    query_indicator_control,
    region_count_control,
    spatial_indicator_control,
)

__all__ = [
    "ControlVariateEstimate",
    "control_variate_estimate",
    "multiple_control_variates_estimate",
    "optimal_beta",
    "SampleEstimate",
    "sample_mean_estimate",
    "sample_frame_indices",
    "HoppingWindow",
    "SlidingWindow",
    "WindowBounds",
    "AggregateMonitor",
    "AggregateQuerySpec",
    "MonitoringReport",
    "class_count_control",
    "region_count_control",
    "spatial_indicator_control",
    "predicate_indicator_control",
    "query_indicator_control",
    "per_predicate_controls",
]
