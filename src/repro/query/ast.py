"""Query data model (abstract syntax).

A video monitoring query is a conjunction of predicates over the objects
detected in a frame, optionally evaluated over a window for aggregate
monitoring.  The predicate vocabulary covers what the paper's queries use:

* :class:`CountPredicate` — "exactly two people", "at least one car";
* :class:`SpatialPredicate` — "a car left of a bus" (the ``ORDER`` constraint);
* :class:`RegionPredicate` — "two people in the lower-left quadrant",
  "a bicycle not in the bike lane";
* :class:`ColorPredicate` — "the car is red" (an object-attribute predicate
  evaluated only by the full detector, never by the approximate filters).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.spatial.regions import Region
from repro.spatial.relations import Direction


class ComparisonOperator(enum.Enum):
    """Comparison operators allowed in count predicates."""

    EQUAL = "="
    AT_LEAST = ">="
    AT_MOST = "<="
    GREATER = ">"
    LESS = "<"

    def compare(self, left: int, right: int) -> bool:
        if self is ComparisonOperator.EQUAL:
            return left == right
        if self is ComparisonOperator.AT_LEAST:
            return left >= right
        if self is ComparisonOperator.AT_MOST:
            return left <= right
        if self is ComparisonOperator.GREATER:
            return left > right
        if self is ComparisonOperator.LESS:
            return left < right
        raise ValueError(f"unknown operator {self}")  # pragma: no cover


@dataclass(frozen=True)
class Span:
    """A half-open character range ``[start, end)`` into the query source text.

    Attached by the parser so diagnostics can point at the offending clause;
    offsets refer to the *normalized* text the parser works on (whitespace
    collapsed to single spaces), which :attr:`Query.source` preserves.
    Excluded from dataclass comparison wherever it is embedded, so two
    predicates parsed from different positions still compare (and hash, and
    merge across cascades) as equal.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span: [{self.start}, {self.end})")

    def excerpt(self, source: str) -> str:
        """The text the span covers (clamped to the source)."""
        return source[self.start : min(self.end, len(source))]


class Predicate:
    """Marker base class for all frame predicates."""


@dataclass(frozen=True)
class CountPredicate(Predicate):
    """Constrain the number of objects (of one class, or in total)."""

    class_name: str | None  # None means "all objects"
    operator: ComparisonOperator
    value: int
    span: Span | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"count predicates need non-negative values: {self.value}")

    def describe(self) -> str:
        target = self.class_name or "objects"
        return f"count({target}) {self.operator.value} {self.value}"


@dataclass(frozen=True)
class SpatialPredicate(Predicate):
    """Some object of ``subject_class`` bears ``direction`` to some object of ``reference_class``."""

    subject_class: str
    reference_class: str
    direction: Direction
    span: Span | None = field(default=None, compare=False)

    def describe(self) -> str:
        return f"{self.subject_class} {self.direction.value} {self.reference_class}"


@dataclass(frozen=True)
class RegionPredicate(Predicate):
    """At least / exactly ``value`` objects of ``class_name`` inside (or outside) ``region``."""

    class_name: str
    region: Region
    operator: ComparisonOperator = ComparisonOperator.AT_LEAST
    value: int = 1
    inside: bool = True
    span: Span | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"region predicates need non-negative values: {self.value}")

    def describe(self) -> str:
        where = "in" if self.inside else "not in"
        return (
            f"count({self.class_name} {where} {self.region.name}) "
            f"{self.operator.value} {self.value}"
        )


@dataclass(frozen=True)
class ColorPredicate(Predicate):
    """At least one object of ``class_name`` has the given color attribute."""

    class_name: str
    color: str
    span: Span | None = field(default=None, compare=False)

    def describe(self) -> str:
        return f"some {self.class_name} is {self.color}"


@dataclass(frozen=True)
class WindowSpec:
    """A hopping window over the stream, in frames (``WINDOW HOPPING`` clause).

    The executor materialises this as a
    :class:`~repro.aggregates.windows.HoppingWindow` and segments the stream
    into ``[start, start + size)`` ranges advancing by ``advance`` frames;
    overlapping instances (``advance < size``) share per-frame filter and
    detector work.
    """

    size: int
    advance: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.advance <= 0:
            raise ValueError(
                f"window size and advance must be positive: {self.size}, {self.advance}"
            )

    @property
    def is_tumbling(self) -> bool:
        """Whether consecutive windows abut without overlap (``advance == size``)."""
        return self.advance == self.size

    def describe(self) -> str:
        if self.is_tumbling:
            return f"TUMBLING (SIZE {self.size})"
        return f"HOPPING (SIZE {self.size}, ADVANCE BY {self.advance})"


@dataclass(frozen=True)
class Query:
    """A video monitoring query: a conjunction of predicates, optionally windowed.

    ``name`` is a label used in reports (e.g. ``"q5"``); ``aliases`` records
    the variable-to-class bindings declared in the SELECT clause when the
    query came from the parser (useful for round-tripping and debugging).
    ``source`` is the normalized query text the predicate spans index into
    (``None`` for programmatically built queries).
    """

    predicates: tuple[Predicate, ...]
    name: str = "query"
    window: WindowSpec | None = None
    aliases: dict[str, str] = field(default_factory=dict, compare=False, hash=False)
    source: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("a query needs at least one predicate")

    # ------------------------------------------------------------------
    # Introspection used by the planner
    # ------------------------------------------------------------------
    @property
    def count_predicates(self) -> list[CountPredicate]:
        return [p for p in self.predicates if isinstance(p, CountPredicate)]

    @property
    def spatial_predicates(self) -> list[SpatialPredicate]:
        return [p for p in self.predicates if isinstance(p, SpatialPredicate)]

    @property
    def region_predicates(self) -> list[RegionPredicate]:
        return [p for p in self.predicates if isinstance(p, RegionPredicate)]

    @property
    def color_predicates(self) -> list[ColorPredicate]:
        return [p for p in self.predicates if isinstance(p, ColorPredicate)]

    @property
    def referenced_classes(self) -> tuple[str, ...]:
        classes: list[str] = []
        for predicate in self.predicates:
            if isinstance(predicate, CountPredicate) and predicate.class_name:
                classes.append(predicate.class_name)
            elif isinstance(predicate, SpatialPredicate):
                classes.extend([predicate.subject_class, predicate.reference_class])
            elif isinstance(predicate, (RegionPredicate, ColorPredicate)):
                classes.append(predicate.class_name)
        seen: dict[str, None] = {}
        for name in classes:
            seen.setdefault(name, None)
        return tuple(seen)

    @property
    def has_spatial_constraints(self) -> bool:
        return bool(self.spatial_predicates or self.region_predicates)

    def describe(self) -> str:
        parts = " AND ".join(p.describe() for p in self.predicates)  # type: ignore[attr-defined]
        window = f" WINDOW {self.window.describe()}" if self.window else ""
        return f"{self.name}: {parts}{window}"
