"""Parallel pipelined execution: worker pools, decode-ahead prefetch, re-planning.

The batched executor (PR 1) amortises numpy call overhead but still runs
every stage on one core: render a chunk, filter it, verify the survivors,
repeat.  This module turns that loop into a pipeline:

* a **decode-ahead prefetcher** renders the next ``prefetch_depth`` chunks of
  frames on background threads while earlier chunks are being filtered;
* a **chunk-granular worker pool** runs the filter-cascade phase of several
  chunks concurrently — ``backend="thread"`` gives each worker its own
  deep-copied cascade (the numpy filters release the GIL in their stacked
  operations but share scratch state, so workers must not share filter
  objects), ``backend="process"`` ships the pickled cascades to each worker
  once and the frames per chunk *zero-copy* through
  ``multiprocessing.shared_memory`` (workers see numpy views over the shared
  block; only pixels cross the boundary — ground truth stays in the parent,
  preserving the rule that filters see nothing but pixels);
* results are **re-merged in stream order**: the reference detector runs in
  the main process on each chunk's cascade survivors exactly when that chunk
  is merged, so matched frames, work counters and the simulated-cost history
  are identical to the sequential batched path no matter how chunks raced.

Cost accounting stays exact under concurrency by construction: each worker
charges its filter work to a *private* :class:`~repro.cost.SimulatedClock`
and returns the chunk's delta; the merge loop absorbs the deltas into the
main clock in chunk order (:meth:`~repro.cost.SimulatedClock.absorb`), and
the per-worker totals are reported in a
:class:`~repro.cost.ParallelCostReport` alongside the run's wall clock.

**Adaptive runtime re-planning** rides on the ordered merge stream: a
:class:`CascadeProfiler` watches each step's live pass rate over a sliding
window and, when the observed cost per rejection says the planned order is
wasting filter milliseconds (a planning-time estimate was wrong, or the
stream drifted), feeds the rates to
:meth:`~repro.query.planner.QueryPlanner.replan` and switches subsequently
*submitted* chunks to the corrected order.  Cascade steps are conjunctive,
so reordering never changes which frames survive — every revision is logged
as a :class:`PlanRevision` on the execution's stats, and ``adaptive`` is off
by default.
"""

from __future__ import annotations

import copy
import os
import pickle
import queue
import sys
import threading
import time
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import nullcontext
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Callable, Sequence

import numpy as np

from repro.cost import CostBreakdown, ParallelCostReport, SimulatedClock
from repro.faults.injector import FaultError, FaultExhausted, clear_fault_hooks
from repro.filters.base import FilterPrediction, FrameFilter
from repro.query.planner import (
    FilterCascade,
    QueryPlanner,
    expected_cascade_cost_ms,
    replan_order,
)
from repro.video.stream import Frame, VideoStream

# Runtime sanitizer hook, installed by repro.analysis.sanitizers while a
# sanitized scan runs.  ``None`` means off, and every use is guarded with
# ``is not None`` so the uninstrumented engine is unchanged (INV007).
_WORKER_SANITIZER = None

# Fault-injection hook, installed by repro.faults while a chaos session
# runs.  Same zero-overhead contract (INV009): ``None`` means off, every
# use sits behind an ``is not None`` guard.
_FAULT_INJECTOR = None


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the parallel pipelined execution engine.

    ``num_workers`` filter workers process chunks of ``chunk_size`` frames
    concurrently while the prefetcher keeps ``prefetch_depth`` further chunks
    rendered ahead of submission.  ``backend`` selects threads (cheap to
    start, share memory, scale as far as the filters release the GIL) or
    processes (immune to the GIL; cascades are pickled to each worker once
    and frames travel zero-copy through shared memory — requires picklable
    cascades, which every planner-built cascade is).  See DESIGN.md for a
    thread-vs-process decision guide.

    ``adaptive=True`` enables mid-stream re-planning: every
    ``adaptive_interval`` merged observations the profiler compares the
    current step order against the order implied by the pass rates observed
    over the last ``adaptive_window`` observations (ignoring steps with fewer
    than ``adaptive_min_evaluated`` evaluated frames) and switches when the
    expected per-frame filter cost improves by at least
    ``adaptive_margin``x.  Off by default: the reorder is always
    output-preserving, but cost accounting then depends on the observed
    stream rather than the planned order.

    ``supervise=True`` turns on worker supervision (see
    :class:`WorkerSupervisor`): a chunk whose worker dies
    (``BrokenProcessPool``, injected crash) or stalls past
    ``worker_timeout_seconds`` is re-dispatched — after respawning the
    pool when the old one is broken or wedged — up to ``max_redispatch``
    times before the chunk is declared poisoned.  The in-order merge is
    untouched, so recovered runs stay bit-identical to fault-free ones.
    Off by default: an unsupervised run never starts the timeout
    machinery and fails fast exactly as before.

    ``sanitize`` enables the opt-in runtime sanitizers of
    :mod:`repro.analysis.sanitizers` for the chunked scan: ``"race"`` (the
    lockset/ownership race detector), ``"numeric"`` (NaN/Inf checks on layer
    outputs and cost accumulators), ``"determinism"`` (parallel vs
    sequential chunk-digest diffing), a comma-joined combination, or
    ``"all"``.  ``race`` and ``numeric`` instrument in-process state and
    therefore need ``backend="thread"``.  ``sanitize_strict=True`` (default)
    raises :class:`~repro.analysis.AnalysisError` at the first finding;
    otherwise findings are collected on the execution stats'
    ``sanitizer_report``.  The ``REPRO_SANITIZE`` environment variable
    supplies a default spec when ``sanitize`` is unset (modes the backend
    cannot support are dropped), which is how CI runs the whole parallel
    suite under full instrumentation without touching each test.
    """

    num_workers: int = 4
    backend: str = "thread"
    chunk_size: int = 16
    prefetch_depth: int = 2
    prefetch_threads: int | None = None
    adaptive: bool = False
    adaptive_window: int = 32
    adaptive_interval: int = 8
    adaptive_margin: float = 1.2
    adaptive_min_evaluated: int = 16
    sanitize: str | None = None
    sanitize_strict: bool = True
    supervise: bool = False
    worker_timeout_seconds: float = 30.0
    max_redispatch: int = 2

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be positive: {self.num_workers}")
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process': {self.backend!r}"
            )
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {self.chunk_size}")
        if self.prefetch_depth < 0:
            raise ValueError(
                f"prefetch_depth must be non-negative: {self.prefetch_depth}"
            )
        if self.prefetch_threads is not None and self.prefetch_threads < 1:
            raise ValueError(
                f"prefetch_threads must be positive: {self.prefetch_threads}"
            )
        if self.adaptive_window < 1 or self.adaptive_interval < 1:
            raise ValueError("adaptive_window and adaptive_interval must be positive")
        if self.adaptive_margin < 1.0:
            raise ValueError(
                f"adaptive_margin must be >= 1.0: {self.adaptive_margin}"
            )
        if self.adaptive_min_evaluated < 1:
            raise ValueError(
                f"adaptive_min_evaluated must be positive: {self.adaptive_min_evaluated}"
            )
        if self.worker_timeout_seconds <= 0.0:
            raise ValueError(
                f"worker_timeout_seconds must be positive: {self.worker_timeout_seconds}"
            )
        if self.max_redispatch < 0:
            raise ValueError(
                f"max_redispatch must be non-negative: {self.max_redispatch}"
            )
        # Local import: repro.analysis sits above the query package, so
        # importing it at module level would cycle (same reason as the
        # process backend's audit import).
        from repro.analysis.sanitizers import parse_sanitize_spec

        if self.sanitize is None:
            env_spec = os.environ.get("REPRO_SANITIZE")
            if env_spec:
                modes = parse_sanitize_spec(env_spec)
                if self.backend == "process":
                    # Race/numeric hooks live in the parent's modules; spawn
                    # or fork workers never see the installed session, so an
                    # env-driven default silently keeps what the backend can
                    # actually run.
                    modes = modes - {"race", "numeric"}
                object.__setattr__(
                    self, "sanitize", ",".join(sorted(modes)) if modes else None
                )
        else:
            modes = parse_sanitize_spec(self.sanitize)
            if not modes:
                object.__setattr__(self, "sanitize", None)
            elif self.backend == "process" and modes & {"race", "numeric"}:
                raise ValueError(
                    "sanitize='race'/'numeric' instrument in-process state the "
                    "process backend cannot observe; use backend='thread' (the "
                    "determinism checker works on either backend)"
                )

    @property
    def sanitize_modes(self) -> frozenset[str]:
        """The enabled sanitizer modes as a set (empty when off)."""
        from repro.analysis.sanitizers import parse_sanitize_spec

        return parse_sanitize_spec(self.sanitize)

    @property
    def effective_prefetch_threads(self) -> int:
        """Decode-ahead thread count (default: 2, but never more than the workers)."""
        if self.prefetch_threads is not None:
            return self.prefetch_threads
        return max(1, min(2, self.num_workers))


@dataclass(frozen=True)
class PlanRevision:
    """One mid-stream cascade reorder performed by the adaptive re-planner.

    ``old_order`` / ``new_order`` hold the cascade's step positions (indices
    into the *planned* cascade) in execution order before and after the
    revision; ``step_names`` names the steps by planned position so the
    orders are readable.  ``observed_pass_rates`` are the sliding-window pass
    rates (by planned position, ``None`` = too few observations) that drove
    the decision, and ``expected_gain`` the predicted per-frame filter-cost
    ratio old/new under those rates.  ``at_frame`` is the stream index at
    whose in-order merge point the revision was adopted; work submitted
    after that point runs the new order (chunks already in flight finish
    under the old one — harmless, since both orders pass the same frames).
    """

    at_frame: int
    old_order: tuple[int, ...]
    new_order: tuple[int, ...]
    step_names: tuple[str, ...]
    observed_pass_rates: tuple[float | None, ...]
    expected_gain: float

    def describe(self) -> str:
        old = " -> ".join(self.step_names[position] for position in self.old_order)
        new = " -> ".join(self.step_names[position] for position in self.new_order)
        return (
            f"frame {self.at_frame}: [{old}] => [{new}] "
            f"(expected {self.expected_gain:.2f}x)"
        )


@dataclass(frozen=True)
class ParallelStats:
    """Telemetry of one parallel pipelined execution.

    ``num_chunks == 0`` marks a prefetch-only run (the temporal-coherence
    composition, where gating is inherently sequential and parallelism
    contributes decode-ahead rendering only).
    """

    backend: str
    num_workers: int
    chunk_size: int
    prefetch_depth: int
    num_chunks: int
    cost: ParallelCostReport


class CascadeProfiler:
    """Sliding-window selectivity/cost profiler driving adaptive re-planning.

    The executor reports, for every merged chunk (or every fully evaluated
    frame on the temporal path), how many frames each cascade step evaluated
    and passed — *in planned-step positions*, so the bookkeeping is
    independent of the order currently executing.  Every
    ``adaptive_interval`` observations the profiler turns the window into
    per-step pass rates, asks :meth:`QueryPlanner.replan` for the order those
    rates imply, and adopts it iff the expected per-frame filter cost
    improves by ``adaptive_margin``x (the margin plus the evaluation floor
    keep borderline rates from making the order flap).  Observed rates are
    conditional on the order that produced them — the classic independence
    approximation of filter ordering, same as planning-time selectivity
    measurement.
    """

    def __init__(self, cascade: FilterCascade, config: ParallelConfig) -> None:
        self._cascade = cascade
        self._config = config
        self._latencies = [step.frame_filter.latency_ms for step in cascade.steps]
        self._names = tuple(step.name for step in cascade.steps)
        self._window: deque[Sequence[tuple[int, int]]] = deque()
        self._totals = [[0, 0] for _ in cascade.steps]
        self._since_consider = 0
        self.order: tuple[int, ...] = tuple(range(len(cascade.steps)))
        self.revisions: list[PlanRevision] = []

    @property
    def adaptive(self) -> bool:
        return self._config.adaptive and len(self._latencies) > 1

    def observe(self, step_stats: Sequence[tuple[int, int]], at_frame: int) -> None:
        """Record one merged observation; maybe revise the order.

        ``step_stats[p]`` is ``(evaluated, passed)`` for planned step ``p``;
        ``at_frame`` is the stream index of the merge point, recorded on any
        revision this observation triggers.
        """
        if not self.adaptive:
            return
        self._window.append(tuple(step_stats))
        for position, (evaluated, passed) in enumerate(step_stats):
            self._totals[position][0] += evaluated
            self._totals[position][1] += passed
        while len(self._window) > self._config.adaptive_window:
            expired = self._window.popleft()
            for position, (evaluated, passed) in enumerate(expired):
                self._totals[position][0] -= evaluated
                self._totals[position][1] -= passed
        self._since_consider += 1
        if self._since_consider >= self._config.adaptive_interval:
            self._since_consider = 0
            self._consider(at_frame)

    def pass_rates(self) -> tuple[float | None, ...]:
        """Windowed pass rate per planned step (``None`` below the evaluation floor)."""
        floor = self._config.adaptive_min_evaluated
        return tuple(
            passed / evaluated if evaluated >= floor else None
            for evaluated, passed in self._totals
        )

    def replanned_cascade(self) -> FilterCascade:
        """The cascade reordered to the profiler's current order (via :meth:`QueryPlanner.replan`)."""
        return QueryPlanner.replan(self._cascade, self.pass_rates())

    def _consider(self, at_frame: int) -> None:
        rates = self.pass_rates()
        candidate = replan_order(self._latencies, rates)
        if candidate == self.order:
            return
        current_cost = expected_cascade_cost_ms(self._latencies, rates, self.order)
        candidate_cost = expected_cascade_cost_ms(self._latencies, rates, candidate)
        if candidate_cost <= 0.0:
            return
        gain = current_cost / candidate_cost
        if gain < self._config.adaptive_margin:
            return
        self.revisions.append(
            PlanRevision(
                at_frame=at_frame,
                old_order=self.order,
                new_order=candidate,
                step_names=self._names,
                observed_pass_rates=rates,
                expected_gain=gain,
            )
        )
        self.order = candidate


# ----------------------------------------------------------------------
# The chunk filter phase (shared by the sequential shared scan and both
# parallel backends; must stay a top-level function for process pickling)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChunkOutcome:
    """Result of one chunk's filter phase, as returned by a worker.

    Everything downstream of the filters (detector, predicate evaluation,
    window partitioning) happens at the in-order merge in the main process,
    so this is the complete worker→main contract: per-query survivors,
    per-query attributed work, the shared computation count, per-planned-step
    profiler stats and the chunk's simulated filter cost.
    """

    chunk_id: int
    worker: str
    alive: tuple[tuple[int, ...], ...]
    filter_invocations: tuple[int, ...]
    attributed: tuple[dict[tuple[str, float], int], ...]
    computed: int
    step_stats: tuple[tuple[tuple[int, int], ...], ...]
    breakdown: CostBreakdown


def run_filter_chunk(
    query_cascades: Sequence[FilterCascade],
    assignments: Sequence[Sequence[int]],
    covered: Sequence[Sequence[bool]] | None,
    orders: Sequence[Sequence[int]],
    frames: Sequence[Frame],
) -> tuple[
    list[list[int]],
    list[int],
    list[dict[tuple[str, float], int]],
    int,
    list[list[tuple[int, int]]],
]:
    """Run every query's cascade over one chunk of frames.

    The shared-scan contract of ``execute_many``, restricted to one chunk: a
    filter shared by several queries' cascades is evaluated at most once per
    frame (cross-query prediction cache keyed by filter identity), deduped
    steps share their pass/fail outcome, and each query's attribution counts
    what a standalone run would have paid.  ``covered[q][k]`` masks frames
    outside query ``q``'s window coverage (``None`` = all frames covered);
    ``orders[q]`` is the execution order over cascade ``q``'s planned step
    positions (the adaptive re-planner's output; identity when static).

    Returns ``(alive, filter_invocations, attributed, computed,
    step_stats)`` where ``alive[q]`` holds the stream indices that survived
    query ``q``'s cascade in chunk order and ``step_stats[q][p]`` the
    ``(evaluated, passed)`` counts of planned step ``p`` for the profiler.
    """
    if _FAULT_INJECTOR is not None:
        # Fault site *before* any accumulation, keyed by the chunk's first
        # frame index (identical inline and in workers), so a faulted chunk
        # is all-or-nothing and a retry replays it bit-identically.
        if frames:
            _FAULT_INJECTOR.filter_event(frames[0].index)
    num_queries = len(query_cascades)
    alive_indices: list[list[int]] = []
    filter_invocations = [0] * num_queries
    attributed: list[dict[tuple[str, float], int]] = [{} for _ in range(num_queries)]
    step_stats: list[list[tuple[int, int]]] = [
        [(0, 0)] * len(cascade.steps) for cascade in query_cascades
    ]
    computed = 0
    predictions: dict[tuple, dict[int, FilterPrediction]] = {}
    outcomes: dict[tuple[int, int], bool] = {}
    for position, (cascade, step_positions) in enumerate(
        zip(query_cascades, assignments)
    ):
        if covered is None:
            alive = list(range(len(frames)))
        else:
            alive = [k for k in range(len(frames)) if covered[position][k]]
        counted: dict[int, set[tuple]] = {}
        for step_position in orders[position]:
            if not alive:
                break
            step = cascade.steps[step_position]
            unique_position = step_positions[step_position]
            identity = step.frame_filter.identity
            per_filter = predictions.setdefault(identity, {})
            missing = [k for k in alive if k not in per_filter]
            if missing:
                batch = step.frame_filter.predict_batch([frames[k] for k in missing])
                computed += len(missing)
                for k, prediction in zip(missing, batch):
                    per_filter[k] = prediction
            component = (step.frame_filter.name, step.frame_filter.latency_ms)
            for k in alive:
                seen = counted.setdefault(k, set())
                if identity not in seen:
                    seen.add(identity)
                    filter_invocations[position] += 1
                    attributed[position][component] = (
                        attributed[position].get(component, 0) + 1
                    )
            still_alive = []
            for k in alive:
                outcome_key = (unique_position, k)
                if outcome_key not in outcomes:
                    outcomes[outcome_key] = step.passes(per_filter[k])
                if outcomes[outcome_key]:
                    still_alive.append(k)
            step_stats[position][step_position] = (len(alive), len(still_alive))
            alive = still_alive
        alive_indices.append([frames[k].index for k in alive])
    return alive_indices, filter_invocations, attributed, computed, step_stats


# ----------------------------------------------------------------------
# Decode-ahead prefetchers
# ----------------------------------------------------------------------
class ChunkPrefetcher:
    """Renders whole chunks of frames ahead of worker submission.

    ``get(chunk_id)`` blocks until that chunk's frames are materialised and
    schedules rendering of the next ``depth`` chunks on the background pool,
    so decode overlaps with the filter phase of earlier chunks.  Rendering
    goes through :meth:`VideoStream.frame`, whose LRU cache is thread-safe.
    """

    def __init__(
        self,
        stream: VideoStream,
        chunks: Sequence[Sequence[int]],
        depth: int,
        threads: int,
    ) -> None:
        self._stream = stream
        self._chunks = chunks
        self._depth = max(0, depth)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, threads), thread_name_prefix="decode-ahead"
        )
        self._futures: dict[int, Future] = {}
        self._scheduled = 0
        self._closed = False

    def _render(self, chunk: Sequence[int]) -> list[Frame]:
        return [self._stream.frame(index) for index in chunk]

    def _schedule_through(self, chunk_id: int) -> None:
        limit = min(chunk_id + 1, len(self._chunks))
        while self._scheduled < limit:
            self._futures[self._scheduled] = self._pool.submit(
                self._render, self._chunks[self._scheduled]
            )
            self._scheduled += 1

    def get(self, chunk_id: int) -> list[Frame]:
        self._schedule_through(chunk_id + self._depth)
        future = self._futures.pop(chunk_id)
        return future.result()

    def close(self) -> None:
        """Shut the decode-ahead pool down; safe to call more than once.

        Error paths close eagerly and ``finally`` blocks close again —
        idempotency keeps the double close from re-running a shutdown.
        """
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)


class FramePrefetcher:
    """Decode-ahead rendering for *sequential* scans (temporal gating, sampling).

    Wraps ``stream.frame`` for scans that consume a known index sequence one
    frame at a time: requesting a frame schedules background rendering of
    the next ``depth`` indices of the sequence.  The window is bounded on
    both sides — scheduled entries falling more than ``depth`` positions
    behind the newest request are cancelled (if still queued) and dropped,
    so an adaptive-stride scan that skips most of the sequence neither
    retains every speculatively rendered frame nor decodes far behind the
    scan head.  Out-of-window requests (binary-search refinement probes,
    exact-mode re-verification) fall through to the stream — its
    thread-safe LRU usually still holds them.
    """

    def __init__(
        self,
        stream: VideoStream,
        indices: Sequence[int],
        depth: int,
        threads: int,
    ) -> None:
        self._stream = stream
        self._order = list(indices)
        self._position_of = {
            index: position for position, index in enumerate(self._order)
        }
        self._depth = max(0, depth)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, threads), thread_name_prefix="decode-ahead"
        )
        self._futures: dict[int, Future] = {}
        self._scheduled = 0
        self._evicted = 0
        self._lock = threading.Lock()
        self._closed = False

    def _schedule_through(self, position: int) -> None:
        limit = min(position + 1, len(self._order))
        with self._lock:
            while self._scheduled < limit:
                index = self._order[self._scheduled]
                self._futures[index] = self._pool.submit(self._stream.frame, index)
                self._scheduled += 1

    def _evict_behind(self, position: int) -> None:
        limit = min(position - self._depth, len(self._order))
        with self._lock:
            while self._evicted < limit:
                index = self._order[self._evicted]
                future = self._futures.pop(index, None)
                if future is not None:
                    future.cancel()
                self._evicted += 1

    def frame(self, index: int) -> Frame:
        position = self._position_of.get(index)
        if position is not None:
            self._schedule_through(position + self._depth)
            self._evict_behind(position)
        with self._lock:
            future = self._futures.pop(index, None)
        if future is not None and not future.cancelled():
            return future.result()
        return self._stream.frame(index)

    def close(self) -> None:
        """Shut the decode-ahead pool down; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Worker backends
# ----------------------------------------------------------------------
def _distinct_filters(cascades: Sequence[FilterCascade]) -> list[FrameFilter]:
    distinct: list[FrameFilter] = []
    for cascade in cascades:
        for frame_filter in cascade.filters:
            if all(frame_filter is not existing for existing in distinct):
                distinct.append(frame_filter)
    return distinct


def _attach_worker_clock(
    cascades: Sequence[FilterCascade],
) -> SimulatedClock:
    clock = SimulatedClock()
    for frame_filter in _distinct_filters(cascades):
        frame_filter.clock = clock
    return clock


def _apply_worker_directive(
    directive: tuple[str, float] | None, chunk_id: int, process: bool
) -> None:
    """Enact a parent-side crash/stall directive inside a worker task.

    Runs at the very top of the task — before any clone/slot/shared-memory
    acquisition — so a crashed or stalled attempt leaves no partial filter
    charges and holds no resources.  The stall is a deliberate wall-clock
    sleep: it simulates a *hung* worker for the supervisor's timeout to
    catch, which a simulated-clock charge could never do.
    """
    if directive is None:
        return
    action, seconds = directive
    if action == "stall":
        time.sleep(seconds)
    elif action == "crash":
        if process:
            os._exit(13)
        raise FaultError("worker_crash", chunk_id, "injected worker crash")


class _ThreadBackend:
    """Thread pool with one private cascade clone (and clock) per worker.

    The cascades of one worker are deep-copied *together*, so filters shared
    across queries stay shared within the clone and the cross-query
    prediction cache keeps working.  A free-list hands each task a clone;
    at most ``num_workers`` tasks run at once, so a clone is never used
    concurrently.
    """

    def __init__(
        self,
        config: ParallelConfig,
        query_cascades: Sequence[FilterCascade],
        assignments: Sequence[Sequence[int]],
    ) -> None:
        self._assignments = [list(row) for row in assignments]
        self._slots: queue.SimpleQueue = queue.SimpleQueue()
        for worker_id in range(config.num_workers):
            clones = copy.deepcopy(list(query_cascades))
            clock = _attach_worker_clock(clones)
            self._slots.put((worker_id, clones, clock))
        self._pool = ThreadPoolExecutor(
            max_workers=config.num_workers, thread_name_prefix="filter-worker"
        )

    def submit(
        self,
        chunk_id: int,
        indices: Sequence[int],
        frames: Sequence[Frame],
        covered: Sequence[Sequence[bool]] | None,
        orders: Sequence[Sequence[int]],
    ) -> tuple[Future, object]:
        directive = None
        if _FAULT_INJECTOR is not None:
            # Crash/stall decided parent-side at submission so a redispatch
            # (which consults the schedule again) runs the chunk clean.
            directive = _FAULT_INJECTOR.worker_directive(chunk_id)
        return (
            self._pool.submit(
                self._task, chunk_id, frames, covered, orders, directive
            ),
            None,
        )

    def _task(
        self,
        chunk_id: int,
        frames: Sequence[Frame],
        covered: Sequence[Sequence[bool]] | None,
        orders: Sequence[Sequence[int]],
        directive: tuple[str, float] | None = None,
    ) -> ChunkOutcome:
        _apply_worker_directive(directive, chunk_id, process=False)
        worker_id, cascades, clock = self._slots.get()
        try:
            if _WORKER_SANITIZER is not None:
                window = _WORKER_SANITIZER.worker_window(chunk_id, id(cascades))
            else:
                window = nullcontext()
            with window:
                baseline = clock.snapshot()
                alive, invocations, attributed, computed, step_stats = run_filter_chunk(
                    cascades, self._assignments, covered, orders, frames
                )
                delta = clock.delta_since(baseline)
        finally:
            self._slots.put((worker_id, cascades, clock))
        return ChunkOutcome(
            chunk_id=chunk_id,
            worker=f"thread-{worker_id}",
            alive=tuple(tuple(row) for row in alive),
            filter_invocations=tuple(invocations),
            attributed=tuple(attributed),
            computed=computed,
            step_stats=tuple(tuple(row) for row in step_stats),
            breakdown=delta,
        )

    def release(self, handle: object) -> None:  # symmetric with _ProcessBackend
        return None

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)

    def abandon(self) -> None:
        """Non-blocking shutdown for a pool presumed wedged.

        A stalled task may still hold a pool thread; waiting for it would
        re-create the very hang the supervisor is escaping.
        """
        self._pool.shutdown(wait=False, cancel_futures=True)


# Process-worker state installed once by the pool initializer: unpickling the
# cascades per task would dwarf the filter work itself.
_PROCESS_STATE: dict = {}


def _init_process_worker(payload: bytes) -> None:
    # A forked worker must never consult its inherited injector copy:
    # worker faults are decided parent-side and shipped with the task.
    clear_fault_hooks()
    query_cascades, assignments = pickle.loads(payload)
    _PROCESS_STATE["cascades"] = query_cascades
    _PROCESS_STATE["assignments"] = assignments
    _PROCESS_STATE["clock"] = _attach_worker_clock(query_cascades)


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory block.

    The parent owns the block's lifecycle: it unlinks (and unregisters) the
    block once the chunk is merged.  Pool workers share the parent's
    resource-tracker process, so the attach-side registration is a harmless
    set-dedup — the worker must *not* unregister on close, or the parent's
    unlink would trip the tracker.
    """
    return shared_memory.SharedMemory(name=name)


def _process_chunk_task(
    chunk_id: int,
    shm_name: str,
    shape: tuple[int, ...],
    dtype_name: str,
    indices: Sequence[int],
    covered: Sequence[Sequence[bool]] | None,
    orders: Sequence[Sequence[int]],
    directive: tuple[str, float] | None = None,
) -> ChunkOutcome:
    # Before attaching shared memory: a crashed/stalled attempt must not
    # hold an open view over a block the supervisor is about to unlink.
    _apply_worker_directive(directive, chunk_id, process=True)
    state = _PROCESS_STATE
    clock: SimulatedClock = state["clock"]
    block = _attach_shared_memory(shm_name)
    try:
        images = np.ndarray(shape, dtype=np.dtype(dtype_name), buffer=block.buf)
        frames = [
            Frame(index=index, image=images[k], ground_truth=None)
            for k, index in enumerate(indices)
        ]
        baseline = clock.snapshot()
        alive, invocations, attributed, computed, step_stats = run_filter_chunk(
            state["cascades"], state["assignments"], covered, orders, frames
        )
        delta = clock.delta_since(baseline)
    finally:
        # Drop every view over the shared block before closing it; a live
        # exported buffer would make close() raise.
        frames = None
        images = None
        try:
            block.close()
        except BufferError:  # pragma: no cover - defensive
            pass
    return ChunkOutcome(
        chunk_id=chunk_id,
        worker=f"pid-{os.getpid()}",
        alive=tuple(tuple(row) for row in alive),
        filter_invocations=tuple(invocations),
        attributed=tuple(attributed),
        computed=computed,
        step_stats=tuple(tuple(row) for row in step_stats),
        breakdown=delta,
    )


def _process_warmup() -> bool:
    return "cascades" in _PROCESS_STATE


class _ProcessBackend:
    """Process pool: cascades pickled once per worker, frames shipped zero-copy."""

    def __init__(
        self,
        config: ParallelConfig,
        query_cascades: Sequence[FilterCascade],
        assignments: Sequence[Sequence[int]],
    ) -> None:
        # Concurrency pre-flight (local import: repro.analysis depends on the
        # query AST package, which initialises this module — importing it at
        # module level would cycle).  The static audit catches lambda/local
        # checks and unpicklable steps with a structured reason *before* any
        # worker process exists, instead of an opaque mid-run pool error.
        from repro.analysis import AnalysisError, Severity, audit_cascade

        findings = []
        for cascade in query_cascades:
            findings.extend(audit_cascade(cascade).diagnostics)
        errors = [d for d in findings if d.severity is Severity.ERROR]
        if errors:
            headline = "; ".join(f"{d.code}: {d.message}" for d in errors)
            raise AnalysisError(
                "backend='process' needs picklable, worker-safe cascades "
                "(planner-built cascades are; hand-built lambda checks are "
                f"not) — use backend='thread' instead [{headline}]",
                diagnostics=tuple(findings),
            )
        try:
            payload = pickle.dumps(
                (list(query_cascades), [list(row) for row in assignments])
            )
        except Exception as error:
            raise ValueError(
                "backend='process' needs picklable cascades (planner-built "
                "cascades are; hand-built lambda checks are not) — use "
                "backend='thread' instead"
            ) from error
        # Fork is the cheap path (no re-import, payload inherited) but is
        # only reliably safe on Linux — macOS's Objective-C runtime aborts
        # in forked children, which is why CPython's own default there is
        # spawn.  Everywhere else, pay the spawn cost.
        methods = get_all_start_methods()
        use_fork = sys.platform == "linux" and "fork" in methods
        context = get_context("fork" if use_fork else "spawn")
        # Start the parent's resource tracker before any worker exists, so
        # every worker inherits it: the workers' attach-side shared-memory
        # registrations then dedupe against the parent's create-side ones
        # instead of spawning per-worker trackers that would try to clean up
        # blocks the parent already unlinked.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platform-specific
            pass
        self._pool = ProcessPoolExecutor(
            max_workers=config.num_workers,
            mp_context=context,
            initializer=_init_process_worker,
            initargs=(payload,),
        )
        # Spawn (or fork) every worker *now*, before any prefetch thread
        # starts: forking after threads exist risks inheriting held locks.
        warmups = [
            self._pool.submit(_process_warmup) for _ in range(config.num_workers)
        ]
        for warmup in warmups:
            if not warmup.result():
                raise RuntimeError("process worker initialisation failed")

    def submit(
        self,
        chunk_id: int,
        indices: Sequence[int],
        frames: Sequence[Frame],
        covered: Sequence[Sequence[bool]] | None,
        orders: Sequence[Sequence[int]],
    ) -> tuple[Future, object]:
        images = [frame.image for frame in frames]
        shape = (len(images),) + images[0].shape
        dtype = images[0].dtype
        if any(image.shape != images[0].shape or image.dtype != dtype for image in images):
            raise ValueError("process backend needs uniform frame shapes per chunk")
        block = shared_memory.SharedMemory(
            create=True, size=int(np.prod(shape)) * dtype.itemsize
        )
        stacked = np.ndarray(shape, dtype=dtype, buffer=block.buf)
        for k, image in enumerate(images):
            stacked[k] = image
        del stacked
        directive = None
        if _FAULT_INJECTOR is not None:
            # Parent-side decision: fork/spawn children hold stale schedule
            # copies that must never be consulted for crash/stall.
            directive = _FAULT_INJECTOR.worker_directive(chunk_id)
        try:
            future = self._pool.submit(
                _process_chunk_task,
                chunk_id,
                block.name,
                shape,
                dtype.name,
                list(indices),
                covered,
                [list(order) for order in orders],
                directive,
            )
        except BaseException:
            # The block is only handed to the caller on success; a failed
            # submit (e.g. a pool already broken by a crashed sibling) must
            # unlink it here or the segment leaks.
            self.release(block)
            raise
        return future, block

    def release(self, handle: object) -> None:
        if handle is None:
            return
        block: shared_memory.SharedMemory = handle
        try:
            block.close()
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - defensive
            pass

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)

    def abandon(self) -> None:
        """Non-blocking shutdown for a broken or wedged pool."""
        self._pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
def _make_backend(
    config: ParallelConfig,
    query_cascades: Sequence[FilterCascade],
    assignments: Sequence[Sequence[int]],
) -> "_ThreadBackend | _ProcessBackend":
    if config.backend == "process":
        return _ProcessBackend(config, query_cascades, assignments)
    return _ThreadBackend(config, query_cascades, assignments)


class ChunkDispatch:
    """One dispatched chunk and everything needed to re-dispatch it.

    ``orders`` are the step orders stamped at *original* submission time;
    a re-dispatch reuses them even if the adaptive profiler has moved on,
    so a recovered run stays bit-identical to a fault-free one.
    """

    __slots__ = (
        "chunk_id",
        "indices",
        "frames",
        "covered",
        "orders",
        "future",
        "handle",
        "generation",
        "attempts",
    )

    def __init__(
        self,
        chunk_id: int,
        indices: Sequence[int],
        frames: list[Frame],
        covered: Sequence[Sequence[bool]] | None,
        orders: Sequence[Sequence[int]],
    ) -> None:
        self.chunk_id = chunk_id
        self.indices = list(indices)
        self.frames = frames
        self.covered = covered
        self.orders = orders
        self.future: Future | None = None
        self.handle: object = None
        self.generation = 0
        self.attempts = 0


class WorkerSupervisor:
    """Owns the filter backend and heals dead or stalled workers.

    State machine per chunk (``supervise=True``)::

        DISPATCHED --result ok--------------------------> MERGED
            |  ^
            |  +--redispatch (attempts <= max_redispatch)-+
            |                                             |
            +--FaultError (thread worker crash) ----------+
            +--BrokenExecutor (process worker death) -> respawn pool -+
            +--timeout worker_timeout_seconds (stall) -> respawn pool -+
            |
            +--attempts exhausted--> FaultExhausted -> quarantine

    The pool is respawned at most once per failure *generation*: a dead
    process worker breaks every in-flight future of its pool at once, and
    only the first observed failure pays the respawn — the siblings are
    re-dispatched onto the already-fresh pool.  An unsupervised scan never
    arms the timeout and propagates the first failure unchanged.
    """

    def __init__(
        self,
        config: ParallelConfig,
        query_cascades: Sequence[FilterCascade],
        assignments: Sequence[Sequence[int]],
    ) -> None:
        self._config = config
        self._query_cascades = list(query_cascades)
        self._assignments = [list(row) for row in assignments]
        self._backend = _make_backend(config, self._query_cascades, self._assignments)
        self._generation = 0
        self.respawns = 0
        self.redispatches = 0

    def submit(
        self,
        chunk_id: int,
        indices: Sequence[int],
        frames: list[Frame],
        covered: Sequence[Sequence[bool]] | None,
        orders: Sequence[Sequence[int]],
    ) -> ChunkDispatch:
        entry = ChunkDispatch(chunk_id, indices, frames, covered, orders)
        self._dispatch(entry)
        return entry

    def _dispatch(self, entry: ChunkDispatch) -> None:
        while True:
            entry.attempts += 1
            try:
                entry.future, entry.handle = self._backend.submit(
                    entry.chunk_id,
                    entry.indices,
                    entry.frames,
                    entry.covered,
                    entry.orders,
                )
                entry.generation = self._generation
                return
            except BrokenExecutor as error:
                # A sibling's crash can break the pool before this chunk
                # even ships; same recovery path as a failed result.
                self._recover(entry, error, respawn=True)

    def result(self, entry: ChunkDispatch) -> ChunkOutcome:
        """Block for one chunk's outcome, healing failures in place.

        Always releases the chunk's shared-memory handle — success,
        failure and exhaustion paths alike — so no segment outlives its
        merge point.
        """
        timeout = (
            self._config.worker_timeout_seconds if self._config.supervise else None
        )
        while True:
            assert entry.future is not None
            try:
                outcome = entry.future.result(timeout)
            except FuturesTimeout as error:
                self._recover(entry, error, respawn=True)
            except FaultError as error:
                # A thread worker "crash": the pool itself is intact.
                self._recover(entry, error, respawn=False)
            except BrokenExecutor as error:
                self._recover(entry, error, respawn=True)
            else:
                self._release(entry)
                return outcome

    def _recover(
        self, entry: ChunkDispatch, error: BaseException, *, respawn: bool
    ) -> None:
        self._release(entry)
        if not self._config.supervise:
            raise error
        if entry.attempts > self._config.max_redispatch:
            if _FAULT_INJECTOR is not None:
                _FAULT_INJECTOR.log.note_exhausted()
            raise FaultExhausted(
                "worker",
                entry.chunk_id,
                entry.attempts,
                str(error) or type(error).__name__,
            ) from error
        if respawn and entry.generation == self._generation:
            self._respawn()
        self.redispatches += 1
        if _FAULT_INJECTOR is not None:
            _FAULT_INJECTOR.log.note_redispatch()
        self._dispatch(entry)

    def _respawn(self) -> None:
        self._generation += 1
        self.respawns += 1
        if _FAULT_INJECTOR is not None:
            _FAULT_INJECTOR.log.note_respawn()
        old = self._backend
        # Fresh pool first: re-dispatched chunks must never queue behind a
        # stalled task in the old one.  The old pool is abandoned without
        # waiting (a wedged worker would block a wait=True shutdown).
        self._backend = _make_backend(
            self._config, self._query_cascades, self._assignments
        )
        old.abandon()

    def _release(self, entry: ChunkDispatch) -> None:
        if entry.handle is not None:
            # release() is pool-independent (pure shared-memory teardown),
            # so the current backend can release a handle an abandoned
            # generation created.
            self._backend.release(entry.handle)
            entry.handle = None

    def discard(self, entry: ChunkDispatch) -> None:
        """Teardown-path cleanup for a chunk that will never be merged."""
        if entry.future is not None and not entry.future.cancel():
            try:
                entry.future.result(self._config.worker_timeout_seconds)
            except Exception:  # pragma: no cover - teardown path
                pass
        self._release(entry)

    def close(self) -> None:
        self._backend.close()


# ----------------------------------------------------------------------
# The pipeline driver
# ----------------------------------------------------------------------
def partition_chunks(indices: Sequence[int], chunk_size: int) -> list[list[int]]:
    """Split a scan's frame indices into submission chunks."""
    return [
        list(indices[start : start + chunk_size])
        for start in range(0, len(indices), chunk_size)
    ]


def run_parallel_scan(
    config: ParallelConfig,
    stream: VideoStream,
    union_indices: Sequence[int],
    query_cascades: Sequence[FilterCascade],
    assignments: Sequence[Sequence[int]],
    member_sets: Sequence[set[int]] | None,
    profilers: Sequence[CascadeProfiler] | None,
    chunk_size: int,
    merge: Callable[[int, list[Frame], ChunkOutcome], None],
    *,
    quarantine: Callable[[int, Sequence[object], BaseException], None] | None = None,
) -> tuple[tuple[CostBreakdown, ...], int]:
    """Drive the parallel pipeline over one scan, merging strictly in order.

    The submission loop keeps at most ``num_workers + prefetch_depth`` chunks
    in flight, pulling each chunk's frames from the decode-ahead prefetcher
    and stamping it with the step orders current at submission time; the
    merge loop consumes results in chunk order, handing each
    :class:`ChunkOutcome` (plus the parent-side frames, which still carry
    ground truth for the detector) to ``merge`` and feeding the profilers —
    so adaptive revisions are decided on the ordered stream even though
    chunks complete out of order.  Returns the per-worker cost breakdowns
    (sorted by worker label) and the number of chunks executed.

    Dispatch goes through a :class:`WorkerSupervisor`: with
    ``config.supervise`` set, dead or stalled workers are respawned and
    their chunks re-dispatched transparently.  ``quarantine`` (when given)
    receives ``(chunk_id, frames_or_indices, error)`` for a chunk whose
    retries were exhausted — decode exhaustion passes the bare index list,
    a poisoned worker chunk passes the rendered frames — and the scan
    continues; without it exhaustion propagates and aborts the scan.
    """
    chunks = partition_chunks(union_indices, chunk_size)
    if not chunks:
        return (), 0
    identity_orders = [tuple(range(len(cascade.steps))) for cascade in query_cascades]
    # Backend first (process workers must exist before any thread starts),
    # prefetcher second.
    supervisor = WorkerSupervisor(config, query_cascades, assignments)
    try:
        prefetcher = ChunkPrefetcher(
            stream, chunks, depth=config.prefetch_depth,
            threads=config.effective_prefetch_threads,
        )
    except BaseException:
        # The try/finally below only exists once the prefetcher does; without
        # this guard a failing prefetcher constructor strands live backend
        # workers (fatal for a service that restarts scans in a loop).
        supervisor.close()
        raise
    worker_totals: dict[str, CostBreakdown] = {}
    max_inflight = config.num_workers + config.prefetch_depth
    inflight: dict[int, ChunkDispatch] = {}
    skipped: set[int] = set()
    next_submit = 0
    next_merge = 0
    try:
        while next_merge < len(chunks):
            while (
                next_submit < len(chunks)
                and next_submit - next_merge < max_inflight
            ):
                chunk = chunks[next_submit]
                try:
                    frames = prefetcher.get(next_submit)
                except FaultExhausted as error:
                    # Undecodable chunk: no frames ever existed, so the
                    # quarantine record carries the bare indices.
                    if quarantine is None:
                        raise
                    quarantine(next_submit, chunk, error)
                    skipped.add(next_submit)
                    next_submit += 1
                    continue
                if profilers is not None:
                    orders = [tuple(profiler.order) for profiler in profilers]
                else:
                    orders = identity_orders
                if member_sets is not None:
                    covered: Sequence[Sequence[bool]] | None = [
                        [index in members for index in chunk]
                        for members in member_sets
                    ]
                else:
                    covered = None
                inflight[next_submit] = supervisor.submit(
                    next_submit, chunk, frames, covered, orders
                )
                next_submit += 1
            if next_merge in skipped:
                skipped.discard(next_merge)
                next_merge += 1
                continue
            entry = inflight.pop(next_merge)
            try:
                outcome = supervisor.result(entry)
            except FaultExhausted as error:
                if quarantine is None:
                    raise
                quarantine(next_merge, entry.frames, error)
                next_merge += 1
                continue
            worker_totals[outcome.worker] = worker_totals.get(
                outcome.worker, CostBreakdown()
            ).merged_with(outcome.breakdown)
            if _WORKER_SANITIZER is not None:
                _WORKER_SANITIZER.observe_chunk(next_merge, outcome)
            merge(next_merge, entry.frames, outcome)
            if profilers is not None:
                at_frame = chunks[next_merge][-1]
                for profiler, stats in zip(profilers, outcome.step_stats):
                    profiler.observe(stats, at_frame)
            next_merge += 1
    finally:
        for entry in inflight.values():
            supervisor.discard(entry)
        prefetcher.close()
        supervisor.close()
    per_worker = tuple(
        worker_totals[label] for label in sorted(worker_totals, key=_worker_sort_key)
    )
    return per_worker, len(chunks)


def _worker_sort_key(label: str) -> tuple:
    """Numeric-aware ordering for worker labels (``thread-10`` after ``thread-2``)."""
    prefix, _, suffix = label.rpartition("-")
    if suffix.isdigit():
        return (prefix, int(suffix))
    return (label, -1)
