"""Fluent query builder.

Programmatic alternative to the SQL-like parser; the evaluation queries of
Section IV are one-liners with it, e.g. the paper's q5 ("exactly one car and
exactly one person and the car left of the person" on Jackson):

.. code-block:: python

    query = (
        QueryBuilder("q5")
        .count("car").equals(1)
        .count("person").equals(1)
        .spatial("car").left_of("person")
        .build()
    )
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import (
    ColorPredicate,
    ComparisonOperator,
    CountPredicate,
    Predicate,
    Query,
    RegionPredicate,
    SpatialPredicate,
    WindowSpec,
)
from repro.spatial.regions import Quadrant, Region, quadrant_region
from repro.spatial.relations import Direction


@dataclass
class _CountClause:
    builder: "QueryBuilder"
    class_name: str | None

    def equals(self, value: int) -> "QueryBuilder":
        return self.builder._add(
            CountPredicate(self.class_name, ComparisonOperator.EQUAL, value)
        )

    def at_least(self, value: int) -> "QueryBuilder":
        return self.builder._add(
            CountPredicate(self.class_name, ComparisonOperator.AT_LEAST, value)
        )

    def at_most(self, value: int) -> "QueryBuilder":
        return self.builder._add(
            CountPredicate(self.class_name, ComparisonOperator.AT_MOST, value)
        )

    def greater_than(self, value: int) -> "QueryBuilder":
        return self.builder._add(
            CountPredicate(self.class_name, ComparisonOperator.GREATER, value)
        )

    def less_than(self, value: int) -> "QueryBuilder":
        return self.builder._add(
            CountPredicate(self.class_name, ComparisonOperator.LESS, value)
        )


@dataclass
class _SpatialClause:
    builder: "QueryBuilder"
    subject_class: str

    def _add(self, reference_class: str, direction: Direction) -> "QueryBuilder":
        return self.builder._add(
            SpatialPredicate(self.subject_class, reference_class, direction)
        )

    def left_of(self, reference_class: str) -> "QueryBuilder":
        return self._add(reference_class, Direction.LEFT_OF)

    def right_of(self, reference_class: str) -> "QueryBuilder":
        return self._add(reference_class, Direction.RIGHT_OF)

    def above(self, reference_class: str) -> "QueryBuilder":
        return self._add(reference_class, Direction.ABOVE)

    def below(self, reference_class: str) -> "QueryBuilder":
        return self._add(reference_class, Direction.BELOW)


@dataclass
class _RegionClause:
    builder: "QueryBuilder"
    class_name: str
    region: Region
    inside: bool

    def at_least(self, value: int) -> "QueryBuilder":
        return self.builder._add(
            RegionPredicate(
                self.class_name, self.region, ComparisonOperator.AT_LEAST, value, self.inside
            )
        )

    def exactly(self, value: int) -> "QueryBuilder":
        return self.builder._add(
            RegionPredicate(
                self.class_name, self.region, ComparisonOperator.EQUAL, value, self.inside
            )
        )


class QueryBuilder:
    """Builds :class:`~repro.query.ast.Query` objects with a fluent interface."""

    def __init__(self, name: str = "query") -> None:
        self._name = name
        self._predicates: list[Predicate] = []
        self._window: WindowSpec | None = None

    # ------------------------------------------------------------------
    # Clause entry points
    # ------------------------------------------------------------------
    def count(self, class_name: str | None = None) -> _CountClause:
        """Start a count predicate (``class_name=None`` counts all objects)."""
        return _CountClause(self, class_name)

    def total_count(self) -> _CountClause:
        """Alias of ``count(None)``."""
        return _CountClause(self, None)

    def spatial(self, subject_class: str) -> _SpatialClause:
        """Start a spatial predicate with ``subject_class`` as the subject."""
        return _SpatialClause(self, subject_class)

    def in_region(self, class_name: str, region: Region) -> _RegionClause:
        """Start a region predicate: objects of ``class_name`` inside ``region``."""
        return _RegionClause(self, class_name, region, inside=True)

    def not_in_region(self, class_name: str, region: Region) -> _RegionClause:
        """Start a region predicate: objects of ``class_name`` outside ``region``."""
        return _RegionClause(self, class_name, region, inside=False)

    def in_quadrant(
        self, class_name: str, quadrant: Quadrant, frame_width: int, frame_height: int
    ) -> _RegionClause:
        """Region predicate for one of the four screen quadrants."""
        region = quadrant_region(quadrant, frame_width, frame_height)
        return _RegionClause(self, class_name, region, inside=True)

    def color(self, class_name: str, color: str) -> "QueryBuilder":
        """Require at least one object of ``class_name`` with the given color."""
        return self._add(ColorPredicate(class_name, color))

    def window(self, size: int, advance: int | None = None) -> "QueryBuilder":
        """Attach a hopping window (``advance`` defaults to ``size``)."""
        self._window = WindowSpec(size=size, advance=advance if advance is not None else size)
        return self

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _add(self, predicate: Predicate) -> "QueryBuilder":
        self._predicates.append(predicate)
        return self

    def build(
        self,
        *,
        lint: bool = False,
        strict: bool = False,
        context: "object | None" = None,
    ) -> Query:
        """Assemble the query.

        With ``lint=True`` the static analyzer (:mod:`repro.analysis`) checks
        the built query and surfaces findings as
        :class:`~repro.analysis.AnalysisWarning`; ``strict=True`` raises
        :class:`~repro.analysis.AnalysisError` (a ``ValueError``) on
        error-severity findings instead.  ``context`` is an optional
        :class:`~repro.analysis.AnalysisContext` supplying the class
        vocabulary and frame geometry for the deeper checks.
        """
        query = Query(
            predicates=tuple(self._predicates), name=self._name, window=self._window
        )
        if lint or strict:
            # Local import: repro.analysis imports this package in turn.
            from repro.analysis import lint_query

            report = lint_query(query, context, strict=strict)
            report.emit_warnings()
        return query
