"""Exact predicate evaluation on full-detector output.

This is the "final decision" stage of the paper's pipeline: once a frame has
passed the approximate filters, the expensive detector runs and the query
predicates are evaluated exactly on its detections (well-established spatial
query processing — here simply pairwise checks over the small number of
objects per frame, within the paper's stated scope of tens of objects).
"""

from __future__ import annotations


from repro.detection.base import Detection, FrameDetections
from repro.query.ast import (
    ColorPredicate,
    CountPredicate,
    Predicate,
    Query,
    RegionPredicate,
    SpatialPredicate,
)
from repro.spatial.relations import evaluate_direction, inside_region
from repro.video.scene import FrameGroundTruth


def _count_predicate_holds(predicate: CountPredicate, detections: FrameDetections) -> bool:
    count = (
        detections.count
        if predicate.class_name is None
        else detections.count_of(predicate.class_name)
    )
    return predicate.operator.compare(count, predicate.value)


def _spatial_predicate_holds(predicate: SpatialPredicate, detections: FrameDetections) -> bool:
    subjects = detections.boxes_of(predicate.subject_class)
    references = detections.boxes_of(predicate.reference_class)
    for subject in subjects:
        for reference in references:
            if subject is reference:
                continue
            if evaluate_direction(subject, reference, predicate.direction).satisfied:
                return True
    return False


def _region_predicate_holds(predicate: RegionPredicate, detections: FrameDetections) -> bool:
    boxes = detections.boxes_of(predicate.class_name)
    matching = sum(
        1
        for box in boxes
        if inside_region(box, predicate.region) == predicate.inside
    )
    return predicate.operator.compare(matching, predicate.value)


def _color_predicate_holds(predicate: ColorPredicate, detections: FrameDetections) -> bool:
    return any(
        detection.color_name == predicate.color
        for detection in detections.of_class(predicate.class_name)
    )


def predicate_holds(predicate: Predicate, detections: FrameDetections) -> bool:
    """Evaluate a single predicate on a frame's detections."""
    if isinstance(predicate, CountPredicate):
        return _count_predicate_holds(predicate, detections)
    if isinstance(predicate, SpatialPredicate):
        return _spatial_predicate_holds(predicate, detections)
    if isinstance(predicate, RegionPredicate):
        return _region_predicate_holds(predicate, detections)
    if isinstance(predicate, ColorPredicate):
        return _color_predicate_holds(predicate, detections)
    raise TypeError(f"unknown predicate type: {type(predicate).__name__}")


def evaluate_predicates_on_detections(
    query: Query, detections: FrameDetections
) -> bool:
    """Whether a frame (represented by its detections) satisfies all query predicates."""
    return all(predicate_holds(predicate, detections) for predicate in query.predicates)


def evaluate_query_on_ground_truth(query: Query, ground_truth: FrameGroundTruth) -> bool:
    """Evaluate a query against simulator ground truth (used only by tests).

    Ground truth objects are converted to pseudo-detections with perfect
    scores so the same predicate evaluation code path is exercised.
    """
    detections = FrameDetections(
        frame_index=ground_truth.frame_index,
        detections=tuple(
            Detection(
                class_name=state.class_name,
                box=state.box,
                score=1.0,
                color_name=state.color_name,
                track_id=state.track_id,
            )
            for state in ground_truth.objects
        ),
        latency_ms=0.0,
        detector_name="ground_truth",
    )
    return evaluate_predicates_on_detections(query, detections)
