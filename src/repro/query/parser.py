"""Parser for the paper's SQL-like video query syntax.

The paper (adopting the syntax of Lu et al.) writes monitoring queries like::

    SELECT cameraID, frameID,
           C1(F1(vehBox1)) AS vehType1,
           C1(F1(vehBox2)) AS vehType2,
           C2(F2(vehBox1)) AS vehColor
    FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1, vehBox2
          USING VehDetector)
    WHERE vehType1 = car AND vehColor = red AND vehType2 = truck
      AND ORDER(vehType1, vehType2) = RIGHT

The parser turns such text into a :class:`~repro.query.ast.Query`:

* classifier aliases (``C1(F1(vehBox1)) AS vehType1``) bind a variable to an
  object box; an equality on a *type* alias (``vehType1 = car``) declares the
  box's class, and an equality on a *color* alias (``vehColor = red``)
  becomes a :class:`ColorPredicate` on that class;
* each class mentioned this way contributes a ``count >= number of boxes of
  that class`` predicate (the boxes must exist in the frame);
* ``ORDER(a, b) = RIGHT`` becomes a :class:`SpatialPredicate` (a left-of b);
* the shorthand forms ``COUNT(car) = 2``, ``COUNT(*) >= 3`` and
  ``INSIDE(person, LOWER_LEFT) >= 2`` are also accepted, since the evaluation
  queries q1–q7 / a1–a5 are most naturally written that way;
* ``WINDOW HOPPING (SIZE n, ADVANCE BY m)`` attaches a hopping window.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.query.ast import (
    ColorPredicate,
    ComparisonOperator,
    CountPredicate,
    Predicate,
    Query,
    RegionPredicate,
    Span,
    SpatialPredicate,
    WindowSpec,
)
from repro.spatial.regions import Quadrant, Region, quadrant_region
from repro.spatial.relations import Direction
from repro.video.objects import NAMED_COLORS


class ParseError(ValueError):
    """Raised when query text cannot be parsed."""


_ALIAS_RE = re.compile(
    r"(?P<expr>\w+\s*\(\s*\w+\s*\(\s*(?P<box>\w+)\s*\)\s*\))\s+AS\s+(?P<alias>\w+)",
    re.IGNORECASE,
)
_WINDOW_RE = re.compile(
    r"WINDOW\s+HOP\w*\s*\(\s*SIZE\s+(?P<size>\d+)\s*,\s*ADVANCE\s+BY\s+(?P<advance>\d+)\s*\)",
    re.IGNORECASE,
)
_ORDER_RE = re.compile(
    r"\(?\s*ORDER\s*\(\s*(?P<a>\w+)\s*,\s*(?P<b>\w+)\s*\)\s*=\s*(?P<dir>\w+)\s*\)?",
    re.IGNORECASE,
)
# Two-character operators must come first in the alternation, or ">=" would
# match as ">" followed by an unparseable "=".
_COMPARISON_OPS = r">=|<=|=|>|<"
_COUNT_RE = re.compile(
    r"COUNT\s*\(\s*(?P<target>[\w*]+)\s*\)\s*(?P<op>" + _COMPARISON_OPS + r")\s*(?P<value>\d+)",
    re.IGNORECASE,
)
_INSIDE_RE = re.compile(
    r"(?P<neg>NOT\s+)?INSIDE\s*\(\s*(?P<cls>\w+)\s*,\s*(?P<region>\w+)\s*\)\s*"
    r"(?P<op>" + _COMPARISON_OPS + r")\s*(?P<value>\d+)",
    re.IGNORECASE,
)
_EQUALITY_RE = re.compile(r"^(?P<alias>\w+)\s*=\s*(?P<value>[\w-]+)$")

_OPERATORS = {
    "=": ComparisonOperator.EQUAL,
    ">=": ComparisonOperator.AT_LEAST,
    "<=": ComparisonOperator.AT_MOST,
    ">": ComparisonOperator.GREATER,
    "<": ComparisonOperator.LESS,
}

_QUADRANT_NAMES = {q.value.upper(): q for q in Quadrant}


@dataclass
class _ParserState:
    """Intermediate information gathered while walking the WHERE clause."""

    alias_to_box: dict[str, str] = field(default_factory=dict)
    box_class: dict[str, str] = field(default_factory=dict)
    box_color: dict[str, str] = field(default_factory=dict)
    box_class_span: dict[str, Span | None] = field(default_factory=dict)
    box_color_span: dict[str, Span | None] = field(default_factory=dict)
    alias_class: dict[str, str] = field(default_factory=dict)
    predicates: list[Predicate] = field(default_factory=list)
    spatial_alias_pairs: list[tuple[str, str, Direction, Span | None]] = field(
        default_factory=list
    )


def _split_conditions(where_clause: str) -> list[str]:
    """Split a WHERE clause on top-level ANDs (parenthesis-aware)."""
    conditions: list[str] = []
    depth = 0
    current: list[str] = []
    tokens = re.split(r"(\(|\)|\bAND\b)", where_clause, flags=re.IGNORECASE)
    for token in tokens:
        if token is None:
            continue
        stripped = token.strip()
        if not stripped:
            continue
        if stripped == "(":
            depth += 1
            current.append(token)
        elif stripped == ")":
            depth -= 1
            current.append(token)
        elif stripped.upper() == "AND" and depth == 0:
            if current:
                conditions.append("".join(current).strip())
                current = []
        else:
            current.append(token)
    if current:
        conditions.append("".join(current).strip())
    return [c for c in conditions if c]


def _region_from_name(name: str, frame_width: int, frame_height: int) -> Region:
    upper = name.upper()
    if upper in _QUADRANT_NAMES:
        return quadrant_region(_QUADRANT_NAMES[upper], frame_width, frame_height)
    raise ParseError(
        f"unknown region {name!r}; expected one of {sorted(_QUADRANT_NAMES)}"
    )


def _is_color_alias(alias: str) -> bool:
    return "color" in alias.lower()


def _reject_leftover(condition: str, match: re.Match, kind: str) -> None:
    """Reject trailing (or leading) garbage around a recognised condition.

    The condition grammar has no infix operators besides the top-level ANDs
    already split away, so anything outside the matched region — bar
    grouping parentheses, whitespace and a trailing semicolon — is a typo
    the old ``.search()``-based parser would have silently dropped.
    """
    leftover = (condition[: match.start()] + condition[match.end() :]).strip(" ();")
    if leftover:
        raise ParseError(
            f"unexpected text {leftover!r} next to {kind} condition {condition!r}"
        )


def _parse_condition(
    condition: str,
    state: _ParserState,
    frame_width: int,
    frame_height: int,
    span: Span | None = None,
) -> None:
    condition = condition.strip().strip(";")
    if not condition:
        return

    order_match = _ORDER_RE.search(condition)
    if order_match:
        _reject_leftover(condition, order_match, "ORDER")
        direction = Direction.from_keyword(order_match.group("dir"))
        state.spatial_alias_pairs.append(
            (order_match.group("a"), order_match.group("b"), direction, span)
        )
        return

    count_match = _COUNT_RE.search(condition)
    if count_match:
        _reject_leftover(condition, count_match, "COUNT")
        target = count_match.group("target")
        class_name = None if target in ("*", "frameID") else target
        state.predicates.append(
            CountPredicate(
                class_name=class_name,
                operator=_OPERATORS[count_match.group("op")],
                value=int(count_match.group("value")),
                span=span,
            )
        )
        return

    inside_match = _INSIDE_RE.search(condition)
    if inside_match:
        _reject_leftover(condition, inside_match, "INSIDE")
        region = _region_from_name(inside_match.group("region"), frame_width, frame_height)
        state.predicates.append(
            RegionPredicate(
                class_name=inside_match.group("cls"),
                region=region,
                operator=_OPERATORS[inside_match.group("op")],
                value=int(inside_match.group("value")),
                inside=not inside_match.group("neg"),
                span=span,
            )
        )
        return

    equality_match = _EQUALITY_RE.match(condition.strip("() "))
    if equality_match:
        alias = equality_match.group("alias")
        value = equality_match.group("value").lower()
        box = state.alias_to_box.get(alias)
        if _is_color_alias(alias):
            if value not in NAMED_COLORS:
                raise ParseError(f"unknown color {value!r} in condition {condition!r}")
            if box is not None:
                state.box_color[box] = value
                state.box_color_span[box] = span
            else:
                raise ParseError(
                    f"color alias {alias!r} was not declared in the SELECT clause"
                )
        else:
            state.alias_class[alias] = value
            if box is not None:
                state.box_class[box] = value
                state.box_class_span[box] = span
            else:
                # An undeclared type alias is treated as "there is at least one
                # object of this class" (lenient mode for hand-written queries).
                state.predicates.append(
                    CountPredicate(value, ComparisonOperator.AT_LEAST, 1, span=span)
                )
        return

    raise ParseError(f"could not parse condition: {condition!r}")


def parse_query(
    text: str,
    name: str = "query",
    frame_width: int = 448,
    frame_height: int = 448,
    lint: bool = False,
    strict: bool = False,
) -> Query:
    """Parse SQL-like query text into a :class:`~repro.query.ast.Query`.

    ``frame_width`` / ``frame_height`` are needed to materialise screen-region
    predicates (quadrants are defined relative to the frame).

    Every predicate carries a :class:`~repro.query.ast.Span` into the
    normalized query text (preserved as ``Query.source``), so downstream
    diagnostics can quote the offending clause.  With ``lint=True`` the
    static analyzer (:func:`repro.analysis.lint_query`) runs on the parsed
    query: findings are emitted as warnings, or raised as
    :class:`~repro.analysis.AnalysisError` when ``strict=True``.
    """
    if not text or not text.strip():
        raise ParseError("empty query text")
    normalized = " ".join(text.split())
    upper = normalized.upper()
    if not upper.startswith("SELECT"):
        raise ParseError("query must start with SELECT")

    state = _ParserState()

    # Aliases declared in the SELECT clause.
    for match in _ALIAS_RE.finditer(normalized):
        state.alias_to_box[match.group("alias")] = match.group("box")

    # Window clause.  The clause may appear before or after WHERE, so it is
    # stripped first and the WHERE split is computed on the post-removal text
    # (locating the split in the pre-removal string would garble the slice
    # whenever WINDOW precedes WHERE).  Predicate spans likewise index into
    # the post-removal text, which is what ``Query.source`` preserves.
    window = None
    window_match = _WINDOW_RE.search(normalized)
    if window_match:
        window = WindowSpec(
            size=int(window_match.group("size")),
            advance=int(window_match.group("advance")),
        )
        normalized = " ".join(
            (normalized[: window_match.start()] + normalized[window_match.end() :]).split()
        )
        upper = normalized.upper()
        if _WINDOW_RE.search(normalized):
            raise ParseError(
                "duplicate WINDOW clause; a query may declare at most one window"
            )

    # WHERE clause.
    where_index = upper.find(" WHERE ")
    if where_index < 0:
        raise ParseError("query must contain a WHERE clause")
    where_offset = where_index + len(" WHERE ")
    where_clause = normalized[where_offset:]
    search_pos = 0
    for condition in _split_conditions(where_clause):
        # Conditions are contiguous substrings of the WHERE clause (the AND
        # split preserves every other token), so their spans can be recovered
        # by searching forward from the previous condition's end.
        relative = where_clause.find(condition, search_pos)
        span = None
        if relative >= 0:
            span = Span(
                start=where_offset + relative,
                end=where_offset + relative + len(condition),
            )
            search_pos = relative + len(condition)
        _parse_condition(condition, state, frame_width, frame_height, span)

    # Each box bound to a class implies that an object of that class exists.
    class_box_counts: dict[str, int] = {}
    class_spans: dict[str, Span | None] = {}
    for box, class_name in state.box_class.items():
        class_box_counts[class_name] = class_box_counts.get(class_name, 0) + 1
        class_spans.setdefault(class_name, state.box_class_span.get(box))
    for class_name, box_count in class_box_counts.items():
        state.predicates.append(
            CountPredicate(
                class_name,
                ComparisonOperator.AT_LEAST,
                box_count,
                span=class_spans.get(class_name),
            )
        )

    # Color constraints on boxes become color predicates on the box's class.
    for box, color in state.box_color.items():
        class_name = state.box_class.get(box)
        if class_name is None:
            raise ParseError(
                f"box {box!r} has a color constraint but no class constraint"
            )
        state.predicates.append(
            ColorPredicate(class_name, color, span=state.box_color_span.get(box))
        )

    # ORDER constraints: resolve aliases to classes.
    for alias_a, alias_b, direction, span in state.spatial_alias_pairs:
        class_a = state.alias_class.get(alias_a, alias_a.lower())
        class_b = state.alias_class.get(alias_b, alias_b.lower())
        state.predicates.append(SpatialPredicate(class_a, class_b, direction, span=span))

    if not state.predicates:
        raise ParseError("query has no recognisable predicates")

    aliases = {
        alias: state.alias_class.get(alias, "")
        for alias in state.alias_to_box
    }
    query = Query(
        predicates=tuple(state.predicates),
        name=name,
        window=window,
        aliases=aliases,
        source=normalized,
    )
    if lint or strict:
        # Imported lazily: repro.analysis depends on repro.query.ast, so a
        # module-level import here would cycle through package __init__s.
        from repro.analysis import AnalysisContext, lint_query

        context = AnalysisContext(frame_width=frame_width, frame_height=frame_height)
        report = lint_query(query, context, strict=strict)
        report.emit_warnings()
    return query
