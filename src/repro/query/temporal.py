"""Temporal-coherence execution layer: delta gating and adaptive-stride scanning.

Monitoring video is overwhelmingly redundant frame to frame: a parked car
stays parked, an empty intersection stays empty.  The batched (PR 1),
windowed (PR 2) and multi-query (PR 3) engines all still evaluate every
frame of the scan from scratch.  This module exploits the redundancy
directly, with two cooperating mechanisms:

* **Delta gating** (:class:`DeltaGate`).  Every frame is reduced to a cheap
  block-mean *signature*; when the signature differs from the last keyframe's
  by less than a threshold, the keyframe's cached outcome — filter
  predictions, cascade verdict, detector verdict — is reused instead of
  recomputed.  A keyframe-refresh policy bounds how long a keyframe may be
  reused (``keyframe_interval``), so slow cumulative drift cannot hide
  behind a per-frame threshold forever.

* **Adaptive-stride scanning** (:class:`TemporalScan`).  Over stable
  segments the scan does not even render the intermediate frames: the stride
  doubles after every stable, verdict-preserving step (up to
  ``max_stride``), skipped frames inherit the bracketing outcome, and when
  two consecutively evaluated frames *disagree* the match boundary between
  them is localized by binary-search refinement — O(log stride) probes
  instead of stride re-evaluations.

Both mechanisms trade accuracy for cost through one knob, exactly in the
spirit of the paper's approximate filters.  Two modes make the trade
explicit:

* ``exact=True`` (the default) is a *verification* mode: every reused or
  inherited outcome is re-derived from scratch with the simulated clock
  detached, compared against the cached outcome, and the re-derived outcome
  is the one used — so results are bit-identical to a non-temporal run,
  while the simulated cost still reflects what an approximate run would
  have charged and ``TemporalStats.reuse_mismatches`` reports how often the
  cache would have been wrong.  One caveat: when a mismatch is found, the
  verified truth replaces the cached outcome and drives the subsequent
  stride/refinement decisions, whereas ``exact=False`` would have kept the
  stale verdict — so after the first mismatch the two modes' scan
  trajectories (and hence their exact reuse counts) can diverge.  With zero
  mismatches the charged cost is identical.
* ``exact=False`` is the deployment mode: reused outcomes are trusted as-is,
  skipped frames are never rendered, and ``TemporalStats.reuse_rate`` is the
  achieved saving.

Avoided work is charged to the clock as *reused* calls
(:meth:`repro.cost.SimulatedClock.reuse`): zero milliseconds, but counted,
so every :class:`~repro.cost.CostBreakdown` shows reused-vs-computed call
counts side by side.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.video.stream import Frame


@contextmanager
def clocks_detached(filters: Sequence, detector=None):
    """Detach the filters' (and detector's) simulated clocks for the duration.

    Exact-mode verification re-derives outcomes from scratch; detaching the
    clocks keeps those recomputations out of the simulated cost, so an exact
    run reports what an approximate run would have charged.
    """
    saved = [(frame_filter, frame_filter.clock) for frame_filter in filters]
    for frame_filter in filters:
        frame_filter.clock = None
    has_detector_clock = detector is not None and hasattr(detector, "clock")
    detector_clock = detector.clock if has_detector_clock else None
    if has_detector_clock:
        detector.clock = None
    try:
        yield
    finally:
        for frame_filter, previous in saved:
            frame_filter.clock = previous
        if has_detector_clock:
            detector.clock = detector_clock


@dataclass(frozen=True)
class TemporalConfig:
    """Knobs of the temporal-coherence execution layer.

    ``delta_threshold`` is compared against the *maximum* per-block absolute
    difference of the block-mean signatures (0–255 pixel scale); the max —
    not the mean — keeps a small moving object visible against a large
    static background.  ``downsample`` is the signature's block edge in
    pixels: larger blocks are cheaper and more noise-tolerant but blur small
    motion.  ``keyframe_interval`` bounds consecutive reuses of one
    keyframe.  ``max_stride`` caps adaptive-stride scanning; ``1`` disables
    it (every frame is rendered and gated).  ``exact`` selects the
    verification mode described in the module docstring.
    """

    delta_threshold: float = 5.0
    downsample: int = 8
    keyframe_interval: int = 30
    max_stride: int = 1
    exact: bool = True

    def __post_init__(self) -> None:
        if self.delta_threshold < 0:
            raise ValueError(f"delta_threshold must be non-negative: {self.delta_threshold}")
        if self.downsample < 1:
            raise ValueError(f"downsample must be positive: {self.downsample}")
        if self.keyframe_interval < 1:
            raise ValueError(f"keyframe_interval must be positive: {self.keyframe_interval}")
        if self.max_stride < 1:
            raise ValueError(f"max_stride must be positive: {self.max_stride}")


def frame_signature(image: np.ndarray, downsample: int) -> np.ndarray:
    """Block-mean signature of ``image``: ``(H//b, W//b)`` float32.

    Color channels are averaged together — the gate detects *presence*
    changes, for which luminance suffices — and a trailing remainder smaller
    than the block size is cropped, so any frame geometry is accepted.
    """
    if image.ndim == 2:
        image = image[:, :, None]
    height, width = image.shape[0], image.shape[1]
    block = max(1, min(downsample, height, width))
    rows = (height // block) * block
    cols = (width // block) * block
    trimmed = image[:rows, :cols].astype(np.float32)
    pooled = trimmed.reshape(rows // block, block, cols // block, block, -1).mean(
        axis=(1, 3)
    )
    return pooled.mean(axis=-1)


def delta_score(signature: np.ndarray, reference: np.ndarray) -> float:
    """Maximum per-block absolute difference between two signatures."""
    if signature.shape != reference.shape:
        raise ValueError(
            f"signature shapes differ: {signature.shape} vs {reference.shape}"
        )
    return float(np.max(np.abs(signature - reference)))


@dataclass(frozen=True)
class TemporalStats:
    """Telemetry of one temporally-coherent scan.

    ``frames_computed + frames_reused + frames_skipped == frames_total``:
    computed frames were evaluated from scratch (keyframes and refinement
    probes that missed the gate), reused frames were rendered and gated but
    served from the keyframe cache, skipped frames were never rendered at
    all (adaptive stride) and inherited a bracketing outcome.

    ``filter_reuses`` / ``detector_reuses`` count the component invocations
    the reuse avoided (also recorded on the clock as reused calls);
    ``verified_frames`` / ``reuse_mismatches`` are exact-mode telemetry —
    how many reused outcomes were re-derived for verification, and how many
    of those the cache would have gotten wrong.
    """

    frames_total: int
    frames_computed: int
    frames_reused: int
    frames_skipped: int
    refinement_probes: int
    verified_frames: int
    reuse_mismatches: int
    max_stride_used: int
    filter_reuses: int = 0
    detector_reuses: int = 0

    @property
    def reuse_rate(self) -> float:
        """Fraction of scanned frames served without a full evaluation.

        ``nan`` for an empty scan (no frames at all), mirroring
        :attr:`~repro.query.executor.ExecutionStats.filter_selectivity`.
        """
        if self.frames_total == 0:
            return float("nan")
        return (self.frames_reused + self.frames_skipped) / self.frames_total


class _Telemetry:
    """Mutable counterpart of :class:`TemporalStats` while a scan runs."""

    def __init__(self) -> None:
        self.frames_total = 0
        self.frames_computed = 0
        self.frames_reused = 0
        self.frames_skipped = 0
        self.refinement_probes = 0
        self.verified_frames = 0
        self.reuse_mismatches = 0
        self.max_stride_used = 1

    def freeze(self) -> TemporalStats:
        return TemporalStats(
            frames_total=self.frames_total,
            frames_computed=self.frames_computed,
            frames_reused=self.frames_reused,
            frames_skipped=self.frames_skipped,
            refinement_probes=self.refinement_probes,
            verified_frames=self.verified_frames,
            reuse_mismatches=self.reuse_mismatches,
            max_stride_used=self.max_stride_used,
        )


class DeltaGate:
    """Cheap change detector with a cached keyframe outcome.

    The gate holds the signature of the last *keyframe* (the last frame that
    was fully evaluated) together with the opaque outcome of that
    evaluation.  :meth:`decide` answers "may this frame reuse the keyframe's
    outcome?": yes iff a keyframe exists, the caller-supplied context is
    unchanged (e.g. the same set of queries covers both frames), the reuse
    streak is still under ``keyframe_interval``, and the signature delta is
    at or below the threshold.
    """

    def __init__(self, config: TemporalConfig) -> None:
        self.config = config
        self._signature: np.ndarray | None = None
        self._context: Hashable = None
        self._outcome: object = None
        self._streak = 0
        # One-entry signature memo so a decide() followed by set_keyframe()
        # on the same image computes the block means once.  Keyed by object
        # identity; holding the image reference keeps the id stable.
        self._signature_memo: tuple[np.ndarray, np.ndarray] | None = None
        #: delta score of the most recent :meth:`decide` call (``nan`` before any)
        self.last_score: float = float("nan")

    def _signature_of(self, image: np.ndarray) -> np.ndarray:
        memo = self._signature_memo
        if memo is not None and memo[0] is image:
            return memo[1]
        signature = frame_signature(image, self.config.downsample)
        self._signature_memo = (image, signature)
        return signature

    @property
    def outcome(self) -> object:
        """The cached keyframe outcome (meaningful after a ``True`` decision)."""
        return self._outcome

    def decide(self, image: np.ndarray, context: Hashable = None) -> bool:
        """Whether ``image`` may reuse the cached keyframe outcome."""
        if self._signature is None or context != self._context:
            return False
        if self._streak >= self.config.keyframe_interval:
            return False
        signature = self._signature_of(image)
        if signature.shape != self._signature.shape:
            return False
        self.last_score = delta_score(signature, self._signature)
        return self.last_score <= self.config.delta_threshold

    def mark_reused(self) -> None:
        """Record one reuse of the current keyframe (advances the streak)."""
        self._streak += 1

    def set_keyframe(self, image: np.ndarray, outcome: object, context: Hashable = None) -> None:
        """Install ``image`` as the new keyframe with its evaluated ``outcome``."""
        self._signature = self._signature_of(image)
        self._outcome = outcome
        self._context = context
        self._streak = 0

    def replace_outcome(self, outcome: object) -> None:
        """Swap the cached payload without touching the signature or streak.

        Used by exact-mode verification when the cache drifted: the gating
        behaviour stays identical to the approximate mode (same signature,
        same streak), but later reuses inherit the corrected outcome.
        """
        self._outcome = outcome

    def state_dict(self) -> dict:
        """Checkpointable gate state (see :meth:`ScanSession.checkpoint`).

        The signature is copied (it is derived data, cheap and small); the
        cached outcome is included as-is — session outcomes are plain
        dataclasses over ints/bools, picklable by construction.  The
        signature memo is deliberately dropped: it is keyed by object
        identity, which does not survive a process boundary.
        """
        return {
            "signature": (
                None if self._signature is None else np.array(self._signature, copy=True)
            ),
            "context": self._context,
            "outcome": self._outcome,
            "streak": self._streak,
            "last_score": self.last_score,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this gate."""
        signature = state["signature"]
        self._signature = None if signature is None else np.array(signature, copy=True)
        self._context = state["context"]
        self._outcome = state["outcome"]
        self._streak = int(state["streak"])
        self._signature_memo = None
        self.last_score = float(state["last_score"])


class TemporalScan:
    """Drives one temporally-coherent scan over a sequence of frame indices.

    The scan is generic over the per-frame *outcome* — the executor supplies
    domain callbacks, the scan supplies the gating / striding / refinement /
    verification machinery:

    * ``render(index) -> Frame`` — materialise a frame;
    * ``compute(frame) -> outcome`` — full evaluation, charging the
      simulated clock as usual;
    * ``verify(frame) -> outcome`` — full evaluation with all clocks
      detached (required when ``config.exact``);
    * ``reuse_charge(outcome)`` — record the invocations an avoided
      evaluation would have made (reused calls on the clock);
    * ``verdict(outcome) -> hashable`` — the decision the adaptive stride
      watches for boundaries (e.g. ``(passed, matched)``);
    * ``context_key(index) -> hashable`` — reuse and inheritance only happen
      between frames with equal context (e.g. covered by the same windowed
      queries).

    :meth:`run` returns one outcome per input index plus the scan's
    :class:`TemporalStats`.  In exact mode every returned outcome is a fresh
    from-scratch evaluation, so downstream results are bit-identical to a
    non-temporal run regardless of what the cache contained.
    """

    def __init__(
        self,
        config: TemporalConfig,
        *,
        render: Callable[[int], Frame],
        compute: Callable[[Frame], object],
        verify: Callable[[Frame], object] | None = None,
        reuse_charge: Callable[[object], None] | None = None,
        verdict: Callable[[object], Hashable] | None = None,
        context_key: Callable[[int], Hashable] | None = None,
    ) -> None:
        if config.exact and verify is None:
            raise ValueError("exact temporal execution needs a verify callback")
        self.config = config
        self._render = render
        self._compute = compute
        self._verify = verify
        self._reuse_charge = reuse_charge or (lambda outcome: None)
        self._verdict = verdict or (lambda outcome: outcome)
        self._context_key = context_key or (lambda index: None)

    def run(self, indices: Sequence[int]) -> tuple[list, TemporalStats]:
        indices = list(indices)
        n = len(indices)
        results: list = [None] * n
        gate = DeltaGate(self.config)
        telemetry = _Telemetry()
        telemetry.frames_total = n
        exact = self.config.exact

        def verified(frame: Frame, cached: object) -> object:
            """Exact-mode check of a cached/inherited outcome; returns the truth."""
            truth = self._verify(frame)
            telemetry.verified_frames += 1
            if self._verdict(truth) != self._verdict(cached):
                telemetry.reuse_mismatches += 1
            return truth

        def evaluate(position: int, probe: bool = False) -> object:
            """Render + gate one position; cache hit or full evaluation."""
            index = indices[position]
            frame = self._render(index)
            context = self._context_key(index)
            if gate.decide(frame.image, context):
                outcome = gate.outcome
                gate.mark_reused()
                telemetry.frames_reused += 1
                self._reuse_charge(outcome)
                if exact:
                    truth = verified(frame, outcome)
                    if self._verdict(truth) != self._verdict(outcome):
                        gate.replace_outcome(truth)
                    outcome = truth
            else:
                outcome = self._compute(frame)
                gate.set_keyframe(frame.image, outcome, context)
                telemetry.frames_computed += 1
            if probe:
                telemetry.refinement_probes += 1
            results[position] = outcome
            return outcome

        def inherit(position: int, source: int) -> None:
            """Give a never-rendered position its bracketing frame's outcome."""
            if self._context_key(indices[position]) != self._context_key(indices[source]):
                # Coverage changed inside the gap (e.g. a window boundary):
                # inheritance would smuggle an outcome across contexts.
                evaluate(position)
                return
            outcome = results[source]
            telemetry.frames_skipped += 1
            self._reuse_charge(outcome)
            if exact:
                truth = verified(self._render(indices[position]), outcome)
                outcome = truth
            results[position] = outcome

        def assign_gap(lo_position: int, hi_position: int) -> None:
            """Fill the stride-skipped positions strictly between two evaluations."""
            lo_verdict = self._verdict(results[lo_position])
            hi_verdict = self._verdict(results[hi_position])
            if lo_verdict == hi_verdict:
                for position in range(lo_position + 1, hi_position):
                    if results[position] is None:
                        inherit(position, lo_position)
                return
            # The verdict changed inside the gap: localize the boundary with
            # O(log gap) probes.  (A gap hiding more than one transition is
            # collapsed to a single boundary — part of the approximate mode's
            # accuracy trade; exact mode re-derives every frame anyway.)
            lo, hi = lo_position, hi_position
            while hi - lo > 1:
                mid = (lo + hi) // 2
                outcome = evaluate(mid, probe=True)
                if self._verdict(outcome) == lo_verdict:
                    lo = mid
                else:
                    hi = mid
            for position in range(lo_position + 1, hi_position):
                if results[position] is None:
                    inherit(position, lo if position < hi else hi)

        stride = 1
        previous: int | None = None
        position = 0
        while position < n:
            computed_before = telemetry.frames_computed
            outcome = evaluate(position)
            was_reused = telemetry.frames_computed == computed_before
            if previous is not None and position - previous > 1:
                assign_gap(previous, position)
            # Stride doubles only through stable, verdict-preserving reuses;
            # any keyframe refresh or verdict change resets it.
            if (
                previous is not None
                and was_reused
                and self._verdict(results[previous]) == self._verdict(outcome)
            ):
                stride = min(stride * 2, self.config.max_stride)
            else:
                stride = 1
            telemetry.max_stride_used = max(telemetry.max_stride_used, stride)
            previous = position
            if position == n - 1:
                break
            position = min(position + stride, n - 1)

        return results, telemetry.freeze()


def with_component_reuses(
    stats: TemporalStats, filter_reuses: int, detector_reuses: int
) -> TemporalStats:
    """``stats`` with the executor-counted component reuse totals filled in."""
    return replace(
        stats, filter_reuses=filter_reuses, detector_reuses=detector_reuses
    )
