"""Query planning: assembling a cascade of approximate filters.

The planner inspects the query's predicates and picks, for each predicate
group, a cheap filter check that can rule frames out *before* the expensive
detector runs:

* count predicates  -> a CCF (class count) or CF (total count) check,
* spatial predicates -> a CLF (class location) check on the thresholded grids,
* region predicates -> a CLF check restricted to the region's grid cells.

Each check is approximate, so it is applied with a *tolerance* (counts within
±1 / ±2, grids dilated by Manhattan distance 1 / 2) chosen by
:class:`PlannerConfig` — exactly the filter variants whose combinations the
paper reports in Table III.

The paper leaves cascade *ordering* optimisation to future work; by default
the planner applies count checks before location checks and otherwise
preserves predicate order (``cascade_ordering="static"``).  With
``cascade_ordering="selectivity"`` the planner additionally *measures* each
step on a sample prefix of the stream and orders steps by the classic
cost-per-rejection rule from the filter-ordering literature: a step with
per-frame cost ``c`` and measured pass rate ``p`` removes a frame from the
cascade for an expected ``c / (1 - p)``, so steps are sorted ascending by
that ratio (cheap, selective steps first; steps that reject nothing go
last).  Because all steps are conjunctive, reordering never changes which
frames survive — only how much filter work is spent rejecting the rest.
Cascades can also be constructed or reordered manually for ablation studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from scipy import ndimage

from repro.filters.base import FilterPrediction, FrameFilter
from repro.query.ast import (
    ComparisonOperator,
    CountPredicate,
    Query,
    RegionPredicate,
    SpatialPredicate,
)
from repro.spatial.relations import grid_masks_satisfy_direction

if TYPE_CHECKING:  # pragma: no cover - type-only, avoids the analysis cycle
    from repro.analysis.diagnostics import Diagnostic
    from repro.analysis.semantic import AnalysisContext


@dataclass(frozen=True)
class PlannerConfig:
    """Tolerances and preferences used when planning a cascade.

    ``count_tolerance`` of 1 corresponds to using the ``*-CCF-1`` filter
    variants, ``location_dilation`` of 1 to ``*-CLF-1``, and so on.  The
    ``family`` chooses between the OD filters (default — better localisation)
    and the IC filters.

    ``cascade_ordering`` selects how the planned steps are ordered:
    ``"static"`` (the paper's fixed counts-before-locations order) or
    ``"selectivity"`` (measure pass rates on a sample prefix of the stream
    passed to :meth:`QueryPlanner.plan` and order by cost per rejection);
    ``ordering_sample_size`` is how many prefix frames that measurement uses.
    """

    count_tolerance: int = 1
    location_dilation: int = 1
    family: str = "od"
    use_count_filter: bool = True
    use_location_filter: bool = True
    cascade_ordering: str = "static"
    ordering_sample_size: int = 32

    def __post_init__(self) -> None:
        if self.count_tolerance < 0 or self.location_dilation < 0:
            raise ValueError("tolerances must be non-negative")
        if self.family not in ("od", "ic"):
            raise ValueError(f"family must be 'od' or 'ic': {self.family!r}")
        if self.cascade_ordering not in ("static", "selectivity"):
            raise ValueError(
                f"cascade_ordering must be 'static' or 'selectivity': "
                f"{self.cascade_ordering!r}"
            )
        if self.ordering_sample_size < 1:
            raise ValueError(
                f"ordering_sample_size must be positive: {self.ordering_sample_size}"
            )


@dataclass(frozen=True)
class CascadeStep:
    """One approximate check in the cascade.

    ``check`` receives the filter's prediction for the frame and returns
    ``True`` when the frame *may* satisfy the query (so it should continue
    down the cascade) and ``False`` when it can be skipped.

    ``measured_pass_rate`` / ``measured_cost_ms`` are filled in by
    :func:`measure_cascade_selectivity` when selectivity-aware ordering runs;
    they stay ``None`` on statically ordered cascades.

    ``signature`` is a hashable description of *what the check decides* (the
    predicates and tolerance it was planned from).  Two steps with equal
    signatures over filters with equal
    :attr:`~repro.filters.base.FrameFilter.identity` are semantically the
    same check, so multi-query execution evaluates one of them per frame and
    shares the outcome (see :func:`merge_cascade_steps`).  Hand-built steps
    may leave it ``None``, which disables cross-cascade merging for them —
    a lambda's behaviour cannot be compared.
    """

    name: str
    frame_filter: FrameFilter
    check: Callable[[FilterPrediction], bool]
    measured_pass_rate: float | None = None
    measured_cost_ms: float | None = None
    signature: tuple | None = None

    def passes(self, prediction: FilterPrediction) -> bool:
        return bool(self.check(prediction))

    @property
    def cost_per_rejection(self) -> float:
        """Expected filter milliseconds spent per frame this step rejects.

        ``inf`` when the step was measured to reject nothing (or has not
        been measured), which sorts such steps to the end of the cascade.
        """
        if self.measured_pass_rate is None or self.measured_cost_ms is None:
            return math.inf
        rejection_rate = 1.0 - self.measured_pass_rate
        if rejection_rate <= 0.0:
            return math.inf
        return self.measured_cost_ms / rejection_rate


@dataclass
class FilterCascade:
    """An ordered list of cascade steps sharing filter predictions per frame.

    ``provably_empty`` is set by the planner when static analysis proved the
    query can match no frame whatsoever (e.g. contradictory count
    constraints); the executor short-circuits such cascades to an empty
    result without rendering a single frame.  ``diagnostics`` carries the
    static-analysis findings (``QA0xx`` / ``PL0xx``) attached at plan time —
    empty for hand-built cascades and for plans made with ``analyze=False``.
    """

    steps: list[CascadeStep] = field(default_factory=list)
    provably_empty: bool = False
    diagnostics: tuple["Diagnostic", ...] = ()

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @property
    def filters(self) -> list[FrameFilter]:
        """Distinct filters used by the cascade, in first-use order."""
        seen: list[FrameFilter] = []
        for step in self.steps:
            if all(step.frame_filter is not existing for existing in seen):
                seen.append(step.frame_filter)
        return seen

    @property
    def primary_filter(self) -> FrameFilter | None:
        """The cascade's first *class-aware* filter (``None`` on an empty cascade).

        This is the filter the planner built the cascade around, and what
        :meth:`StreamingQueryExecutor.execute_aggregate` uses as the
        control-variate source for aggregate estimation.  Count-only filters
        (OD-COF) are skipped — their predictions carry no per-class output,
        so controls built on them would be degenerate constants — which keeps
        the choice stable when selectivity reordering moves a count-only step
        to the front.  A cascade with no class-aware filter at all falls back
        to its first filter.
        """
        filters = self.filters
        for frame_filter in filters:
            if frame_filter.class_aware:
                return frame_filter
        return filters[0] if filters else None

    def describe(self) -> str:
        if self.provably_empty:
            return "(provably empty)"
        return " -> ".join(step.name for step in self.steps) if self.steps else "(empty)"


# ----------------------------------------------------------------------
# Selectivity measurement and cost-based ordering
# ----------------------------------------------------------------------
def measure_cascade_selectivity(
    cascade: FilterCascade,
    stream,
    sample_size: int = 32,
    frame_indices: Sequence[int] | None = None,
) -> FilterCascade:
    """Measure each step's pass rate and cost on a sample prefix of ``stream``.

    Every distinct filter is evaluated once (with one vectorized
    ``predict_batch`` call) over the first ``sample_size`` frames — or over
    ``frame_indices`` when given — and each step's checks are applied to the
    resulting predictions.  Returns a new cascade whose steps carry
    ``measured_pass_rate`` (fraction of sample frames the step lets through)
    and ``measured_cost_ms`` (the filter's per-frame latency).  The filters'
    clocks are detached during measurement, so planning charges nothing to
    the simulated execution cost.
    """
    if frame_indices is None:
        frame_indices = range(min(sample_size, len(stream)))
    frames = [stream.frame(index) for index in frame_indices]
    if not frames or not cascade.steps:
        return FilterCascade(steps=list(cascade.steps))
    saved_clocks = [(frame_filter, frame_filter.clock) for frame_filter in cascade.filters]
    for frame_filter, _ in saved_clocks:
        frame_filter.clock = None
    try:
        predictions = {
            frame_filter.identity: frame_filter.predict_batch(frames)
            for frame_filter, _ in saved_clocks
        }
    finally:
        for frame_filter, previous in saved_clocks:
            frame_filter.clock = previous
    measured = []
    for step in cascade.steps:
        step_predictions = predictions[step.frame_filter.identity]
        passed = sum(1 for prediction in step_predictions if step.passes(prediction))
        measured.append(
            replace(
                step,
                measured_pass_rate=passed / len(frames),
                measured_cost_ms=step.frame_filter.latency_ms,
            )
        )
    return FilterCascade(steps=measured)


def order_cascade_by_selectivity(
    cascade: FilterCascade,
    stream,
    sample_size: int = 32,
    frame_indices: Sequence[int] | None = None,
) -> FilterCascade:
    """Reorder ``cascade`` by measured cost per rejected frame, ascending.

    The classic greedy rule for ordering independent conjunctive filters:
    the step that rejects frames at the lowest expected filter cost runs
    first.  Ties (and unmeasured steps) keep their original relative order,
    so the result is deterministic.  Reordering cannot change which frames
    survive the cascade — the steps are conjunctive — only the amount of
    filter work spent on doomed frames.
    """
    measured = measure_cascade_selectivity(
        cascade, stream, sample_size=sample_size, frame_indices=frame_indices
    )
    order = sorted(
        range(len(measured.steps)),
        key=lambda position: (measured.steps[position].cost_per_rejection, position),
    )
    return FilterCascade(steps=[measured.steps[position] for position in order])


# ----------------------------------------------------------------------
# Runtime re-planning (adaptive execution)
# ----------------------------------------------------------------------
def replan_order(
    latencies_ms: Sequence[float], pass_rates: Sequence[float | None]
) -> tuple[int, ...]:
    """Step order (as positions) by observed cost per rejection, ascending.

    ``pass_rates[i]`` is the observed fraction of evaluated frames step ``i``
    let through (``None`` when the step has not been observed — e.g. an
    earlier step rejected every frame before it ran), in which case the step
    keeps a ``cost_per_rejection`` of ``inf`` and sorts to the back.  The
    sort is stable, so ties preserve the current relative order and replanning
    with unchanged rates is a no-op.
    """
    if len(latencies_ms) != len(pass_rates):
        raise ValueError(
            f"{len(latencies_ms)} latencies but {len(pass_rates)} pass rates"
        )

    def cost_per_rejection(position: int) -> float:
        rate = pass_rates[position]
        if rate is None:
            return math.inf
        rejection = 1.0 - rate
        if rejection <= 0.0:
            return math.inf
        return latencies_ms[position] / rejection

    return tuple(
        sorted(range(len(latencies_ms)), key=lambda p: (cost_per_rejection(p), p))
    )


def expected_cascade_cost_ms(
    latencies_ms: Sequence[float],
    pass_rates: Sequence[float | None],
    order: Sequence[int],
) -> float:
    """Expected per-frame filter cost of running the steps in ``order``.

    Uses the classic independence approximation: a step's observed pass rate
    is treated as its unconditional selectivity, so the fraction of frames
    reaching step ``k`` is the product of the earlier steps' rates.
    Unobserved steps (rate ``None``) are assumed to pass everything — the
    conservative choice, since assuming selectivity for a step that never ran
    would justify reorderings on no evidence.
    """
    surviving = 1.0
    total = 0.0
    for position in order:
        total += latencies_ms[position] * surviving
        rate = pass_rates[position]
        surviving *= 1.0 if rate is None else rate
    return total


def replan_cascade(
    cascade: FilterCascade, pass_rates: Sequence[float | None]
) -> FilterCascade:
    """Reorder ``cascade`` by *observed* cost per rejection.

    The runtime counterpart of :func:`order_cascade_by_selectivity`: instead
    of a planning-time sample prefix, ``pass_rates`` come from a live
    profiler watching the execution (see
    :class:`~repro.query.parallel.CascadeProfiler`).  Steps are annotated
    with the observed rates; because cascade steps are conjunctive, the
    reordered cascade passes exactly the same frames.
    """
    if len(pass_rates) != len(cascade.steps):
        raise ValueError(
            f"cascade has {len(cascade.steps)} steps but {len(pass_rates)} rates given"
        )
    order = replan_order(
        [step.frame_filter.latency_ms for step in cascade.steps], pass_rates
    )
    steps = []
    for position in order:
        step = cascade.steps[position]
        rate = pass_rates[position]
        if rate is not None:
            step = replace(
                step,
                measured_pass_rate=rate,
                measured_cost_ms=step.frame_filter.latency_ms,
            )
        steps.append(step)
    return FilterCascade(steps=steps)


# ----------------------------------------------------------------------
# Cross-query cascade merging
# ----------------------------------------------------------------------
def _normalized(predicates: Sequence) -> tuple:
    """Predicates in a canonical order, so equivalent plans get equal signatures."""
    return tuple(sorted(predicates, key=lambda predicate: predicate.describe()))


def shared_step_key(step: CascadeStep) -> tuple | None:
    """The merge key under which ``step`` may share work with other cascades.

    ``None`` when the step carries no signature (hand-built check) — such
    steps only ever share with themselves (the same object reused in several
    cascades).
    """
    if step.signature is None:
        return None
    return (step.name, step.frame_filter.identity, step.signature)


def merge_cascade_steps(
    cascades: Sequence[FilterCascade],
) -> tuple[list[CascadeStep], list[list[int]]]:
    """Dedup semantically identical steps across several queries' cascades.

    Returns ``(unique_steps, assignments)`` where ``assignments[i][j]`` is the
    position in ``unique_steps`` of cascade ``i``'s ``j``-th step.  Two steps
    collapse onto one entry when they are the same object, or when they carry
    equal signatures over filters with equal identity (i.e. the planner built
    them from the same predicates and tolerance over the same filter) — in
    which case evaluating either decides both, which is what lets
    multi-query execution run a shared check once per frame no matter how
    many queries' cascades contain it.

    The merged list is sorted by ``(cost, signature)`` — the filter's
    per-frame latency, then the step's name and printed signature — rather
    than left in dict-insertion order.  Insertion order depends on which
    query happened to come first in the call, so two runs submitting the same
    queries in different order (or a hash-seed change affecting upstream set
    iteration) would previously produce differently-numbered plans;
    the sorted order is a pure function of the step set, making
    ``execute_many`` plans reproducible across Python runs.  Ties (including
    unsigned hand-built steps, which have no printable signature) keep their
    first-appearance order.
    """
    unique_steps: list[CascadeStep] = []
    index_of: dict[tuple, int] = {}
    assignments: list[list[int]] = []
    for cascade in cascades:
        positions: list[int] = []
        for step in cascade:
            key = shared_step_key(step) or ("unshared", id(step))
            if key not in index_of:
                index_of[key] = len(unique_steps)
                unique_steps.append(step)
            positions.append(index_of[key])
        assignments.append(positions)

    def sort_key(position: int) -> tuple:
        step = unique_steps[position]
        signature_text = repr(step.signature) if step.signature is not None else ""
        return (step.frame_filter.latency_ms, step.name, signature_text, position)

    order = sorted(range(len(unique_steps)), key=sort_key)
    remap = {old: new for new, old in enumerate(order)}
    unique_steps = [unique_steps[old] for old in order]
    assignments = [[remap[position] for position in row] for row in assignments]
    return unique_steps, assignments


# ----------------------------------------------------------------------
# Predicate checks over filter predictions
# ----------------------------------------------------------------------
def _count_possible(
    predicate: CountPredicate, prediction: FilterPrediction, tolerance: int
) -> bool:
    predicted = (
        prediction.total_count
        if predicate.class_name is None
        else prediction.count_of(predicate.class_name)
    )
    return _comparison_possible(predicate.operator, predicted, predicate.value, tolerance)


def _comparison_possible(
    operator: ComparisonOperator, predicted: int, value: int, tolerance: int
) -> bool:
    """Whether ``predicted <op> value`` may still hold within ``tolerance``.

    Strict comparisons widen by the same slack as their non-strict
    counterparts: ``> value`` may hold whenever ``>= value + 1`` may.
    """
    if operator is ComparisonOperator.EQUAL:
        return abs(predicted - value) <= tolerance
    if operator is ComparisonOperator.AT_LEAST:
        return predicted >= value - tolerance
    if operator is ComparisonOperator.AT_MOST:
        return predicted <= value + tolerance
    if operator is ComparisonOperator.GREATER:
        return predicted > value - tolerance
    if operator is ComparisonOperator.LESS:
        return predicted < value + tolerance
    raise ValueError(f"unknown operator {operator}")  # pragma: no cover


def _spatial_possible(
    predicate: SpatialPredicate, prediction: FilterPrediction, dilation: int
) -> bool:
    subject = prediction.location_mask(predicate.subject_class, dilation=dilation)
    reference = prediction.location_mask(predicate.reference_class, dilation=dilation)
    if not subject or not reference:
        return False
    return grid_masks_satisfy_direction(subject, reference, predicate.direction)


def _region_possible(
    predicate: RegionPredicate, prediction: FilterPrediction, dilation: int
) -> bool:
    mask = prediction.location_mask(predicate.class_name, dilation=dilation)
    region_mask = predicate.region.grid_mask(prediction.grid)
    selected = mask.intersection(region_mask) if predicate.inside else mask.difference(region_mask)
    # Approximate the number of objects in the region by the number of
    # connected blobs of the selected cells.
    if not selected:
        blob_count = 0
    else:
        _, blob_count = ndimage.label(selected.values)
    tolerance = dilation  # reuse the dilation level as the count slack
    return _comparison_possible(predicate.operator, blob_count, predicate.value, tolerance)


@dataclass(frozen=True)
class CountCheck:
    """Planned count check: every count predicate may hold within the tolerance.

    A plain dataclass rather than a closure so planned cascades are
    *picklable* — the process-backend parallel engine ships the whole cascade
    (filters, steps, checks) to its workers once, which a lambda capture
    would make impossible.
    """

    predicates: tuple[CountPredicate, ...]
    tolerance: int

    def __call__(self, prediction: FilterPrediction) -> bool:
        return all(
            _count_possible(predicate, prediction, self.tolerance)
            for predicate in self.predicates
        )


@dataclass(frozen=True)
class LocationCheck:
    """Planned location check over spatial and region predicates (picklable, see :class:`CountCheck`)."""

    spatial: tuple[SpatialPredicate, ...]
    regions: tuple[RegionPredicate, ...]
    dilation: int

    def __call__(self, prediction: FilterPrediction) -> bool:
        return all(
            _spatial_possible(predicate, prediction, self.dilation)
            for predicate in self.spatial
        ) and all(
            _region_possible(predicate, prediction, self.dilation)
            for predicate in self.regions
        )


class QueryPlanner:
    """Plans a :class:`FilterCascade` for a query from the available filters."""

    def __init__(
        self,
        filters: Mapping[str, FrameFilter],
        config: PlannerConfig | None = None,
    ) -> None:
        """``filters`` maps family names (``"od"``, ``"ic"``, ``"od_cof"``) to trained filters."""
        if not filters:
            raise ValueError("the planner needs at least one trained filter")
        self.filters = dict(filters)
        self.config = config or PlannerConfig()

    @staticmethod
    def replan(
        cascade: FilterCascade, pass_rates: Sequence[float | None]
    ) -> FilterCascade:
        """Reorder a cascade mid-stream from *observed* pass rates.

        The adaptive execution layer's entry point: a runtime profiler (see
        :class:`~repro.query.parallel.CascadeProfiler`) watches each step's
        live pass rate over a sliding window and, when the observed cost per
        rejection diverges from the order the cascade was planned with, feeds
        the rates here to obtain the corrected order.  Reordering conjunctive
        steps never changes which frames survive — only where the filter
        milliseconds go.  A static method: replanning needs no filter
        registry, only the cascade and the evidence.
        """
        return replan_cascade(cascade, pass_rates)

    def _primary_filter(self) -> FrameFilter:
        preferred = self.config.family
        if preferred in self.filters:
            return self.filters[preferred]
        # Fall back to any filter with per-class output.
        for name in ("od", "ic"):
            if name in self.filters:
                return self.filters[name]
        raise KeyError(
            f"no class-aware filter available among {sorted(self.filters)}"
        )

    def plan(
        self,
        query: Query,
        sample_stream=None,
        *,
        analyze: bool = True,
        strict: bool = False,
        context: "AnalysisContext | None" = None,
    ) -> FilterCascade:
        """Build the filter cascade for ``query``.

        With ``cascade_ordering="selectivity"`` in the config, a
        ``sample_stream`` must be provided: the planner measures each step's
        pass rate on its first ``ordering_sample_size`` frames and orders the
        steps by cost per rejection (see
        :func:`order_cascade_by_selectivity`).

        With the default ``analyze=True`` the static analyzer
        (:mod:`repro.analysis`) runs over the query and the compiled plan:

        * a query proved unable to match any frame yields an *empty* cascade
          with ``provably_empty=True`` — the executor turns that into an
          empty result without rendering a single frame;
        * duplicate steps (PL001) and trivially-true steps (PL002 — e.g. a
          ``COUNT >= 1`` check at tolerance 1, which can never reject) are
          eliminated, except that elimination never empties a cascade that
          had steps, so ``primary_filter`` stays defined.  Conjunctive steps
          make both removals output-preserving.

        Every finding is attached as ``cascade.diagnostics``.  ``strict=True``
        additionally raises :class:`~repro.analysis.AnalysisError` (a
        ``ValueError``) on error-severity findings; ``context`` supplies the
        class vocabulary / frame geometry for the deeper semantic checks
        (built with :meth:`repro.analysis.AnalysisContext.for_stream`).
        ``analyze=False`` reproduces the raw, unoptimized plan.
        """
        if analyze or strict:
            return self._plan_analyzed(
                query, sample_stream, strict=strict, context=context
            )
        return self._plan_raw(query, sample_stream)

    def _plan_analyzed(
        self,
        query: Query,
        sample_stream,
        *,
        strict: bool,
        context: "AnalysisContext | None",
    ) -> FilterCascade:
        # Local import: repro.analysis imports the query AST package, which
        # in turn initialises this module — a module-level import would cycle.
        from repro.analysis import (
            lint_plan,
            lint_query,
            optimize_cascade,
            short_circuit_diagnostic,
        )

        query_report = lint_query(query, context, strict=strict)
        if query_report.provably_empty:
            return FilterCascade(
                steps=[],
                provably_empty=True,
                diagnostics=query_report.diagnostics
                + (short_circuit_diagnostic(query.name),),
            )
        cascade = self._plan_raw(query, sample_stream)
        if strict:
            lint_plan(cascade, strict=True)
        optimized, plan_report = optimize_cascade(cascade)
        optimized.provably_empty = False
        optimized.diagnostics = query_report.diagnostics + plan_report.diagnostics
        return optimized

    def _plan_raw(self, query: Query, sample_stream=None) -> FilterCascade:
        config = self.config
        cascade = FilterCascade()
        primary = self._primary_filter()
        family_label = primary.family.upper()

        if config.use_count_filter and query.count_predicates:
            count_predicates = list(query.count_predicates)
            tolerance = config.count_tolerance
            suffix = f"-{tolerance}" if tolerance else ""
            per_class = [p for p in count_predicates if p.class_name is not None]
            total_only = [p for p in count_predicates if p.class_name is None]
            if per_class:
                per_class_preds = _normalized(per_class)
                cascade.steps.append(
                    CascadeStep(
                        name=f"{family_label}-CCF{suffix}",
                        frame_filter=primary,
                        check=CountCheck(predicates=per_class_preds, tolerance=tolerance),
                        signature=("count", tolerance, per_class_preds),
                    )
                )
            if total_only:
                count_filter = self.filters.get("od_cof", primary)
                label = "OD-COF" if "od_cof" in self.filters else f"{family_label}-CF"
                total_preds = _normalized(total_only)
                cascade.steps.append(
                    CascadeStep(
                        name=f"{label}{suffix}",
                        frame_filter=count_filter,
                        check=CountCheck(predicates=total_preds, tolerance=tolerance),
                        signature=("count", tolerance, total_preds),
                    )
                )

        if config.use_location_filter and (query.spatial_predicates or query.region_predicates):
            dilation = config.location_dilation
            suffix = f"-{dilation}" if dilation else ""
            spatial = _normalized(query.spatial_predicates)
            regions = _normalized(query.region_predicates)
            cascade.steps.append(
                CascadeStep(
                    name=f"{family_label}-CLF{suffix}",
                    frame_filter=primary,
                    check=LocationCheck(spatial=spatial, regions=regions, dilation=dilation),
                    signature=("location", dilation, spatial, regions),
                )
            )

        if config.cascade_ordering == "selectivity":
            if sample_stream is None:
                raise ValueError(
                    "cascade_ordering='selectivity' needs a sample_stream to "
                    "measure step pass rates on"
                )
            return order_cascade_by_selectivity(
                cascade, sample_stream, sample_size=config.ordering_sample_size
            )
        return cascade
