"""Query planning: assembling a cascade of approximate filters.

The planner inspects the query's predicates and picks, for each predicate
group, a cheap filter check that can rule frames out *before* the expensive
detector runs:

* count predicates  -> a CCF (class count) or CF (total count) check,
* spatial predicates -> a CLF (class location) check on the thresholded grids,
* region predicates -> a CLF check restricted to the region's grid cells.

Each check is approximate, so it is applied with a *tolerance* (counts within
±1 / ±2, grids dilated by Manhattan distance 1 / 2) chosen by
:class:`PlannerConfig` — exactly the filter variants whose combinations the
paper reports in Table III.  The paper leaves cascade *ordering* optimisation
to future work; the planner applies count checks before location checks and
otherwise preserves predicate order, and the cascade can also be constructed
manually for ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np
from scipy import ndimage

from repro.filters.base import FilterPrediction, FrameFilter
from repro.query.ast import (
    ComparisonOperator,
    CountPredicate,
    Query,
    RegionPredicate,
    SpatialPredicate,
)
from repro.spatial.grid import GridMask
from repro.spatial.relations import grid_masks_satisfy_direction


@dataclass(frozen=True)
class PlannerConfig:
    """Tolerances and preferences used when planning a cascade.

    ``count_tolerance`` of 1 corresponds to using the ``*-CCF-1`` filter
    variants, ``location_dilation`` of 1 to ``*-CLF-1``, and so on.  The
    ``family`` chooses between the OD filters (default — better localisation)
    and the IC filters.
    """

    count_tolerance: int = 1
    location_dilation: int = 1
    family: str = "od"
    use_count_filter: bool = True
    use_location_filter: bool = True

    def __post_init__(self) -> None:
        if self.count_tolerance < 0 or self.location_dilation < 0:
            raise ValueError("tolerances must be non-negative")
        if self.family not in ("od", "ic"):
            raise ValueError(f"family must be 'od' or 'ic': {self.family!r}")


@dataclass(frozen=True)
class CascadeStep:
    """One approximate check in the cascade.

    ``check`` receives the filter's prediction for the frame and returns
    ``True`` when the frame *may* satisfy the query (so it should continue
    down the cascade) and ``False`` when it can be skipped.
    """

    name: str
    frame_filter: FrameFilter
    check: Callable[[FilterPrediction], bool]

    def passes(self, prediction: FilterPrediction) -> bool:
        return bool(self.check(prediction))


@dataclass
class FilterCascade:
    """An ordered list of cascade steps sharing filter predictions per frame."""

    steps: list[CascadeStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @property
    def filters(self) -> list[FrameFilter]:
        """Distinct filters used by the cascade, in first-use order."""
        seen: list[FrameFilter] = []
        for step in self.steps:
            if all(step.frame_filter is not existing for existing in seen):
                seen.append(step.frame_filter)
        return seen

    def describe(self) -> str:
        return " -> ".join(step.name for step in self.steps) if self.steps else "(empty)"


# ----------------------------------------------------------------------
# Predicate checks over filter predictions
# ----------------------------------------------------------------------
def _count_possible(
    predicate: CountPredicate, prediction: FilterPrediction, tolerance: int
) -> bool:
    predicted = (
        prediction.total_count
        if predicate.class_name is None
        else prediction.count_of(predicate.class_name)
    )
    if predicate.operator is ComparisonOperator.EQUAL:
        return abs(predicted - predicate.value) <= tolerance
    if predicate.operator is ComparisonOperator.AT_LEAST:
        return predicted >= predicate.value - tolerance
    if predicate.operator is ComparisonOperator.AT_MOST:
        return predicted <= predicate.value + tolerance
    raise ValueError(f"unknown operator {predicate.operator}")  # pragma: no cover


def _spatial_possible(
    predicate: SpatialPredicate, prediction: FilterPrediction, dilation: int
) -> bool:
    subject = prediction.location_mask(predicate.subject_class, dilation=dilation)
    reference = prediction.location_mask(predicate.reference_class, dilation=dilation)
    if not subject or not reference:
        return False
    return grid_masks_satisfy_direction(subject, reference, predicate.direction)


def _region_possible(
    predicate: RegionPredicate, prediction: FilterPrediction, dilation: int
) -> bool:
    mask = prediction.location_mask(predicate.class_name, dilation=dilation)
    region_mask = predicate.region.grid_mask(prediction.grid)
    selected = mask.intersection(region_mask) if predicate.inside else mask.difference(region_mask)
    # Approximate the number of objects in the region by the number of
    # connected blobs of the selected cells.
    if not selected:
        blob_count = 0
    else:
        _, blob_count = ndimage.label(selected.values)
    tolerance = dilation  # reuse the dilation level as the count slack
    if predicate.operator is ComparisonOperator.EQUAL:
        return abs(blob_count - predicate.value) <= tolerance
    if predicate.operator is ComparisonOperator.AT_LEAST:
        return blob_count >= predicate.value - tolerance
    if predicate.operator is ComparisonOperator.AT_MOST:
        return blob_count <= predicate.value + tolerance
    raise ValueError(f"unknown operator {predicate.operator}")  # pragma: no cover


class QueryPlanner:
    """Plans a :class:`FilterCascade` for a query from the available filters."""

    def __init__(
        self,
        filters: Mapping[str, FrameFilter],
        config: PlannerConfig | None = None,
    ) -> None:
        """``filters`` maps family names (``"od"``, ``"ic"``, ``"od_cof"``) to trained filters."""
        if not filters:
            raise ValueError("the planner needs at least one trained filter")
        self.filters = dict(filters)
        self.config = config or PlannerConfig()

    def _primary_filter(self) -> FrameFilter:
        preferred = self.config.family
        if preferred in self.filters:
            return self.filters[preferred]
        # Fall back to any filter with per-class output.
        for name in ("od", "ic"):
            if name in self.filters:
                return self.filters[name]
        raise KeyError(
            f"no class-aware filter available among {sorted(self.filters)}"
        )

    def plan(self, query: Query) -> FilterCascade:
        """Build the filter cascade for ``query``."""
        config = self.config
        cascade = FilterCascade()
        primary = self._primary_filter()
        family_label = primary.family.upper()

        if config.use_count_filter and query.count_predicates:
            count_predicates = list(query.count_predicates)
            tolerance = config.count_tolerance
            suffix = f"-{tolerance}" if tolerance else ""
            per_class = [p for p in count_predicates if p.class_name is not None]
            total_only = [p for p in count_predicates if p.class_name is None]
            if per_class:
                cascade.steps.append(
                    CascadeStep(
                        name=f"{family_label}-CCF{suffix}",
                        frame_filter=primary,
                        check=lambda prediction, preds=tuple(per_class), tol=tolerance: all(
                            _count_possible(p, prediction, tol) for p in preds
                        ),
                    )
                )
            if total_only:
                count_filter = self.filters.get("od_cof", primary)
                label = "OD-COF" if "od_cof" in self.filters else f"{family_label}-CF"
                cascade.steps.append(
                    CascadeStep(
                        name=f"{label}{suffix}",
                        frame_filter=count_filter,
                        check=lambda prediction, preds=tuple(total_only), tol=tolerance: all(
                            _count_possible(p, prediction, tol) for p in preds
                        ),
                    )
                )

        if config.use_location_filter and (query.spatial_predicates or query.region_predicates):
            dilation = config.location_dilation
            suffix = f"-{dilation}" if dilation else ""
            spatial = tuple(query.spatial_predicates)
            regions = tuple(query.region_predicates)
            cascade.steps.append(
                CascadeStep(
                    name=f"{family_label}-CLF{suffix}",
                    frame_filter=primary,
                    check=lambda prediction, sp=spatial, rg=regions, dil=dilation: all(
                        _spatial_possible(p, prediction, dil) for p in sp
                    )
                    and all(_region_possible(p, prediction, dil) for p in rg),
                )
            )

        return cascade
