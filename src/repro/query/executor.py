"""Streaming query execution with filter cascades.

For every frame of the stream the executor runs the (cheap) filter cascade;
only frames that survive every cascade step are handed to the expensive
reference detector, whose detections are then checked exactly against the
query predicates.  Frames rejected by the cascade are skipped entirely — this
is the source of the orders-of-magnitude speedups reported in Table III.

Two execution modes share identical semantics:

* *sequential* (``batch_size=None``) — one frame at a time, the original
  per-frame loop;
* *batched* (``batch_size=n``) — the stream is processed in chunks of ``n``
  frames; each cascade step runs as one vectorized
  :meth:`~repro.filters.base.FrameFilter.predict_batch` call over the chunk's
  surviving frames, the survivor set narrows step by step, and the detector
  only sees the frames that survive the whole cascade.  Filter latencies are
  charged with the clock's ``calls=n`` batched-charge API, so the simulated
  cost accounting matches the sequential path (call counts exactly,
  milliseconds to float-rounding).  Batched execution returns the same
  matched frames and the same work counters as sequential execution and is
  several times faster in wall-clock on the linear filters (see
  ``benchmarks/bench_batch_executor.py``).

Both modes honor the query's ``WINDOW HOPPING`` clause: the stream is
segmented into hopping-window instances, every frame covered by at least one
window is filtered/verified exactly once (overlapping windows share the
per-frame work), and the result carries one :class:`WindowResult` per window
instance alongside the flat ``matched_frames``.  Aggregate monitoring queries
go through :meth:`StreamingQueryExecutor.execute_aggregate`, which uses the
planned cascade's primary filter as the control-variate source.

:meth:`StreamingQueryExecutor.execute_many` applies the same shared-work
principle one level up, across *queries*: N queries run in one scan in which
each frame is materialised once, a filter shared by several queries'
cascades is evaluated at most once per frame, and the detector runs at most
once per frame on the union of all queries' cascade survivors — with
per-query results identical to running each query alone and a
:class:`~repro.cost.SharedCostReport` separating the work charged once from
what each query would have paid standalone.

Passing a :class:`~repro.query.temporal.TemporalConfig` (``temporal=...``)
to :meth:`~StreamingQueryExecutor.execute`,
:meth:`~StreamingQueryExecutor.execute_many` or
:meth:`~StreamingQueryExecutor.execute_aggregate` additionally exploits
*temporal coherence*: frames whose cheap change signature barely differs
from the last keyframe reuse that keyframe's filter predictions and
detector verdict instead of recomputing them, and over stable segments the
scan strides past frames entirely, localizing match boundaries by binary
search (see :mod:`repro.query.temporal`).  Avoided invocations are recorded
as reused calls on the cost breakdown; the default ``exact=True`` mode
verifies every reuse so results stay bit-identical to a non-temporal run.

Costs are accounted twice:

* *simulated* cost, using the paper's measured per-component latencies
  (filter branches ~1.5–1.9 ms, Mask R-CNN ~200 ms), which is what the
  execution-time tables report;
* *wall-clock* cost of this reproduction's own code, reported alongside for
  transparency (our numpy filters and simulated detector have very different
  absolute costs than GPU inference).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

# Imported from the submodule (not the repro.aggregates package) so that the
# aggregates -> query.ast -> query.executor import chain finds the window
# types already initialised.
from repro.aggregates.windows import HoppingWindow, WindowBounds
from repro.cost import CostBreakdown, SharedCostReport, SimulatedClock
from repro.detection.base import Detector
from repro.faults.injector import FaultExhausted, current_report
from repro.filters.base import FilterPrediction, FrameFilter
from repro.query.ast import Query
from repro.query.evaluation import evaluate_predicates_on_detections
from repro.query.parallel import (
    CascadeProfiler,
    ChunkOutcome,
    FramePrefetcher,
    ParallelConfig,
    ParallelStats,
    PlanRevision,
    partition_chunks,
    run_parallel_scan,
)
from repro.cost import ParallelCostReport
from repro.query.planner import FilterCascade, merge_cascade_steps
from repro.query.session import ScanSession
from repro.query.temporal import (
    TemporalConfig,
    TemporalScan,
    TemporalStats,
    clocks_detached,
    with_component_reuses,
)
from repro.video.stream import Frame, VideoStream

if TYPE_CHECKING:  # runtime import would be circular; see execute_aggregate
    from repro.aggregates.monitor import AggregateQuerySpec, MonitoringReport
    from repro.analysis.diagnostics import AnalysisReport
    from repro.faults.injector import FaultReport


@dataclass(frozen=True)
class ExecutionStats:
    """Work and cost accounting for one query execution."""

    frames_scanned: int
    frames_passed_filters: int
    detector_invocations: int
    filter_invocations: int
    simulated_cost: CostBreakdown
    wall_clock_seconds: float
    #: chunk size of the batched execution mode; ``None`` = sequential
    batch_size: int | None = None
    #: mid-stream cascade reorders performed by the adaptive re-planner
    #: (empty unless ``ParallelConfig(adaptive=True)`` was in effect)
    plan_revisions: tuple[PlanRevision, ...] = ()
    #: worker/prefetch telemetry of a parallel pipelined execution
    #: (``None`` when the scan ran without a ``ParallelConfig``)
    parallel: ParallelStats | None = None
    #: findings of the runtime sanitizers (``None`` unless the scan ran with
    #: ``ParallelConfig(sanitize=...)``; empty report = instrumented and clean)
    sanitizer_report: "AnalysisReport | None" = None
    #: injected-fault and quarantine accounting of the scan (``None`` when no
    #: :class:`~repro.faults.FaultInjector` was installed and nothing was
    #: quarantined — i.e. every fault-free run)
    faults: "FaultReport | None" = None

    @property
    def simulated_seconds(self) -> float:
        return self.simulated_cost.total_seconds

    @property
    def filter_selectivity(self) -> float:
        """Fraction of frames that survived the cascade (lower = more selective).

        An execution that scanned no frames has no survival fraction at all;
        returning ``0.0`` would read as "perfectly selective", so the empty
        case returns ``nan`` (check with :func:`math.isnan`).
        """
        if self.frames_scanned == 0:
            return float("nan")
        return self.frames_passed_filters / self.frames_scanned


@dataclass(frozen=True)
class WindowStats:
    """Per-window frame counts of a windowed execution.

    These are cardinalities of the window's frame sets, not work counters:
    overlapping windows share one filter evaluation and one verification per
    frame, so attributing invocations per window would double-charge shared
    work.  The execution-wide totals live in :class:`ExecutionStats`.
    """

    frames_scanned: int
    frames_passed_filters: int


@dataclass(frozen=True)
class WindowResult:
    """Per-window match set of a windowed query execution."""

    bounds: WindowBounds
    matched_frames: tuple[int, ...]
    stats: WindowStats

    @property
    def num_matches(self) -> int:
        return len(self.matched_frames)

    @property
    def match_fraction(self) -> float:
        """Fraction of the window's scanned frames that matched (``nan`` if none scanned)."""
        if self.stats.frames_scanned == 0:
            return float("nan")
        return self.num_matches / self.stats.frames_scanned


@dataclass(frozen=True)
class QueryExecutionResult:
    """The outcome of executing a query over a stream.

    For windowed queries ``windows`` holds one :class:`WindowResult` per
    hopping-window instance (in stream order); ``matched_frames`` stays the
    flat match set over all frames covered by any window, so the union of the
    per-window match sets always equals ``matched_frames``.  Un-windowed
    executions have ``windows=None``.  ``temporal`` carries the
    reuse/stride telemetry of a temporally-coherent execution (``None`` when
    the scan ran without a :class:`~repro.query.temporal.TemporalConfig`).
    """

    query_name: str
    cascade_description: str
    matched_frames: tuple[int, ...]
    stats: ExecutionStats
    windows: tuple[WindowResult, ...] | None = None
    temporal: TemporalStats | None = None

    @property
    def num_matches(self) -> int:
        return len(self.matched_frames)

    @property
    def num_windows(self) -> int:
        return len(self.windows) if self.windows is not None else 0

    # ------------------------------------------------------------------
    # Accuracy against a reference (brute-force) result
    # ------------------------------------------------------------------
    def accuracy_against(self, reference_frames: Iterable[int]) -> dict[str, float]:
        """Precision / recall / F1 / accuracy relative to a reference answer set.

        The paper reports, for count queries, the fraction of true answer
        frames that the filtered execution identifies (here ``recall``; the
        verification step makes false positives impossible when the same
        detector defines the truth), and the F1 measure for spatial queries.
        """
        truth = set(reference_frames)
        found = set(self.matched_frames)
        true_positives = len(truth & found)
        false_positives = len(found - truth)
        false_negatives = len(truth - found)
        precision = (
            true_positives / (true_positives + false_positives)
            if (true_positives + false_positives)
            else 1.0
        )
        recall = (
            true_positives / (true_positives + false_negatives)
            if (true_positives + false_negatives)
            else 1.0
        )
        f1 = (
            2 * precision * recall / (precision + recall)
            if (precision + recall) > 0
            else 0.0
        )
        return {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "accuracy": recall,
            "true_positives": float(true_positives),
            "false_positives": float(false_positives),
            "false_negatives": float(false_negatives),
        }

    def speedup_against(self, reference: "QueryExecutionResult") -> float:
        """Simulated-time speedup relative to another execution (e.g. brute force).

        Edge cases are defined so empty comparisons read sensibly: two
        zero-cost executions are equally fast (``1.0``); a zero-cost
        execution compared against a real one is infinitely faster
        (``inf``).
        """
        own = self.stats.simulated_seconds
        other = reference.stats.simulated_seconds
        if own <= 0:
            return 1.0 if other <= 0 else float("inf")
        return other / own


@dataclass(frozen=True)
class SharedExecutionStats:
    """Actual work performed by one shared multi-query scan.

    Unlike the per-query :class:`ExecutionStats` (which attribute to each
    query the work it would have paid running alone), these counters are what
    the shared run really did: every frame materialised once, every shared
    filter evaluated at most once per frame, the detector run at most once
    per frame on the union of all queries' cascade survivors.
    """

    #: distinct frames materialised and scanned (union over all queries)
    frames_scanned: int
    #: detector runs — one per frame that survived *some* query's cascade
    detector_invocations: int
    #: filter frame-evaluations actually performed across all shared filters
    filter_computations: int
    #: cascade steps after cross-query dedup / before dedup
    unique_steps: int
    total_steps: int
    cost: SharedCostReport
    wall_clock_seconds: float
    batch_size: int | None = None
    #: reuse/stride telemetry of a temporally-coherent shared scan
    temporal: TemporalStats | None = None
    #: worker/prefetch telemetry of a parallel pipelined shared scan
    parallel: ParallelStats | None = None
    #: findings of the runtime sanitizers (``None`` unless the scan ran with
    #: ``ParallelConfig(sanitize=...)``; empty report = instrumented and clean)
    sanitizer_report: "AnalysisReport | None" = None

    @property
    def savings_ratio(self) -> float:
        """Simulated-cost ratio of N independent runs over the shared run."""
        return self.cost.savings_ratio


@dataclass(frozen=True)
class MultiQueryExecutionResult:
    """The outcome of executing several queries in one shared scan.

    ``results[i]`` corresponds to ``queries[i]`` of the
    :meth:`StreamingQueryExecutor.execute_many` call and is bit-identical in
    matched frames and work counters to running that query alone; ``shared``
    reports the work the one scan actually performed.
    """

    results: tuple[QueryExecutionResult, ...]
    shared: SharedExecutionStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryExecutionResult:
        return self.results[index]

    def result_for(self, query_name: str) -> QueryExecutionResult:
        """The result of the (single) query named ``query_name``."""
        found = [result for result in self.results if result.query_name == query_name]
        if not found:
            raise KeyError(f"no query named {query_name!r} in this execution")
        if len(found) > 1:
            raise KeyError(f"{len(found)} queries named {query_name!r}; index by position")
        return found[0]


@dataclass(frozen=True)
class WindowAggregateEstimate:
    """Aggregate estimates for one window instance of a windowed spec."""

    bounds: WindowBounds
    reports: tuple["MonitoringReport", ...]

    @property
    def cv_mean(self) -> float:
        """Mean of the control-variate estimates across the repetitions."""
        return float(np.mean([report.control_variate.mean for report in self.reports]))


@dataclass(frozen=True)
class AggregateExecutionResult:
    """The outcome of executing an aggregate monitoring query.

    Un-windowed specs produce ``reports`` (one
    :class:`~repro.aggregates.monitor.MonitoringReport` per repetition) and
    ``windows=None``; windowed specs produce one
    :class:`WindowAggregateEstimate` per hopping-window instance and an empty
    ``reports``.
    """

    query_name: str
    cascade_description: str
    filter_name: str
    reports: tuple["MonitoringReport", ...]
    windows: tuple[WindowAggregateEstimate, ...] | None = None

    @property
    def all_reports(self) -> tuple["MonitoringReport", ...]:
        """Every report produced, whole-stream or per-window."""
        if self.windows is None:
            return self.reports
        return tuple(report for window in self.windows for report in window.reports)


@dataclass(frozen=True)
class _TemporalOutcome:
    """Cached per-frame outcome of a single-query temporal scan.

    ``components`` names the filters the evaluation ran (in cascade order,
    deduped by identity) — the invocations a reuse of this outcome avoids.
    """

    passed: bool
    matched: bool
    components: tuple[str, ...]


@dataclass(frozen=True)
class _QueryVerdict:
    """One query's share of a shared-scan frame outcome.

    ``components`` holds the ``(name, latency_ms)`` cost components a
    standalone run of this query would have charged for the frame.
    """

    components: tuple[tuple[str, float], ...]
    passed: bool
    matched: bool


@dataclass(frozen=True)
class _SharedTemporalOutcome:
    """Cached per-frame outcome of a multi-query temporal scan.

    ``per_query[i]`` is ``None`` for queries whose window coverage excludes
    the frame; ``computed_components`` names the distinct filters the shared
    evaluation actually ran, and ``detector_ran`` whether any query's
    cascade survivors triggered the detector.
    """

    per_query: tuple[_QueryVerdict | None, ...]
    computed_components: tuple[str, ...]
    detector_ran: bool


class StreamingQueryExecutor:
    """Executes queries over a stream with an optional filter cascade."""

    def __init__(self, detector: Detector, clock: SimulatedClock | None = None) -> None:
        self.detector = detector
        self.clock = clock or SimulatedClock()

    def execute(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade | None = None,
        frame_indices: Sequence[int] | None = None,
        batch_size: int | None = None,
        include_partial_windows: bool = True,
        temporal: TemporalConfig | None = None,
        parallel: ParallelConfig | None = None,
        strict: bool = False,
    ) -> QueryExecutionResult:
        """Run ``query`` over ``stream`` (optionally restricted to ``frame_indices``).

        ``strict=True`` re-runs the static analyzer over the query and the
        cascade right before execution and raises
        :class:`~repro.analysis.AnalysisError` (a ``ValueError``) on
        error-severity findings — the belt-and-braces entry point for
        cascades that did not come from ``QueryPlanner.plan(strict=True)``.

        ``batch_size=None`` selects the sequential per-frame path;
        ``batch_size=n`` processes the stream in chunks of ``n`` frames with
        vectorized filter batches.  Both modes produce identical matched
        frames and work counters.

        When the query carries a ``WINDOW HOPPING`` clause the scan is
        restricted to the frames covered by at least one window instance, each
        frame is filtered/verified once no matter how many overlapping windows
        contain it, and the result's ``windows`` field reports the per-window
        match sets.  ``include_partial_windows`` controls whether a trailing
        window shorter than the declared size is materialised; with the
        default ``True`` the windows cover every stream frame whenever
        ``advance <= size`` (with ``advance > size`` the inter-window gaps
        are never scanned regardless).  Pass ``False`` for the paper's
        fixed-size-window semantics, which silently drop the remainder — see
        :meth:`~repro.aggregates.windows.HoppingWindow.windows_over`.

        ``temporal`` enables the temporal-coherence layer: stable frames
        reuse the last keyframe's filter predictions and detector verdict,
        and with ``max_stride > 1`` stable segments are strided past
        entirely (see :mod:`repro.query.temporal`).  Temporal gating is
        inherently sequential, so it cannot be combined with ``batch_size``.
        With the default ``exact=True`` the matched frames (and windows) are
        bit-identical to a non-temporal run while the simulated cost shows
        what the approximate mode would charge; with ``exact=False`` reused
        verdicts are trusted as-is.

        ``parallel`` runs the scan through the parallel pipelined engine
        (see :mod:`repro.query.parallel`): the filter-cascade phase of
        ``chunk_size``-frame chunks executes on ``num_workers`` concurrent
        workers while a decode-ahead prefetcher renders upcoming chunks, and
        results are re-merged in stream order — output is bit-identical to
        the sequential batched path.  When ``batch_size`` is also given it
        overrides the config's chunk size (parallel execution *is* batched
        execution, distributed).  Combined with ``temporal`` the gating
        stays sequential (reuse decisions are inherently order-dependent)
        and parallelism contributes decode-ahead rendering only.  With
        ``parallel.adaptive`` the cascade order is re-planned mid-stream
        from observed pass rates; every reorder is logged in
        ``stats.plan_revisions`` and the matched frames are unaffected
        (conjunctive steps commute).
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        if temporal is not None and batch_size is not None:
            raise ValueError(
                "temporal execution is sequential; combining temporal= with "
                "batch_size= is not supported"
            )
        indices = list(frame_indices) if frame_indices is not None else list(range(len(stream)))
        window_bounds = _window_bounds_for(query, stream, include_partial_windows)
        if window_bounds is not None:
            indices = _restrict_to_coverage(indices, window_bounds)
        # Cost is measured as a delta against a snapshot rather than by
        # resetting the clock: a caller-supplied shared clock (e.g. one
        # accumulating cost across several executions) keeps its history.
        cost_baseline = self.clock.snapshot()
        # `is None`, not truthiness: a provably-empty cascade has no steps
        # (len 0, hence falsy) but must keep its short-circuit flag.
        cascade = cascade if cascade is not None else FilterCascade()
        if strict:
            # Local import: repro.analysis depends on the query AST package.
            from repro.analysis import lint_plan, lint_query

            lint_query(query, strict=True)
            lint_plan(cascade, strict=True)
        if cascade.provably_empty:
            # Static analysis proved the query can match no frame: return the
            # empty result directly — zero frames rendered, filtered or
            # verified.  Windowed queries still report their (empty) window
            # instances so the result shape matches a normal windowed run.
            return QueryExecutionResult(
                query_name=query.name,
                cascade_description=cascade.describe(),
                matched_frames=(),
                stats=ExecutionStats(
                    frames_scanned=0,
                    frames_passed_filters=0,
                    detector_invocations=0,
                    filter_invocations=0,
                    simulated_cost=self.clock.delta_since(cost_baseline),
                    wall_clock_seconds=0.0,
                    batch_size=batch_size,
                ),
                windows=(
                    _partition_into_windows(window_bounds, [], [], [])
                    if window_bounds is not None
                    else None
                ),
            )
        # The cascade's filters charge their latency to our clock for the
        # duration of this execution.
        previous_clocks = []
        for frame_filter in cascade.filters:
            previous_clocks.append((frame_filter, frame_filter.clock))
            frame_filter.clock = self.clock
        previous_detector_clock = getattr(self.detector, "clock", None)
        if hasattr(self.detector, "clock"):
            self.detector.clock = self.clock

        effective_chunk = (
            (batch_size or parallel.chunk_size) if parallel is not None else batch_size
        )
        started = time.perf_counter()
        temporal_stats: TemporalStats | None = None
        plan_revisions: tuple[PlanRevision, ...] = ()
        per_worker: tuple = ()
        num_chunks = 0
        sanitizer_report: AnalysisReport | None = None
        fault_report: FaultReport | None = None
        try:
            if temporal is not None:
                prefetcher: FramePrefetcher | None = None
                profiler: CascadeProfiler | None = None
                render = stream.frame
                if parallel is not None:
                    # Profiler before prefetcher: everything constructed after
                    # the prefetcher must live inside the try/finally below,
                    # or a failure here would leak decode-ahead threads.
                    if parallel.adaptive:
                        profiler = CascadeProfiler(cascade, parallel)
                    prefetcher = FramePrefetcher(
                        stream,
                        indices,
                        depth=parallel.prefetch_depth * effective_chunk,
                        threads=parallel.effective_prefetch_threads,
                    )
                    render = prefetcher.frame
                try:
                    (
                        matched,
                        passed,
                        filter_invocations,
                        detector_invocations,
                        temporal_stats,
                    ) = self._run_temporal(
                        query, stream, cascade, indices, temporal,
                        render=render, profiler=profiler,
                    )
                finally:
                    if prefetcher is not None:
                        prefetcher.close()
                if profiler is not None:
                    plan_revisions = tuple(profiler.revisions)
            elif parallel is not None:
                (
                    matched_lists,
                    passed_lists,
                    invocation_list,
                    _attributed,
                    _computed,
                    detector_invocations,
                    profilers,
                    per_worker,
                    num_chunks,
                    sanitizer_report,
                    fault_report,
                ) = self._run_parallel_chunked(
                    [query],
                    stream,
                    [cascade],
                    [list(range(len(cascade.steps)))],
                    None,
                    indices,
                    parallel,
                    effective_chunk,
                )
                matched, passed = matched_lists[0], passed_lists[0]
                filter_invocations = invocation_list[0]
                if profilers is not None:
                    plan_revisions = tuple(profilers[0].revisions)
            else:
                if batch_size is None:
                    counters = self._run_sequential(query, stream, cascade, indices)
                else:
                    counters = self._run_batched(query, stream, cascade, indices, batch_size)
                matched, passed, filter_invocations = counters
                detector_invocations = len(passed)
        finally:
            for frame_filter, previous in previous_clocks:
                frame_filter.clock = previous
            if hasattr(self.detector, "clock"):
                self.detector.clock = previous_detector_clock
        elapsed = time.perf_counter() - started

        parallel_stats = (
            ParallelStats(
                backend=parallel.backend,
                num_workers=parallel.num_workers,
                chunk_size=effective_chunk,
                prefetch_depth=parallel.prefetch_depth,
                num_chunks=num_chunks,
                cost=ParallelCostReport(
                    per_worker=per_worker, wall_clock_seconds=elapsed
                ),
            )
            if parallel is not None
            else None
        )
        if fault_report is None:
            # Non-parallel paths did not collect a report; an installed
            # injector still yields one (decode retries happen in the
            # stream), and fault-free runs keep ``faults=None``.
            fault_report = current_report(())
        stats = ExecutionStats(
            frames_scanned=len(indices),
            frames_passed_filters=len(passed),
            detector_invocations=detector_invocations,
            filter_invocations=filter_invocations,
            simulated_cost=self.clock.delta_since(cost_baseline),
            wall_clock_seconds=elapsed,
            batch_size=effective_chunk if temporal is None else batch_size,
            plan_revisions=plan_revisions,
            parallel=parallel_stats,
            sanitizer_report=sanitizer_report,
            faults=fault_report,
        )
        windows = (
            _partition_into_windows(window_bounds, indices, passed, matched)
            if window_bounds is not None
            else None
        )
        return QueryExecutionResult(
            query_name=query.name,
            cascade_description=cascade.describe(),
            matched_frames=tuple(matched),
            stats=stats,
            windows=windows,
            temporal=temporal_stats,
        )

    # ------------------------------------------------------------------
    # Multi-query shared execution
    # ------------------------------------------------------------------
    def execute_many(
        self,
        queries: Sequence[Query],
        stream: VideoStream,
        cascades: Sequence[FilterCascade | None] | None = None,
        *,
        planner=None,
        frame_indices: Sequence[int] | None = None,
        batch_size: int | None = None,
        include_partial_windows: bool = True,
        temporal: TemporalConfig | None = None,
        parallel: ParallelConfig | None = None,
        strict: bool = False,
    ) -> MultiQueryExecutionResult:
        """Run several queries over ``stream`` in one shared scan.

        Work that independent :meth:`execute` calls would repeat is performed
        once:

        * each frame is materialised (rendered) once and reused by every
          query;
        * a filter appearing in several queries' cascades is evaluated at
          most once per frame — predictions live in a cross-query per-chunk
          cache keyed by the filter's
          :attr:`~repro.filters.base.FrameFilter.identity`, and cascade steps
          that :func:`~repro.query.planner.merge_cascade_steps` proves
          semantically identical share their pass/fail outcome as well;
        * the detector runs at most once per frame, on the union of all
          queries' cascade survivors, and the resulting detections are
          evaluated against each interested query's predicates.

        ``cascades[i]`` is the cascade for ``queries[i]`` (``None`` entries
        mean no filtering).  When ``cascades`` is omitted entirely, a
        ``planner`` (:class:`~repro.query.planner.QueryPlanner`) may be
        supplied to plan one cascade per query; with neither, every query
        runs brute force — still sharing frames and detector runs.

        Per-query results have exact parity with running each query alone:
        the same matched frames and windows, and per-query work counters /
        simulated cost *attributed* from the shared run (what the query would
        have paid standalone).  The actual — smaller — cost of the shared
        scan is reported once in ``shared``, whose
        :class:`~repro.cost.SharedCostReport` separates work charged once
        from the per-query attributions.  Only ``wall_clock_seconds`` is not
        attributable: each per-query result carries the whole shared run's
        wall clock.

        Windowed queries partition the shared scan exactly as in
        :meth:`execute`: each windowed query is restricted to the frames its
        windows cover and its matches are split into per-window results;
        un-windowed queries in the same call scan every frame.

        ``temporal`` applies the temporal-coherence layer to the *shared*
        scan: the change signature is query-independent, so one stable frame
        reuses the entire shared outcome — every query's cascade verdicts
        and the detector verdict at once.  Reuse only happens between frames
        covered by the same set of queries (window boundaries force a
        keyframe refresh).  As in :meth:`execute`, temporal gating is
        sequential and cannot be combined with ``batch_size``; in the
        default ``exact=True`` mode per-query results stay bit-identical to
        a non-temporal run.

        ``parallel`` distributes the shared scan's filter phase across the
        worker pool exactly as in :meth:`execute` — the cross-query
        prediction cache lives per chunk, so sharing is unaffected — with
        the detector phase and predicate evaluation at the in-order merge.
        Adaptive re-planning profiles each query's cascade independently;
        per-query ``stats.plan_revisions`` carry the reorders.
        """
        queries = list(queries)
        if not queries:
            raise ValueError("execute_many needs at least one query")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        if temporal is not None and batch_size is not None:
            raise ValueError(
                "temporal execution is sequential; combining temporal= with "
                "batch_size= is not supported"
            )
        if cascades is None:
            if planner is not None:
                query_cascades = [planner.plan(query) for query in queries]
            else:
                query_cascades = [FilterCascade() for _ in queries]
        else:
            # `is None`, not truthiness: provably-empty cascades are falsy
            # (zero steps) but carry the short-circuit flag.
            query_cascades = [
                cascade if cascade is not None else FilterCascade()
                for cascade in cascades
            ]
            if len(query_cascades) != len(queries):
                raise ValueError(
                    f"{len(queries)} queries but {len(query_cascades)} cascades"
                )
        if strict:
            # Local import: repro.analysis depends on the query AST package.
            from repro.analysis import lint_plan, lint_query

            for query, cascade in zip(queries, query_cascades):
                lint_query(query, strict=True)
                lint_plan(cascade, strict=True)
        base_indices = (
            list(frame_indices) if frame_indices is not None else list(range(len(stream)))
        )

        # Per-query frame coverage: windowed queries restrict to their
        # windows (same semantics and same error as execute()).
        per_query_windows: list[list[WindowBounds] | None] = []
        per_query_indices: list[list[int]] = []
        for query, cascade in zip(queries, query_cascades):
            bounds = _window_bounds_for(query, stream, include_partial_windows)
            per_query_windows.append(bounds)
            if cascade.provably_empty:
                # Statically proven to match nothing: the query takes part in
                # no frame of the shared scan (and pulls no frame into the
                # union on its own).
                per_query_indices.append([])
            else:
                per_query_indices.append(
                    _restrict_to_coverage(base_indices, bounds)
                    if bounds is not None
                    else list(base_indices)
                )
        member_sets = [set(indices) for indices in per_query_indices]
        union_indices = [
            index
            for index in base_indices
            if any(index in members for members in member_sets)
        ]

        unique_steps, assignments = merge_cascade_steps(query_cascades)

        # Every distinct filter instance and the detector charge this
        # executor's clock for the duration of the shared run.
        distinct_filters: list[FrameFilter] = []
        for cascade in query_cascades:
            for frame_filter in cascade.filters:
                if all(frame_filter is not existing for existing in distinct_filters):
                    distinct_filters.append(frame_filter)
        previous_clocks = [(frame_filter, frame_filter.clock) for frame_filter in distinct_filters]
        for frame_filter in distinct_filters:
            frame_filter.clock = self.clock
        previous_detector_clock = getattr(self.detector, "clock", None)
        if hasattr(self.detector, "clock"):
            self.detector.clock = self.clock

        cost_baseline = self.clock.snapshot()
        num_queries = len(queries)
        matched: list[list[int]] = [[] for _ in range(num_queries)]
        passed: list[list[int]] = [[] for _ in range(num_queries)]
        filter_invocations = [0] * num_queries
        # per query: (filter component name, latency) -> attributed call count
        attributed_calls: list[dict[tuple[str, float], int]] = [
            {} for _ in range(num_queries)
        ]
        shared_filter_computations = 0
        shared_detector_invocations = 0
        temporal_stats: TemporalStats | None = None
        chunk_size = batch_size if batch_size is not None else 1
        if parallel is not None:
            chunk_size = batch_size or parallel.chunk_size
        per_query_revisions: list[tuple[PlanRevision, ...]] = [
            () for _ in range(num_queries)
        ]
        per_worker: tuple = ()
        num_chunks = 0
        sanitizer_report: AnalysisReport | None = None
        fault_report: FaultReport | None = None

        started = time.perf_counter()
        try:
            if temporal is not None:
                prefetcher: FramePrefetcher | None = None
                profilers: list[CascadeProfiler] | None = None
                render = stream.frame
                if parallel is not None:
                    # Profiler construction before the prefetcher (see
                    # execute()): nothing may run between the prefetcher
                    # constructor and the try/finally that closes it.
                    if parallel.adaptive:
                        profilers = [
                            CascadeProfiler(cascade, parallel)
                            for cascade in query_cascades
                        ]
                    prefetcher = FramePrefetcher(
                        stream,
                        union_indices,
                        depth=parallel.prefetch_depth * chunk_size,
                        threads=parallel.effective_prefetch_threads,
                    )
                    render = prefetcher.frame
                try:
                    (
                        matched,
                        passed,
                        filter_invocations,
                        attributed_calls,
                        shared_filter_computations,
                        shared_detector_invocations,
                        temporal_stats,
                    ) = self._run_many_temporal(
                        queries,
                        stream,
                        query_cascades,
                        assignments,
                        member_sets,
                        union_indices,
                        temporal,
                        render=render,
                        profilers=profilers,
                    )
                finally:
                    if prefetcher is not None:
                        prefetcher.close()
                if profilers is not None:
                    per_query_revisions = [
                        tuple(profiler.revisions) for profiler in profilers
                    ]
            elif parallel is not None:
                (
                    matched,
                    passed,
                    filter_invocations,
                    attributed_calls,
                    shared_filter_computations,
                    shared_detector_invocations,
                    profilers,
                    per_worker,
                    num_chunks,
                    sanitizer_report,
                    fault_report,
                ) = self._run_parallel_chunked(
                    queries,
                    stream,
                    query_cascades,
                    assignments,
                    member_sets,
                    union_indices,
                    parallel,
                    chunk_size,
                )
                if profilers is not None:
                    per_query_revisions = [
                        tuple(profiler.revisions) for profiler in profilers
                    ]
            else:
                (
                    shared_filter_computations,
                    shared_detector_invocations,
                    fault_report,
                ) = self._run_many_chunked(
                    queries,
                    stream,
                    query_cascades,
                    assignments,
                    member_sets,
                    union_indices,
                    chunk_size,
                    matched,
                    passed,
                    filter_invocations,
                    attributed_calls,
                )
        finally:
            for frame_filter, previous in previous_clocks:
                frame_filter.clock = previous
            if hasattr(self.detector, "clock"):
                self.detector.clock = previous_detector_clock
        elapsed = time.perf_counter() - started
        shared_breakdown = self.clock.delta_since(cost_baseline)
        parallel_stats = (
            ParallelStats(
                backend=parallel.backend,
                num_workers=parallel.num_workers,
                chunk_size=chunk_size,
                prefetch_depth=parallel.prefetch_depth,
                num_chunks=num_chunks,
                cost=ParallelCostReport(
                    per_worker=per_worker, wall_clock_seconds=elapsed
                ),
            )
            if parallel is not None
            else None
        )

        if fault_report is None:
            # Temporal runs collect no report of their own; an installed
            # injector still yields one, and fault-free runs keep ``None``.
            fault_report = current_report(())
        detector_component = getattr(self.detector, "name", "detector")
        detector_latency = float(getattr(self.detector, "latency_ms", 0.0))
        labels = _unique_query_labels(queries)
        attributed: dict[str, CostBreakdown] = {}
        results: list[QueryExecutionResult] = []
        for position, query in enumerate(queries):
            breakdown = CostBreakdown()
            for (component, latency), calls in attributed_calls[position].items():
                breakdown.per_component_ms[component] = (
                    breakdown.per_component_ms.get(component, 0.0) + latency * calls
                )
                breakdown.per_component_calls[component] = (
                    breakdown.per_component_calls.get(component, 0) + calls
                )
            survivors = len(passed[position])
            if survivors:
                breakdown.per_component_ms[detector_component] = (
                    breakdown.per_component_ms.get(detector_component, 0.0)
                    + detector_latency * survivors
                )
                breakdown.per_component_calls[detector_component] = (
                    breakdown.per_component_calls.get(detector_component, 0) + survivors
                )
            attributed[labels[position]] = breakdown
            stats = ExecutionStats(
                frames_scanned=len(per_query_indices[position]),
                frames_passed_filters=survivors,
                detector_invocations=survivors,
                filter_invocations=filter_invocations[position],
                simulated_cost=breakdown,
                wall_clock_seconds=elapsed,
                batch_size=chunk_size if parallel is not None else batch_size,
                plan_revisions=per_query_revisions[position],
                faults=fault_report,
            )
            windows = (
                _partition_into_windows(
                    per_query_windows[position],
                    per_query_indices[position],
                    passed[position],
                    matched[position],
                )
                if per_query_windows[position] is not None
                else None
            )
            results.append(
                QueryExecutionResult(
                    query_name=query.name,
                    cascade_description=query_cascades[position].describe(),
                    matched_frames=tuple(matched[position]),
                    stats=stats,
                    windows=windows,
                )
            )
        shared_stats = SharedExecutionStats(
            frames_scanned=len(union_indices),
            detector_invocations=shared_detector_invocations,
            filter_computations=shared_filter_computations,
            unique_steps=len(unique_steps),
            total_steps=sum(len(cascade) for cascade in query_cascades),
            cost=SharedCostReport(shared=shared_breakdown, attributed=attributed),
            wall_clock_seconds=elapsed,
            batch_size=chunk_size if parallel is not None else batch_size,
            temporal=temporal_stats,
            parallel=parallel_stats,
            sanitizer_report=sanitizer_report,
        )
        return MultiQueryExecutionResult(results=tuple(results), shared=shared_stats)

    def _run_many_chunked(
        self,
        queries: Sequence[Query],
        stream: VideoStream,
        query_cascades: Sequence[FilterCascade],
        assignments: Sequence[Sequence[int]],
        member_sets: Sequence[set[int]],
        union_indices: Sequence[int],
        chunk_size: int,
        matched: list[list[int]],
        passed: list[list[int]],
        filter_invocations: list[int],
        attributed_calls: list[dict[tuple[str, float], int]],
    ) -> tuple[int, int, "FaultReport | None"]:
        """The shared multi-query chunk loop (non-temporal).

        Mutates the per-query accumulators in place and returns the shared
        scan's actual ``(filter_computations, detector_invocations)``.  The
        loop itself lives in :class:`~repro.query.session.ScanSession`
        (executor mode: precomputed coverage, caller-attached clocks) — this
        method renders one chunk of frames at a time and pushes it, exactly
        as the standing-query service does, so the one-shot and live paths
        run the same accumulation code.  The filter phase is
        :func:`~repro.query.parallel.run_filter_chunk` — the very function
        the parallel workers execute — so the parallel engine is
        chunk-for-chunk identical to this loop by construction.
        """
        del assignments  # recomputed by the session (deterministic merge)
        session = ScanSession(
            self.detector, clock=self.clock, live=False, attach_clocks=False
        )
        with session:
            for query, cascade, members in zip(queries, query_cascades, member_sets):
                session.add_query(query, cascade, member_set=members)
            for start in range(0, len(union_indices), chunk_size):
                chunk = union_indices[start : start + chunk_size]
                try:
                    # One materialisation per frame, shared by every query.
                    frames = [stream.frame(index) for index in chunk]
                except FaultExhausted as error:
                    # A frame of this chunk could not be decoded within the
                    # retry budget: quarantine the chunk and keep scanning.
                    session.quarantine_chunk(list(chunk), error)
                    continue
                session.push_chunk(frames)
            for position, state in enumerate(session.states):
                matched[position].extend(state.matched)
                passed[position].extend(state.passed)
                filter_invocations[position] += state.filter_invocations
                for component, calls in state.attributed.items():
                    attributed_calls[position][component] = (
                        attributed_calls[position].get(component, 0) + calls
                    )
        return (
            session.shared_filter_computations,
            session.shared_detector_invocations,
            current_report(tuple(session.quarantined)),
        )

    def _run_parallel_chunked(
        self,
        queries: Sequence[Query],
        stream: VideoStream,
        query_cascades: Sequence[FilterCascade],
        assignments: Sequence[Sequence[int]],
        member_sets: Sequence[set[int]] | None,
        union_indices: Sequence[int],
        config: ParallelConfig,
        chunk_size: int,
    ) -> tuple[
        list[list[int]],
        list[list[int]],
        list[int],
        list[dict[tuple[str, float], int]],
        int,
        int,
        list[CascadeProfiler] | None,
        tuple,
        int,
        "AnalysisReport | None",
        "FaultReport | None",
    ]:
        """The parallel pipelined chunk scan (single- or multi-query).

        Workers run :func:`~repro.query.parallel.run_filter_chunk` over
        concurrent chunks; this method's merge callback consumes their
        outcomes *in chunk order* — absorbing each chunk's filter cost into
        the main clock, running the detector on the union survivors and
        evaluating predicates — so every accumulator ends up exactly as the
        sequential loop would have left it.

        With ``config.sanitize`` set, the scan runs under an activated
        :class:`~repro.analysis.sanitizers.SanitizerSession`: races, numeric
        corruption and merge divergence raise ``AnalysisError`` mid-scan
        (``sanitize_strict=True``, the default) or are collected into the
        returned :class:`~repro.analysis.AnalysisReport` and surfaced as
        Python warnings.  ``sanitize=None`` leaves every hook uninstalled.
        """
        profilers = (
            [CascadeProfiler(cascade, config) for cascade in query_cascades]
            if config.adaptive
            else None
        )
        scan_session = ScanSession(
            self.detector, clock=self.clock, live=False, attach_clocks=False
        )

        # Local import: repro.analysis imports the query AST package.
        from repro.analysis.sanitizers import sanitized_scan

        sanitizer_report: AnalysisReport | None = None
        with scan_session:
            for query, cascade, position in zip(
                queries, query_cascades, range(len(queries))
            ):
                scan_session.add_query(
                    query,
                    cascade,
                    member_set=member_sets[position] if member_sets is not None else None,
                )

            def merge(chunk_id: int, frames: list[Frame], outcome: ChunkOutcome) -> None:
                # The in-order merge body is the session's: absorb the
                # chunk's filter cost, accumulate, detector-union phase.
                scan_session.absorb_outcome(frames, outcome)

            def quarantine(
                chunk_id: int, frames: Sequence[object], error: BaseException
            ) -> None:
                # A chunk exhausted its decode or worker-redispatch budget:
                # record it and advance the merge watermark past it.
                scan_session.quarantine_chunk(frames, error)

            with sanitized_scan(config.sanitize, strict=config.sanitize_strict) as session:
                per_worker, num_chunks = run_parallel_scan(
                    config,
                    stream,
                    union_indices,
                    query_cascades,
                    assignments,
                    member_sets,
                    profilers,
                    chunk_size,
                    merge,
                    quarantine=quarantine,
                )
                if session is not None:
                    session.verify_determinism(
                        stream,
                        partition_chunks(union_indices, chunk_size),
                        query_cascades,
                        assignments,
                        member_sets,
                    )
                    sanitizer_report = session.report()
        if sanitizer_report is not None:
            # Strict sessions raised from inside the scan; anything still
            # here is a non-strict run, so surface findings as warnings.
            sanitizer_report.emit_warnings()
        return (
            [list(state.matched) for state in scan_session.states],
            [list(state.passed) for state in scan_session.states],
            [state.filter_invocations for state in scan_session.states],
            [dict(state.attributed) for state in scan_session.states],
            scan_session.shared_filter_computations,
            scan_session.shared_detector_invocations,
            profilers,
            per_worker,
            num_chunks,
            sanitizer_report,
            current_report(tuple(scan_session.quarantined)),
        )

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------
    def _run_sequential(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade,
        indices: Sequence[int],
    ) -> tuple[list[int], list[int], int]:
        matched: list[int] = []
        passed_indices: list[int] = []
        filter_invocations = 0
        for index in indices:
            frame = stream.frame(index)
            predictions: dict[tuple, FilterPrediction] = {}
            passed = True
            for step in cascade:
                key = step.frame_filter.identity
                if key not in predictions:
                    predictions[key] = step.frame_filter.predict(frame)
                    filter_invocations += 1
                if not step.passes(predictions[key]):
                    passed = False
                    break
            if not passed:
                continue
            passed_indices.append(index)
            detections = self.detector.detect(frame)
            if evaluate_predicates_on_detections(query, detections):
                matched.append(index)
        return matched, passed_indices, filter_invocations

    def _run_batched(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade,
        indices: Sequence[int],
        batch_size: int,
    ) -> tuple[list[int], list[int], int]:
        """Chunked execution: each cascade step narrows the survivor mask.

        A filter shared by several steps is evaluated at most once per frame
        (the per-chunk prediction cache, keyed by the filter's ``identity``
        as in every other execution path), and only ever on frames that
        survived every earlier step — exactly the frames the sequential path
        evaluates it on, so both modes charge identical filter call counts.
        """
        matched: list[int] = []
        passed_indices: list[int] = []
        filter_invocations = 0
        for start in range(0, len(indices), batch_size):
            chunk = list(indices[start : start + batch_size])
            frames = [stream.frame(index) for index in chunk]
            # Positions (into the chunk) still surviving the cascade.
            alive = list(range(len(chunk)))
            cache: dict[tuple, dict[int, FilterPrediction]] = {}
            for step in cascade:
                if not alive:
                    break
                per_filter = cache.setdefault(step.frame_filter.identity, {})
                missing = [pos for pos in alive if pos not in per_filter]
                if missing:
                    batch = step.frame_filter.predict_batch(
                        [frames[pos] for pos in missing]
                    )
                    filter_invocations += len(missing)
                    for pos, prediction in zip(missing, batch):
                        per_filter[pos] = prediction
                alive = [pos for pos in alive if step.passes(per_filter[pos])]
            for pos in alive:
                passed_indices.append(chunk[pos])
                detections = self.detector.detect(frames[pos])
                if evaluate_predicates_on_detections(query, detections):
                    matched.append(chunk[pos])
        return matched, passed_indices, filter_invocations

    # ------------------------------------------------------------------
    # Temporal-coherence execution (see repro.query.temporal)
    # ------------------------------------------------------------------
    def _run_temporal(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade,
        indices: Sequence[int],
        temporal: TemporalConfig,
        render=None,
        profiler: CascadeProfiler | None = None,
    ) -> tuple[list[int], list[int], int, int, TemporalStats]:
        """Temporally-coherent sequential execution of one query.

        Returns ``(matched, passed, filter_invocations,
        detector_invocations, stats)`` where the invocation counters reflect
        the work actually performed — reused and stride-skipped frames show
        up as reused calls on the clock and in ``stats``, not as
        invocations.  ``render`` overrides frame materialisation (the
        parallel composition passes a decode-ahead prefetcher); ``profiler``
        enables adaptive re-planning, fed by every fully charged evaluation
        — the gate itself stays sequential, so revisions apply from the next
        computed frame on.
        """
        filter_invocations = 0
        detector_invocations = 0
        filter_reuses = 0
        detector_reuses = 0
        detector_component = getattr(self.detector, "name", "detector")
        render = render if render is not None else stream.frame

        def evaluate_frame(frame: Frame, charged: bool) -> _TemporalOutcome:
            nonlocal filter_invocations, detector_invocations
            predictions: dict[tuple, FilterPrediction] = {}
            components: list[str] = []
            step_stats = [(0, 0)] * len(cascade.steps)
            order = profiler.order if profiler is not None else range(len(cascade.steps))
            passed = True
            for step_position in order:
                step = cascade.steps[step_position]
                key = step.frame_filter.identity
                if key not in predictions:
                    predictions[key] = step.frame_filter.predict(frame)
                    components.append(step.frame_filter.name)
                    if charged:
                        filter_invocations += 1
                step_passed = step.passes(predictions[key])
                step_stats[step_position] = (1, 1 if step_passed else 0)
                if not step_passed:
                    passed = False
                    break
            matched = False
            if passed:
                detections = self.detector.detect(frame)
                if charged:
                    detector_invocations += 1
                matched = evaluate_predicates_on_detections(query, detections)
            if charged and profiler is not None:
                profiler.observe(step_stats, frame.index)
            return _TemporalOutcome(
                passed=passed, matched=matched, components=tuple(components)
            )

        def verify(frame: Frame) -> _TemporalOutcome:
            with clocks_detached(cascade.filters, self.detector):
                return evaluate_frame(frame, charged=False)

        def reuse_charge(outcome: _TemporalOutcome) -> None:
            nonlocal filter_reuses, detector_reuses
            for component in outcome.components:
                self.clock.reuse(component)
            filter_reuses += len(outcome.components)
            if outcome.passed:
                self.clock.reuse(detector_component)
                detector_reuses += 1

        scan = TemporalScan(
            temporal,
            render=render,
            compute=lambda frame: evaluate_frame(frame, charged=True),
            verify=verify,
            reuse_charge=reuse_charge,
            verdict=lambda outcome: (outcome.passed, outcome.matched),
        )
        outcomes, stats = scan.run(indices)
        matched = [index for index, outcome in zip(indices, outcomes) if outcome.matched]
        passed = [index for index, outcome in zip(indices, outcomes) if outcome.passed]
        return (
            matched,
            passed,
            filter_invocations,
            detector_invocations,
            with_component_reuses(stats, filter_reuses, detector_reuses),
        )

    def _run_many_temporal(
        self,
        queries: Sequence[Query],
        stream: VideoStream,
        query_cascades: Sequence[FilterCascade],
        assignments: Sequence[Sequence[int]],
        member_sets: Sequence[set[int]],
        union_indices: Sequence[int],
        temporal: TemporalConfig,
        render=None,
        profilers: Sequence[CascadeProfiler] | None = None,
    ) -> tuple[
        list[list[int]],
        list[list[int]],
        list[int],
        list[dict[tuple[str, float], int]],
        int,
        int,
        TemporalStats,
    ]:
        """Temporally-coherent shared scan over several queries.

        The change signature is query-independent, so one gate decision
        covers every query at once: a stable frame reuses the keyframe's
        whole shared outcome (all cascade verdicts plus the detector
        verdict).  Reuse and stride inheritance only happen between frames
        covered by the same set of queries — the scan's ``context_key`` —
        so a windowed query's coverage boundary always forces a keyframe.
        Attribution (what each query would have paid standalone) is taken
        from the outcome in effect for the frame, exactly as the
        non-temporal loop attributes per (query, frame, filter).
        """
        num_queries = len(queries)
        shared_filter_computations = 0
        shared_detector_invocations = 0
        filter_reuses = 0
        detector_reuses = 0
        detector_component = getattr(self.detector, "name", "detector")
        render = render if render is not None else stream.frame
        distinct_filters: list[FrameFilter] = []
        for cascade in query_cascades:
            for frame_filter in cascade.filters:
                if all(frame_filter is not existing for existing in distinct_filters):
                    distinct_filters.append(frame_filter)

        coverage_cache: dict[int, tuple[int, ...]] = {}

        def context_key(index: int) -> tuple[int, ...]:
            key = coverage_cache.get(index)
            if key is None:
                key = tuple(
                    position
                    for position in range(num_queries)
                    if index in member_sets[position]
                )
                coverage_cache[index] = key
            return key

        def evaluate_frame(frame: Frame, charged: bool) -> _SharedTemporalOutcome:
            nonlocal shared_filter_computations, shared_detector_invocations
            index = frame.index
            predictions: dict[tuple, FilterPrediction] = {}
            step_outcomes: dict[int, bool] = {}
            computed: list[str] = []
            verdicts: list[list] = [None] * num_queries  # type: ignore[list-item]
            survivors: list[int] = []
            for position, (cascade, step_positions) in enumerate(
                zip(query_cascades, assignments)
            ):
                if index not in member_sets[position]:
                    continue
                alive = True
                counted: set[tuple] = set()
                components: list[tuple[str, float]] = []
                step_stats = [(0, 0)] * len(cascade.steps)
                order = (
                    profilers[position].order
                    if profilers is not None
                    else range(len(cascade.steps))
                )
                for step_position in order:
                    if not alive:
                        break
                    step = cascade.steps[step_position]
                    unique_position = step_positions[step_position]
                    identity = step.frame_filter.identity
                    if identity not in predictions:
                        predictions[identity] = step.frame_filter.predict(frame)
                        computed.append(step.frame_filter.name)
                        if charged:
                            shared_filter_computations += 1
                    if identity not in counted:
                        counted.add(identity)
                        components.append(
                            (step.frame_filter.name, step.frame_filter.latency_ms)
                        )
                    if unique_position not in step_outcomes:
                        step_outcomes[unique_position] = step.passes(
                            predictions[identity]
                        )
                    step_stats[step_position] = (
                        1,
                        1 if step_outcomes[unique_position] else 0,
                    )
                    if not step_outcomes[unique_position]:
                        alive = False
                if charged and profilers is not None:
                    profilers[position].observe(step_stats, index)
                verdicts[position] = [tuple(components), alive, False]
                if alive:
                    survivors.append(position)
            detector_ran = False
            if survivors:
                detections = self.detector.detect(frame)
                detector_ran = True
                if charged:
                    shared_detector_invocations += 1
                for position in survivors:
                    if evaluate_predicates_on_detections(queries[position], detections):
                        verdicts[position][2] = True
            return _SharedTemporalOutcome(
                per_query=tuple(
                    _QueryVerdict(components=entry[0], passed=entry[1], matched=entry[2])
                    if entry is not None
                    else None
                    for entry in verdicts
                ),
                computed_components=tuple(computed),
                detector_ran=detector_ran,
            )

        def verify(frame: Frame) -> _SharedTemporalOutcome:
            with clocks_detached(distinct_filters, self.detector):
                return evaluate_frame(frame, charged=False)

        def reuse_charge(outcome: _SharedTemporalOutcome) -> None:
            nonlocal filter_reuses, detector_reuses
            for component in outcome.computed_components:
                self.clock.reuse(component)
            filter_reuses += len(outcome.computed_components)
            if outcome.detector_ran:
                self.clock.reuse(detector_component)
                detector_reuses += 1

        def verdict(outcome: _SharedTemporalOutcome) -> tuple:
            return tuple(
                (entry.passed, entry.matched) if entry is not None else None
                for entry in outcome.per_query
            )

        scan = TemporalScan(
            temporal,
            render=render,
            compute=lambda frame: evaluate_frame(frame, charged=True),
            verify=verify,
            reuse_charge=reuse_charge,
            verdict=verdict,
            context_key=context_key,
        )
        outcomes, stats = scan.run(union_indices)

        matched: list[list[int]] = [[] for _ in range(num_queries)]
        passed: list[list[int]] = [[] for _ in range(num_queries)]
        filter_invocations = [0] * num_queries
        attributed_calls: list[dict[tuple[str, float], int]] = [
            {} for _ in range(num_queries)
        ]
        for index, outcome in zip(union_indices, outcomes):
            for position, entry in enumerate(outcome.per_query):
                if entry is None:
                    continue
                filter_invocations[position] += len(entry.components)
                for component in entry.components:
                    attributed_calls[position][component] = (
                        attributed_calls[position].get(component, 0) + 1
                    )
                if entry.passed:
                    passed[position].append(index)
                if entry.matched:
                    matched[position].append(index)
        return (
            matched,
            passed,
            filter_invocations,
            attributed_calls,
            shared_filter_computations,
            shared_detector_invocations,
            with_component_reuses(stats, filter_reuses, detector_reuses),
        )

    # ------------------------------------------------------------------
    # Aggregate monitoring queries
    # ------------------------------------------------------------------
    def execute_aggregate(
        self,
        spec: "AggregateQuerySpec",
        stream: VideoStream,
        cascade: FilterCascade | None = None,
        *,
        frame_filter: FrameFilter | None = None,
        sample_size: int = 60,
        repetitions: int = 1,
        seed: int = 0,
        include_partial_windows: bool = False,
        temporal: TemporalConfig | None = None,
        parallel: ParallelConfig | None = None,
    ) -> AggregateExecutionResult:
        """Estimate an aggregate monitoring query through the planner/executor API.

        The control-variate source is the planned ``cascade``'s primary
        filter (the same class-aware filter the cascade would use to skip
        frames in exact execution), or an explicit ``frame_filter`` override.
        Estimation itself is delegated to
        :class:`~repro.aggregates.monitor.AggregateMonitor` seeded with
        ``seed``, so for an un-windowed spec the reports are numerically
        identical to calling ``AggregateMonitor.estimate`` directly with the
        same seed — while the filter side of every sample batch runs as one
        vectorized ``predict_batch`` call.

        For a windowed spec (``spec.window`` set, e.g. parsed from a query's
        ``WINDOW HOPPING`` clause) one estimate per window instance is
        reported, each sampling ``sample_size`` frames uniformly within its
        window.  ``include_partial_windows`` defaults to ``False`` here —
        the paper's aggregate experiments use fixed-size windows so every
        estimate averages over the same population size — unlike
        :meth:`execute`, whose default covers the whole stream.

        ``temporal`` applies delta gating to the sample evaluation: a
        sampled frame whose change signature barely differs from the
        previous sample reuses that sample's exact value and control values
        instead of re-running the detector and filter (sample indices are
        sorted, so nearby samples of a stable stream are nearly identical).
        Exact mode verifies every reuse, keeping estimates bit-identical to
        a non-temporal run.

        ``parallel`` contributes decode-ahead rendering of each estimate's
        sampled frames (sample evaluation itself is already one vectorized
        batch, so the estimates are unchanged — only the wall clock drops
        when rendering dominates).
        """
        if repetitions < 1:
            raise ValueError(f"repetitions must be positive: {repetitions}")
        cascade = cascade or FilterCascade()
        source = frame_filter if frame_filter is not None else cascade.primary_filter
        if source is None:
            raise ValueError(
                "execute_aggregate needs a cascade with at least one filter "
                "or an explicit frame_filter to use as the control-variate source"
            )
        # Deferred import: repro.aggregates.monitor imports repro.query at
        # module load, so a top-level import here would be circular.
        from repro.aggregates.monitor import AggregateMonitor

        monitor = AggregateMonitor(
            detector=self.detector, frame_filter=source, clock=self.clock, seed=seed
        )
        windows: tuple[WindowAggregateEstimate, ...] | None = None
        reports: tuple["MonitoringReport", ...] = ()
        if spec.window is not None:
            hopping = HoppingWindow(size=spec.window.size, advance=spec.window.advance)
            windows = tuple(
                WindowAggregateEstimate(
                    bounds=bounds,
                    reports=tuple(
                        monitor.estimate(
                            spec,
                            stream,
                            sample_size,
                            window=bounds,
                            temporal=temporal,
                            parallel=parallel,
                        )
                        for _ in range(repetitions)
                    ),
                )
                for bounds in hopping.windows_over(
                    len(stream), include_partial=include_partial_windows
                )
            )
            if not windows:
                hint = (
                    "shrink the window or pass include_partial_windows=True"
                    if len(stream) > 0
                    else "the stream is empty"
                )
                raise ValueError(
                    f"window of size {spec.window.size} produces no instances over "
                    f"a {len(stream)}-frame stream; {hint}"
                )
        else:
            reports = tuple(
                monitor.estimate(
                    spec, stream, sample_size, temporal=temporal, parallel=parallel
                )
                for _ in range(repetitions)
            )
        return AggregateExecutionResult(
            query_name=spec.name,
            cascade_description=cascade.describe(),
            filter_name=source.name,
            reports=reports,
            windows=windows,
        )


def _window_bounds_for(
    query: Query, stream: VideoStream, include_partial_windows: bool
) -> list[WindowBounds] | None:
    """The query's hopping-window instances over ``stream`` (``None`` if un-windowed).

    An empty stream is an empty execution (as in the un-windowed path); a
    non-empty stream too short for even one window is a configuration error.
    """
    if query.window is None:
        return None
    hopping = HoppingWindow(size=query.window.size, advance=query.window.advance)
    bounds = list(hopping.windows_over(len(stream), include_partial=include_partial_windows))
    if not bounds and len(stream) > 0:
        raise ValueError(
            f"window of size {query.window.size} produces no instances over "
            f"a {len(stream)}-frame stream; shrink the window or pass "
            "include_partial_windows=True"
        )
    return bounds


def _unique_query_labels(queries: Sequence[Query]) -> list[str]:
    """Per-query labels for cost attribution, disambiguating duplicate names."""
    counts: dict[str, int] = {}
    for query in queries:
        counts[query.name] = counts.get(query.name, 0) + 1
    seen: dict[str, int] = {}
    labels: list[str] = []
    for query in queries:
        if counts[query.name] == 1:
            labels.append(query.name)
        else:
            seen[query.name] = seen.get(query.name, 0) + 1
            labels.append(f"{query.name}#{seen[query.name]}")
    return labels


def _restrict_to_coverage(
    indices: Sequence[int], window_bounds: Sequence[WindowBounds]
) -> list[int]:
    """Keep only the indices covered by at least one window.

    Hopping windows arrive sorted by start, so their union collapses to a
    short merged-interval list; membership is then one vectorized
    ``searchsorted`` over the candidate indices rather than materialising a
    per-frame set (overlapping windows would insert every frame
    ``size/advance`` times).
    """
    if not window_bounds:
        return []
    merged: list[list[int]] = []
    for bounds in window_bounds:
        if merged and bounds.start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], bounds.stop)
        else:
            merged.append([bounds.start, bounds.stop])
    starts = np.asarray([interval[0] for interval in merged], dtype=np.int64)
    stops = np.asarray([interval[1] for interval in merged], dtype=np.int64)
    candidates = np.asarray(list(indices), dtype=np.int64)
    positions = np.searchsorted(starts, candidates, side="right") - 1
    covered = (positions >= 0) & (candidates < stops[np.clip(positions, 0, None)])
    return [int(index) for index in candidates[covered]]


def _partition_into_windows(
    window_bounds: Sequence[WindowBounds],
    indices: Sequence[int],
    passed: Sequence[int],
    matched: Sequence[int],
) -> tuple[WindowResult, ...]:
    """Split one shared scan into per-window results.

    Every frame was filtered/verified exactly once; a frame covered by
    several overlapping windows simply appears in each of their results.
    Counting uses ``searchsorted`` on the sorted index arrays, so the split
    costs O((W + N) log N) rather than W x N membership tests.
    """
    scanned_sorted = np.sort(np.asarray(list(indices), dtype=np.int64))
    passed_sorted = np.sort(np.asarray(list(passed), dtype=np.int64))
    matched_sorted = np.sort(np.asarray(list(matched), dtype=np.int64))

    def _count_in(values: np.ndarray, bounds: WindowBounds) -> int:
        return int(
            np.searchsorted(values, bounds.stop, side="left")
            - np.searchsorted(values, bounds.start, side="left")
        )

    results = []
    for bounds in window_bounds:
        lo = int(np.searchsorted(matched_sorted, bounds.start, side="left"))
        hi = int(np.searchsorted(matched_sorted, bounds.stop, side="left"))
        results.append(
            WindowResult(
                bounds=bounds,
                matched_frames=tuple(int(index) for index in matched_sorted[lo:hi]),
                stats=WindowStats(
                    frames_scanned=_count_in(scanned_sorted, bounds),
                    frames_passed_filters=_count_in(passed_sorted, bounds),
                ),
            )
        )
    return tuple(results)


def brute_force_execute(
    query: Query,
    stream: VideoStream,
    detector: Detector,
    frame_indices: Sequence[int] | None = None,
    clock: SimulatedClock | None = None,
) -> QueryExecutionResult:
    """Annotate every frame with the detector and evaluate the query exactly.

    This is the baseline the paper compares against ("we also evaluate each
    query in a brute force manner annotating all frames with Mask R-CNN").
    """
    executor = StreamingQueryExecutor(detector, clock=clock)
    return executor.execute(query, stream, cascade=FilterCascade(), frame_indices=frame_indices)
