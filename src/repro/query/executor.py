"""Streaming query execution with filter cascades.

For every frame of the stream the executor runs the (cheap) filter cascade;
only frames that survive every cascade step are handed to the expensive
reference detector, whose detections are then checked exactly against the
query predicates.  Frames rejected by the cascade are skipped entirely — this
is the source of the orders-of-magnitude speedups reported in Table III.

Two execution modes share identical semantics:

* *sequential* (``batch_size=None``) — one frame at a time, the original
  per-frame loop;
* *batched* (``batch_size=n``) — the stream is processed in chunks of ``n``
  frames; each cascade step runs as one vectorized
  :meth:`~repro.filters.base.FrameFilter.predict_batch` call over the chunk's
  surviving frames, the survivor set narrows step by step, and the detector
  only sees the frames that survive the whole cascade.  Filter latencies are
  charged with the clock's ``calls=n`` batched-charge API, so the simulated
  cost accounting matches the sequential path (call counts exactly,
  milliseconds to float-rounding).  Batched execution returns the same
  matched frames and the same work counters as sequential execution and is
  several times faster in wall-clock on the linear filters (see
  ``benchmarks/bench_batch_executor.py``).

Both modes honor the query's ``WINDOW HOPPING`` clause: the stream is
segmented into hopping-window instances, every frame covered by at least one
window is filtered/verified exactly once (overlapping windows share the
per-frame work), and the result carries one :class:`WindowResult` per window
instance alongside the flat ``matched_frames``.  Aggregate monitoring queries
go through :meth:`StreamingQueryExecutor.execute_aggregate`, which uses the
planned cascade's primary filter as the control-variate source.

Costs are accounted twice:

* *simulated* cost, using the paper's measured per-component latencies
  (filter branches ~1.5–1.9 ms, Mask R-CNN ~200 ms), which is what the
  execution-time tables report;
* *wall-clock* cost of this reproduction's own code, reported alongside for
  transparency (our numpy filters and simulated detector have very different
  absolute costs than GPU inference).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

# Imported from the submodule (not the repro.aggregates package) so that the
# aggregates -> query.ast -> query.executor import chain finds the window
# types already initialised.
from repro.aggregates.windows import HoppingWindow, WindowBounds
from repro.cost import CostBreakdown, SimulatedClock
from repro.detection.base import Detector
from repro.filters.base import FilterPrediction, FrameFilter
from repro.query.ast import Query
from repro.query.evaluation import evaluate_predicates_on_detections
from repro.query.planner import FilterCascade
from repro.video.stream import VideoStream

if TYPE_CHECKING:  # runtime import would be circular; see execute_aggregate
    from repro.aggregates.monitor import AggregateQuerySpec, MonitoringReport


@dataclass(frozen=True)
class ExecutionStats:
    """Work and cost accounting for one query execution."""

    frames_scanned: int
    frames_passed_filters: int
    detector_invocations: int
    filter_invocations: int
    simulated_cost: CostBreakdown
    wall_clock_seconds: float
    #: chunk size of the batched execution mode; ``None`` = sequential
    batch_size: int | None = None

    @property
    def simulated_seconds(self) -> float:
        return self.simulated_cost.total_seconds

    @property
    def filter_selectivity(self) -> float:
        """Fraction of frames that survived the cascade (lower = more selective).

        An execution that scanned no frames has no survival fraction at all;
        returning ``0.0`` would read as "perfectly selective", so the empty
        case returns ``nan`` (check with :func:`math.isnan`).
        """
        if self.frames_scanned == 0:
            return float("nan")
        return self.frames_passed_filters / self.frames_scanned


@dataclass(frozen=True)
class WindowStats:
    """Per-window frame counts of a windowed execution.

    These are cardinalities of the window's frame sets, not work counters:
    overlapping windows share one filter evaluation and one verification per
    frame, so attributing invocations per window would double-charge shared
    work.  The execution-wide totals live in :class:`ExecutionStats`.
    """

    frames_scanned: int
    frames_passed_filters: int


@dataclass(frozen=True)
class WindowResult:
    """Per-window match set of a windowed query execution."""

    bounds: WindowBounds
    matched_frames: tuple[int, ...]
    stats: WindowStats

    @property
    def num_matches(self) -> int:
        return len(self.matched_frames)

    @property
    def match_fraction(self) -> float:
        """Fraction of the window's scanned frames that matched (``nan`` if none scanned)."""
        if self.stats.frames_scanned == 0:
            return float("nan")
        return self.num_matches / self.stats.frames_scanned


@dataclass(frozen=True)
class QueryExecutionResult:
    """The outcome of executing a query over a stream.

    For windowed queries ``windows`` holds one :class:`WindowResult` per
    hopping-window instance (in stream order); ``matched_frames`` stays the
    flat match set over all frames covered by any window, so the union of the
    per-window match sets always equals ``matched_frames``.  Un-windowed
    executions have ``windows=None``.
    """

    query_name: str
    cascade_description: str
    matched_frames: tuple[int, ...]
    stats: ExecutionStats
    windows: tuple[WindowResult, ...] | None = None

    @property
    def num_matches(self) -> int:
        return len(self.matched_frames)

    @property
    def num_windows(self) -> int:
        return len(self.windows) if self.windows is not None else 0

    # ------------------------------------------------------------------
    # Accuracy against a reference (brute-force) result
    # ------------------------------------------------------------------
    def accuracy_against(self, reference_frames: Iterable[int]) -> dict[str, float]:
        """Precision / recall / F1 / accuracy relative to a reference answer set.

        The paper reports, for count queries, the fraction of true answer
        frames that the filtered execution identifies (here ``recall``; the
        verification step makes false positives impossible when the same
        detector defines the truth), and the F1 measure for spatial queries.
        """
        truth = set(reference_frames)
        found = set(self.matched_frames)
        true_positives = len(truth & found)
        false_positives = len(found - truth)
        false_negatives = len(truth - found)
        precision = (
            true_positives / (true_positives + false_positives)
            if (true_positives + false_positives)
            else 1.0
        )
        recall = (
            true_positives / (true_positives + false_negatives)
            if (true_positives + false_negatives)
            else 1.0
        )
        f1 = (
            2 * precision * recall / (precision + recall)
            if (precision + recall) > 0
            else 0.0
        )
        return {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "accuracy": recall,
            "true_positives": float(true_positives),
            "false_positives": float(false_positives),
            "false_negatives": float(false_negatives),
        }

    def speedup_against(self, reference: "QueryExecutionResult") -> float:
        """Simulated-time speedup relative to another execution (e.g. brute force).

        Edge cases are defined so empty comparisons read sensibly: two
        zero-cost executions are equally fast (``1.0``); a zero-cost
        execution compared against a real one is infinitely faster
        (``inf``).
        """
        own = self.stats.simulated_seconds
        other = reference.stats.simulated_seconds
        if own <= 0:
            return 1.0 if other <= 0 else float("inf")
        return other / own


@dataclass(frozen=True)
class WindowAggregateEstimate:
    """Aggregate estimates for one window instance of a windowed spec."""

    bounds: WindowBounds
    reports: tuple["MonitoringReport", ...]

    @property
    def cv_mean(self) -> float:
        """Mean of the control-variate estimates across the repetitions."""
        return float(np.mean([report.control_variate.mean for report in self.reports]))


@dataclass(frozen=True)
class AggregateExecutionResult:
    """The outcome of executing an aggregate monitoring query.

    Un-windowed specs produce ``reports`` (one
    :class:`~repro.aggregates.monitor.MonitoringReport` per repetition) and
    ``windows=None``; windowed specs produce one
    :class:`WindowAggregateEstimate` per hopping-window instance and an empty
    ``reports``.
    """

    query_name: str
    cascade_description: str
    filter_name: str
    reports: tuple["MonitoringReport", ...]
    windows: tuple[WindowAggregateEstimate, ...] | None = None

    @property
    def all_reports(self) -> tuple["MonitoringReport", ...]:
        """Every report produced, whole-stream or per-window."""
        if self.windows is None:
            return self.reports
        return tuple(report for window in self.windows for report in window.reports)


class StreamingQueryExecutor:
    """Executes queries over a stream with an optional filter cascade."""

    def __init__(self, detector: Detector, clock: SimulatedClock | None = None) -> None:
        self.detector = detector
        self.clock = clock or SimulatedClock()

    def execute(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade | None = None,
        frame_indices: Sequence[int] | None = None,
        batch_size: int | None = None,
        include_partial_windows: bool = True,
    ) -> QueryExecutionResult:
        """Run ``query`` over ``stream`` (optionally restricted to ``frame_indices``).

        ``batch_size=None`` selects the sequential per-frame path;
        ``batch_size=n`` processes the stream in chunks of ``n`` frames with
        vectorized filter batches.  Both modes produce identical matched
        frames and work counters.

        When the query carries a ``WINDOW HOPPING`` clause the scan is
        restricted to the frames covered by at least one window instance, each
        frame is filtered/verified once no matter how many overlapping windows
        contain it, and the result's ``windows`` field reports the per-window
        match sets.  ``include_partial_windows`` controls whether a trailing
        window shorter than the declared size is materialised; with the
        default ``True`` the windows cover every stream frame whenever
        ``advance <= size`` (with ``advance > size`` the inter-window gaps
        are never scanned regardless).  Pass ``False`` for the paper's
        fixed-size-window semantics, which silently drop the remainder — see
        :meth:`~repro.aggregates.windows.HoppingWindow.windows_over`.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        indices = list(frame_indices) if frame_indices is not None else list(range(len(stream)))
        window_bounds: list[WindowBounds] | None = None
        if query.window is not None:
            hopping = HoppingWindow(size=query.window.size, advance=query.window.advance)
            window_bounds = list(
                hopping.windows_over(len(stream), include_partial=include_partial_windows)
            )
            # An empty stream is an empty execution (as in the un-windowed
            # path); a non-empty stream too short for even one window is a
            # configuration error.
            if not window_bounds and len(stream) > 0:
                raise ValueError(
                    f"window of size {query.window.size} produces no instances over "
                    f"a {len(stream)}-frame stream; shrink the window or pass "
                    "include_partial_windows=True"
                )
            indices = _restrict_to_coverage(indices, window_bounds)
        self.clock.reset()
        cascade = cascade or FilterCascade()
        # The cascade's filters charge their latency to our clock for the
        # duration of this execution.
        previous_clocks = []
        for frame_filter in cascade.filters:
            previous_clocks.append((frame_filter, frame_filter.clock))
            frame_filter.clock = self.clock
        previous_detector_clock = getattr(self.detector, "clock", None)
        if hasattr(self.detector, "clock"):
            self.detector.clock = self.clock

        started = time.perf_counter()
        try:
            if batch_size is None:
                counters = self._run_sequential(query, stream, cascade, indices)
            else:
                counters = self._run_batched(query, stream, cascade, indices, batch_size)
        finally:
            for frame_filter, previous in previous_clocks:
                frame_filter.clock = previous
            if hasattr(self.detector, "clock"):
                self.detector.clock = previous_detector_clock
        elapsed = time.perf_counter() - started
        matched, passed, filter_invocations = counters

        stats = ExecutionStats(
            frames_scanned=len(indices),
            frames_passed_filters=len(passed),
            detector_invocations=len(passed),
            filter_invocations=filter_invocations,
            simulated_cost=self.clock.breakdown,
            wall_clock_seconds=elapsed,
            batch_size=batch_size,
        )
        windows = (
            _partition_into_windows(window_bounds, indices, passed, matched)
            if window_bounds is not None
            else None
        )
        return QueryExecutionResult(
            query_name=query.name,
            cascade_description=cascade.describe(),
            matched_frames=tuple(matched),
            stats=stats,
            windows=windows,
        )

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------
    def _run_sequential(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade,
        indices: Sequence[int],
    ) -> tuple[list[int], list[int], int]:
        matched: list[int] = []
        passed_indices: list[int] = []
        filter_invocations = 0
        for index in indices:
            frame = stream.frame(index)
            predictions: dict[int, FilterPrediction] = {}
            passed = True
            for step in cascade:
                key = id(step.frame_filter)
                if key not in predictions:
                    predictions[key] = step.frame_filter.predict(frame)
                    filter_invocations += 1
                if not step.passes(predictions[key]):
                    passed = False
                    break
            if not passed:
                continue
            passed_indices.append(index)
            detections = self.detector.detect(frame)
            if evaluate_predicates_on_detections(query, detections):
                matched.append(index)
        return matched, passed_indices, filter_invocations

    def _run_batched(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade,
        indices: Sequence[int],
        batch_size: int,
    ) -> tuple[list[int], list[int], int]:
        """Chunked execution: each cascade step narrows the survivor mask.

        A filter shared by several steps is evaluated at most once per frame
        (the per-chunk prediction cache), and only ever on frames that
        survived every earlier step — exactly the frames the sequential path
        evaluates it on, so both modes charge identical filter call counts.
        """
        matched: list[int] = []
        passed_indices: list[int] = []
        filter_invocations = 0
        for start in range(0, len(indices), batch_size):
            chunk = list(indices[start : start + batch_size])
            frames = [stream.frame(index) for index in chunk]
            # Positions (into the chunk) still surviving the cascade.
            alive = list(range(len(chunk)))
            cache: dict[int, dict[int, FilterPrediction]] = {}
            for step in cascade:
                if not alive:
                    break
                per_filter = cache.setdefault(id(step.frame_filter), {})
                missing = [pos for pos in alive if pos not in per_filter]
                if missing:
                    batch = step.frame_filter.predict_batch(
                        [frames[pos] for pos in missing]
                    )
                    filter_invocations += len(missing)
                    for pos, prediction in zip(missing, batch):
                        per_filter[pos] = prediction
                alive = [pos for pos in alive if step.passes(per_filter[pos])]
            for pos in alive:
                passed_indices.append(chunk[pos])
                detections = self.detector.detect(frames[pos])
                if evaluate_predicates_on_detections(query, detections):
                    matched.append(chunk[pos])
        return matched, passed_indices, filter_invocations

    # ------------------------------------------------------------------
    # Aggregate monitoring queries
    # ------------------------------------------------------------------
    def execute_aggregate(
        self,
        spec: "AggregateQuerySpec",
        stream: VideoStream,
        cascade: FilterCascade | None = None,
        *,
        frame_filter: FrameFilter | None = None,
        sample_size: int = 60,
        repetitions: int = 1,
        seed: int = 0,
        include_partial_windows: bool = False,
    ) -> AggregateExecutionResult:
        """Estimate an aggregate monitoring query through the planner/executor API.

        The control-variate source is the planned ``cascade``'s primary
        filter (the same class-aware filter the cascade would use to skip
        frames in exact execution), or an explicit ``frame_filter`` override.
        Estimation itself is delegated to
        :class:`~repro.aggregates.monitor.AggregateMonitor` seeded with
        ``seed``, so for an un-windowed spec the reports are numerically
        identical to calling ``AggregateMonitor.estimate`` directly with the
        same seed — while the filter side of every sample batch runs as one
        vectorized ``predict_batch`` call.

        For a windowed spec (``spec.window`` set, e.g. parsed from a query's
        ``WINDOW HOPPING`` clause) one estimate per window instance is
        reported, each sampling ``sample_size`` frames uniformly within its
        window.  ``include_partial_windows`` defaults to ``False`` here —
        the paper's aggregate experiments use fixed-size windows so every
        estimate averages over the same population size — unlike
        :meth:`execute`, whose default covers the whole stream.
        """
        if repetitions < 1:
            raise ValueError(f"repetitions must be positive: {repetitions}")
        cascade = cascade or FilterCascade()
        source = frame_filter if frame_filter is not None else cascade.primary_filter
        if source is None:
            raise ValueError(
                "execute_aggregate needs a cascade with at least one filter "
                "or an explicit frame_filter to use as the control-variate source"
            )
        # Deferred import: repro.aggregates.monitor imports repro.query at
        # module load, so a top-level import here would be circular.
        from repro.aggregates.monitor import AggregateMonitor

        monitor = AggregateMonitor(
            detector=self.detector, frame_filter=source, clock=self.clock, seed=seed
        )
        windows: tuple[WindowAggregateEstimate, ...] | None = None
        reports: tuple["MonitoringReport", ...] = ()
        if spec.window is not None:
            hopping = HoppingWindow(size=spec.window.size, advance=spec.window.advance)
            windows = tuple(
                WindowAggregateEstimate(
                    bounds=bounds,
                    reports=tuple(
                        monitor.estimate(spec, stream, sample_size, window=bounds)
                        for _ in range(repetitions)
                    ),
                )
                for bounds in hopping.windows_over(
                    len(stream), include_partial=include_partial_windows
                )
            )
            if not windows:
                hint = (
                    "shrink the window or pass include_partial_windows=True"
                    if len(stream) > 0
                    else "the stream is empty"
                )
                raise ValueError(
                    f"window of size {spec.window.size} produces no instances over "
                    f"a {len(stream)}-frame stream; {hint}"
                )
        else:
            reports = tuple(
                monitor.estimate(spec, stream, sample_size) for _ in range(repetitions)
            )
        return AggregateExecutionResult(
            query_name=spec.name,
            cascade_description=cascade.describe(),
            filter_name=source.name,
            reports=reports,
            windows=windows,
        )


def _restrict_to_coverage(
    indices: Sequence[int], window_bounds: Sequence[WindowBounds]
) -> list[int]:
    """Keep only the indices covered by at least one window.

    Hopping windows arrive sorted by start, so their union collapses to a
    short merged-interval list; membership is then one vectorized
    ``searchsorted`` over the candidate indices rather than materialising a
    per-frame set (overlapping windows would insert every frame
    ``size/advance`` times).
    """
    if not window_bounds:
        return []
    merged: list[list[int]] = []
    for bounds in window_bounds:
        if merged and bounds.start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], bounds.stop)
        else:
            merged.append([bounds.start, bounds.stop])
    starts = np.asarray([interval[0] for interval in merged], dtype=np.int64)
    stops = np.asarray([interval[1] for interval in merged], dtype=np.int64)
    candidates = np.asarray(list(indices), dtype=np.int64)
    positions = np.searchsorted(starts, candidates, side="right") - 1
    covered = (positions >= 0) & (candidates < stops[np.clip(positions, 0, None)])
    return [int(index) for index in candidates[covered]]


def _partition_into_windows(
    window_bounds: Sequence[WindowBounds],
    indices: Sequence[int],
    passed: Sequence[int],
    matched: Sequence[int],
) -> tuple[WindowResult, ...]:
    """Split one shared scan into per-window results.

    Every frame was filtered/verified exactly once; a frame covered by
    several overlapping windows simply appears in each of their results.
    Counting uses ``searchsorted`` on the sorted index arrays, so the split
    costs O((W + N) log N) rather than W x N membership tests.
    """
    scanned_sorted = np.sort(np.asarray(list(indices), dtype=np.int64))
    passed_sorted = np.sort(np.asarray(list(passed), dtype=np.int64))
    matched_sorted = np.sort(np.asarray(list(matched), dtype=np.int64))

    def _count_in(values: np.ndarray, bounds: WindowBounds) -> int:
        return int(
            np.searchsorted(values, bounds.stop, side="left")
            - np.searchsorted(values, bounds.start, side="left")
        )

    results = []
    for bounds in window_bounds:
        lo = int(np.searchsorted(matched_sorted, bounds.start, side="left"))
        hi = int(np.searchsorted(matched_sorted, bounds.stop, side="left"))
        results.append(
            WindowResult(
                bounds=bounds,
                matched_frames=tuple(int(index) for index in matched_sorted[lo:hi]),
                stats=WindowStats(
                    frames_scanned=_count_in(scanned_sorted, bounds),
                    frames_passed_filters=_count_in(passed_sorted, bounds),
                ),
            )
        )
    return tuple(results)


def brute_force_execute(
    query: Query,
    stream: VideoStream,
    detector: Detector,
    frame_indices: Sequence[int] | None = None,
    clock: SimulatedClock | None = None,
) -> QueryExecutionResult:
    """Annotate every frame with the detector and evaluate the query exactly.

    This is the baseline the paper compares against ("we also evaluate each
    query in a brute force manner annotating all frames with Mask R-CNN").
    """
    executor = StreamingQueryExecutor(detector, clock=clock)
    return executor.execute(query, stream, cascade=FilterCascade(), frame_indices=frame_indices)
