"""Streaming query execution with filter cascades.

For every frame of the stream the executor runs the (cheap) filter cascade;
only frames that survive every cascade step are handed to the expensive
reference detector, whose detections are then checked exactly against the
query predicates.  Frames rejected by the cascade are skipped entirely — this
is the source of the orders-of-magnitude speedups reported in Table III.

Two execution modes share identical semantics:

* *sequential* (``batch_size=None``) — one frame at a time, the original
  per-frame loop;
* *batched* (``batch_size=n``) — the stream is processed in chunks of ``n``
  frames; each cascade step runs as one vectorized
  :meth:`~repro.filters.base.FrameFilter.predict_batch` call over the chunk's
  surviving frames, the survivor set narrows step by step, and the detector
  only sees the frames that survive the whole cascade.  Filter latencies are
  charged with the clock's ``calls=n`` batched-charge API, so the simulated
  cost accounting matches the sequential path (call counts exactly,
  milliseconds to float-rounding).  Batched execution returns the same
  matched frames and the same work counters as sequential execution and is
  several times faster in wall-clock on the linear filters (see
  ``benchmarks/bench_batch_executor.py``).

Costs are accounted twice:

* *simulated* cost, using the paper's measured per-component latencies
  (filter branches ~1.5–1.9 ms, Mask R-CNN ~200 ms), which is what the
  execution-time tables report;
* *wall-clock* cost of this reproduction's own code, reported alongside for
  transparency (our numpy filters and simulated detector have very different
  absolute costs than GPU inference).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cost import CostBreakdown, SimulatedClock
from repro.detection.base import Detector
from repro.filters.base import FilterPrediction
from repro.query.ast import Query
from repro.query.evaluation import evaluate_predicates_on_detections
from repro.query.planner import FilterCascade
from repro.video.stream import VideoStream


@dataclass(frozen=True)
class ExecutionStats:
    """Work and cost accounting for one query execution."""

    frames_scanned: int
    frames_passed_filters: int
    detector_invocations: int
    filter_invocations: int
    simulated_cost: CostBreakdown
    wall_clock_seconds: float
    #: chunk size of the batched execution mode; ``None`` = sequential
    batch_size: int | None = None

    @property
    def simulated_seconds(self) -> float:
        return self.simulated_cost.total_seconds

    @property
    def filter_selectivity(self) -> float:
        """Fraction of frames that survived the cascade (lower = more selective).

        An execution that scanned no frames has no survival fraction at all;
        returning ``0.0`` would read as "perfectly selective", so the empty
        case returns ``nan`` (check with :func:`math.isnan`).
        """
        if self.frames_scanned == 0:
            return float("nan")
        return self.frames_passed_filters / self.frames_scanned


@dataclass(frozen=True)
class QueryExecutionResult:
    """The outcome of executing a query over a stream."""

    query_name: str
    cascade_description: str
    matched_frames: tuple[int, ...]
    stats: ExecutionStats

    @property
    def num_matches(self) -> int:
        return len(self.matched_frames)

    # ------------------------------------------------------------------
    # Accuracy against a reference (brute-force) result
    # ------------------------------------------------------------------
    def accuracy_against(self, reference_frames: Iterable[int]) -> dict[str, float]:
        """Precision / recall / F1 / accuracy relative to a reference answer set.

        The paper reports, for count queries, the fraction of true answer
        frames that the filtered execution identifies (here ``recall``; the
        verification step makes false positives impossible when the same
        detector defines the truth), and the F1 measure for spatial queries.
        """
        truth = set(reference_frames)
        found = set(self.matched_frames)
        true_positives = len(truth & found)
        false_positives = len(found - truth)
        false_negatives = len(truth - found)
        precision = (
            true_positives / (true_positives + false_positives)
            if (true_positives + false_positives)
            else 1.0
        )
        recall = (
            true_positives / (true_positives + false_negatives)
            if (true_positives + false_negatives)
            else 1.0
        )
        f1 = (
            2 * precision * recall / (precision + recall)
            if (precision + recall) > 0
            else 0.0
        )
        return {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "accuracy": recall,
            "true_positives": float(true_positives),
            "false_positives": float(false_positives),
            "false_negatives": float(false_negatives),
        }

    def speedup_against(self, reference: "QueryExecutionResult") -> float:
        """Simulated-time speedup relative to another execution (e.g. brute force).

        Edge cases are defined so empty comparisons read sensibly: two
        zero-cost executions are equally fast (``1.0``); a zero-cost
        execution compared against a real one is infinitely faster
        (``inf``).
        """
        own = self.stats.simulated_seconds
        other = reference.stats.simulated_seconds
        if own <= 0:
            return 1.0 if other <= 0 else float("inf")
        return other / own


class StreamingQueryExecutor:
    """Executes queries over a stream with an optional filter cascade."""

    def __init__(self, detector: Detector, clock: SimulatedClock | None = None) -> None:
        self.detector = detector
        self.clock = clock or SimulatedClock()

    def execute(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade | None = None,
        frame_indices: Sequence[int] | None = None,
        batch_size: int | None = None,
    ) -> QueryExecutionResult:
        """Run ``query`` over ``stream`` (optionally restricted to ``frame_indices``).

        ``batch_size=None`` selects the sequential per-frame path;
        ``batch_size=n`` processes the stream in chunks of ``n`` frames with
        vectorized filter batches.  Both modes produce identical matched
        frames and work counters.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        indices = list(frame_indices) if frame_indices is not None else list(range(len(stream)))
        self.clock.reset()
        cascade = cascade or FilterCascade()
        # The cascade's filters charge their latency to our clock for the
        # duration of this execution.
        previous_clocks = []
        for frame_filter in cascade.filters:
            previous_clocks.append((frame_filter, frame_filter.clock))
            frame_filter.clock = self.clock
        previous_detector_clock = getattr(self.detector, "clock", None)
        if hasattr(self.detector, "clock"):
            self.detector.clock = self.clock

        started = time.perf_counter()
        try:
            if batch_size is None:
                counters = self._run_sequential(query, stream, cascade, indices)
            else:
                counters = self._run_batched(query, stream, cascade, indices, batch_size)
        finally:
            for frame_filter, previous in previous_clocks:
                frame_filter.clock = previous
            if hasattr(self.detector, "clock"):
                self.detector.clock = previous_detector_clock
        elapsed = time.perf_counter() - started
        matched, frames_passed, detector_invocations, filter_invocations = counters

        stats = ExecutionStats(
            frames_scanned=len(indices),
            frames_passed_filters=frames_passed,
            detector_invocations=detector_invocations,
            filter_invocations=filter_invocations,
            simulated_cost=self.clock.breakdown,
            wall_clock_seconds=elapsed,
            batch_size=batch_size,
        )
        return QueryExecutionResult(
            query_name=query.name,
            cascade_description=cascade.describe(),
            matched_frames=tuple(matched),
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------
    def _run_sequential(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade,
        indices: Sequence[int],
    ) -> tuple[list[int], int, int, int]:
        matched: list[int] = []
        frames_passed = 0
        detector_invocations = 0
        filter_invocations = 0
        for index in indices:
            frame = stream.frame(index)
            predictions: dict[int, FilterPrediction] = {}
            passed = True
            for step in cascade:
                key = id(step.frame_filter)
                if key not in predictions:
                    predictions[key] = step.frame_filter.predict(frame)
                    filter_invocations += 1
                if not step.passes(predictions[key]):
                    passed = False
                    break
            if not passed:
                continue
            frames_passed += 1
            detections = self.detector.detect(frame)
            detector_invocations += 1
            if evaluate_predicates_on_detections(query, detections):
                matched.append(index)
        return matched, frames_passed, detector_invocations, filter_invocations

    def _run_batched(
        self,
        query: Query,
        stream: VideoStream,
        cascade: FilterCascade,
        indices: Sequence[int],
        batch_size: int,
    ) -> tuple[list[int], int, int, int]:
        """Chunked execution: each cascade step narrows the survivor mask.

        A filter shared by several steps is evaluated at most once per frame
        (the per-chunk prediction cache), and only ever on frames that
        survived every earlier step — exactly the frames the sequential path
        evaluates it on, so both modes charge identical filter call counts.
        """
        matched: list[int] = []
        frames_passed = 0
        detector_invocations = 0
        filter_invocations = 0
        for start in range(0, len(indices), batch_size):
            chunk = list(indices[start : start + batch_size])
            frames = [stream.frame(index) for index in chunk]
            # Positions (into the chunk) still surviving the cascade.
            alive = list(range(len(chunk)))
            cache: dict[int, dict[int, FilterPrediction]] = {}
            for step in cascade:
                if not alive:
                    break
                per_filter = cache.setdefault(id(step.frame_filter), {})
                missing = [pos for pos in alive if pos not in per_filter]
                if missing:
                    batch = step.frame_filter.predict_batch(
                        [frames[pos] for pos in missing]
                    )
                    filter_invocations += len(missing)
                    for pos, prediction in zip(missing, batch):
                        per_filter[pos] = prediction
                alive = [pos for pos in alive if step.passes(per_filter[pos])]
            for pos in alive:
                frames_passed += 1
                detections = self.detector.detect(frames[pos])
                detector_invocations += 1
                if evaluate_predicates_on_detections(query, detections):
                    matched.append(chunk[pos])
        return matched, frames_passed, detector_invocations, filter_invocations


def brute_force_execute(
    query: Query,
    stream: VideoStream,
    detector: Detector,
    frame_indices: Sequence[int] | None = None,
    clock: SimulatedClock | None = None,
) -> QueryExecutionResult:
    """Annotate every frame with the detector and evaluate the query exactly.

    This is the baseline the paper compares against ("we also evaluate each
    query in a brute force manner annotating all frames with Mask R-CNN").
    """
    executor = StreamingQueryExecutor(detector, clock=clock)
    return executor.execute(query, stream, cascade=FilterCascade(), frame_indices=frame_indices)
