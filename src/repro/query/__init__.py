"""Declarative query processing over video streams.

This package implements the query side of the paper: a declarative query
model for video monitoring queries (object counts, per-class counts, spatial
relationships between objects and between objects and screen regions), a
parser for the paper's SQL-like syntax, a planner that assembles a cascade of
cheap approximate filters, and a streaming executor that only invokes the
expensive reference detector on frames that survive the cascade.

The executor accounts costs with the simulated clock (filter branches at
1.5–1.9 ms/frame, Mask R-CNN at 200 ms/frame), which is what reproduces the
orders-of-magnitude speedups of Table III.
"""

from repro.query.ast import (
    ColorPredicate,
    ComparisonOperator,
    CountPredicate,
    Predicate,
    Query,
    RegionPredicate,
    SpatialPredicate,
    WindowSpec,
)
from repro.query.builder import QueryBuilder
from repro.query.parser import ParseError, parse_query
from repro.query.evaluation import evaluate_predicates_on_detections
from repro.query.planner import (
    CascadeStep,
    CountCheck,
    FilterCascade,
    LocationCheck,
    PlannerConfig,
    QueryPlanner,
    measure_cascade_selectivity,
    merge_cascade_steps,
    order_cascade_by_selectivity,
    replan_cascade,
    replan_order,
    shared_step_key,
)
from repro.query.parallel import (
    CascadeProfiler,
    ParallelConfig,
    ParallelStats,
    PlanRevision,
)
from repro.query.executor import (
    AggregateExecutionResult,
    ExecutionStats,
    MultiQueryExecutionResult,
    QueryExecutionResult,
    SharedExecutionStats,
    StreamingQueryExecutor,
    WindowAggregateEstimate,
    WindowResult,
    WindowStats,
    brute_force_execute,
)
from repro.query.session import ChunkProgress, QueryState, ScanSession
from repro.query.temporal import (
    DeltaGate,
    TemporalConfig,
    TemporalScan,
    TemporalStats,
    delta_score,
    frame_signature,
)

__all__ = [
    "Query",
    "Predicate",
    "CountPredicate",
    "SpatialPredicate",
    "RegionPredicate",
    "ColorPredicate",
    "ComparisonOperator",
    "WindowSpec",
    "QueryBuilder",
    "parse_query",
    "ParseError",
    "evaluate_predicates_on_detections",
    "QueryPlanner",
    "PlannerConfig",
    "FilterCascade",
    "CascadeStep",
    "measure_cascade_selectivity",
    "merge_cascade_steps",
    "order_cascade_by_selectivity",
    "replan_cascade",
    "replan_order",
    "shared_step_key",
    "CountCheck",
    "LocationCheck",
    "ParallelConfig",
    "ParallelStats",
    "PlanRevision",
    "CascadeProfiler",
    "StreamingQueryExecutor",
    "QueryExecutionResult",
    "MultiQueryExecutionResult",
    "SharedExecutionStats",
    "ExecutionStats",
    "WindowResult",
    "WindowStats",
    "WindowAggregateEstimate",
    "AggregateExecutionResult",
    "brute_force_execute",
    "ScanSession",
    "QueryState",
    "ChunkProgress",
    "TemporalConfig",
    "TemporalStats",
    "TemporalScan",
    "DeltaGate",
    "delta_score",
    "frame_signature",
]
