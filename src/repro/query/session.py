"""Resumable scan sessions: the shared chunk pipeline, extracted.

``execute_many`` owns a whole scan: it computes coverage, merges cascade
steps, attaches clocks, then drives a chunk loop to completion.  A standing
query service cannot work that way — chunks *arrive*, queries register and
deregister while the scan is running, and per-window results must be emitted
as soon as their frames are in.  :class:`ScanSession` is the chunk loop
turned inside out: the caller pushes one chunk of frames at a time and the
session holds every piece of cross-chunk state the monolithic loop kept in
locals — the per-query accumulators, the merged cascade plan, the cross-query
prediction-cache plumbing (via :func:`~repro.query.parallel.run_filter_chunk`,
the same function the executor and the parallel workers run), the temporal
delta gate, the live window partials and the parallel backend's in-flight
chunks.

Two operating modes share the accumulation code:

* ``live=False`` — the executor's internal mode.  Queries carry precomputed
  coverage (``member_set``), window partitioning stays with the executor,
  and clocks are whatever the executor attached.  ``_run_many_chunked`` and
  the parallel merge callback drive a session chunk-by-chunk, so the one-shot
  engines and the service run literally the same accumulation code.
* ``live=True`` — the service mode.  Coverage is computed from each query's
  hopping window relative to the frame index at which it registered, windows
  are emitted incrementally the moment the stream's watermark passes their
  end, queries may be added and removed between chunks (the merged plan is
  recomputed, already-emitted windows are never re-emitted), and the session
  attaches the filters' and detector's clocks itself.

Parity rail: replaying a finite stream chunk-by-chunk through a live session
produces bit-identical per-query results to one-shot ``execute_many`` —
every counter in this module is accumulated per (query, frame, filter)
exactly as the executor's loops accumulate it, and window emission replicates
``_partition_into_windows`` / ``HoppingWindow.windows_over`` semantics
(including the at-most-one-truncated-tail rule).  ``tests/test_service.py``
asserts the parity on the plain, windowed, temporal-exact and parallel paths.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.aggregates.windows import HoppingWindow, WindowBounds, warn_window_tail_drop
from repro.cost import BudgetViolation, CostBreakdown, QueryBudget, SimulatedClock
from repro.detection.base import Detector
from repro.filters.base import FilterPrediction, FrameFilter
from repro.query.ast import Query
from repro.query.evaluation import evaluate_predicates_on_detections
from repro.faults.injector import FaultExhausted, QuarantineRecord
from repro.query.parallel import (
    CascadeProfiler,
    ChunkDispatch,
    ChunkOutcome,
    ParallelConfig,
    PlanRevision,
    WorkerSupervisor,
    run_filter_chunk,
)
from repro.query.planner import (
    FilterCascade,
    expected_cascade_cost_ms,
    merge_cascade_steps,
    replan_order,
)
from repro.query.temporal import (
    TemporalConfig,
    TemporalStats,
    _Telemetry,
    clocks_detached,
    with_component_reuses,
)
from repro.video.stream import Frame

if TYPE_CHECKING:  # runtime import would be circular (executor imports us)
    from repro.query.executor import QueryExecutionResult, WindowResult

# Fault-injection hook, installed by repro.faults while a chaos session
# runs.  Same zero-overhead contract as the sanitizer hooks (INV009):
# ``None`` means off, every use sits behind an ``is not None`` guard.
_FAULT_INJECTOR = None

#: Version tag of the :meth:`ScanSession.checkpoint` payload schema.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class _SessionVerdict:
    """One query's share of a temporally-gated frame outcome.

    Mirrors the executor's ``_QueryVerdict``: ``components`` holds the
    ``(name, latency_ms)`` cost components a standalone run would have
    charged for the frame.
    """

    components: tuple[tuple[str, float], ...]
    passed: bool
    matched: bool


@dataclass(frozen=True)
class _SessionTemporalOutcome:
    """Cached per-frame outcome of a session's temporal step.

    ``per_query`` is keyed by session id (only covering queries appear);
    the gate's context key pins the covering set, so two outcomes compared
    by the gate always hold the same keys.
    """

    per_query: dict[int, _SessionVerdict]
    computed_components: tuple[str, ...]
    detector_ran: bool


@dataclass
class QueryState:
    """Cross-chunk state of one standing (or executor-internal) query.

    The accumulator lists (``scanned`` / ``passed`` / ``matched``) grow in
    scan order — in live mode that is ascending frame order, which is what
    lets window emission count by bisection.  ``attributed`` maps
    ``(component_name, latency_ms)`` to the calls a standalone run of this
    query would have made, exactly as ``execute_many`` attributes cost.
    """

    sid: int
    key: str
    query: Query
    cascade: FilterCascade
    member_set: set[int] | None
    window: HoppingWindow | None
    include_partial: bool
    origin: int
    active: bool = True
    provably_empty: bool = False
    scanned: list[int] = field(default_factory=list)
    passed: list[int] = field(default_factory=list)
    matched: list[int] = field(default_factory=list)
    filter_invocations: int = 0
    attributed: dict[tuple[str, float], int] = field(default_factory=dict)
    profiler: CascadeProfiler | None = None
    budget: QueryBudget | None = None
    violations: list[BudgetViolation] = field(default_factory=list)
    violated_kinds: set[str] = field(default_factory=set)
    registered_wall: float = 0.0
    #: next window start index still awaiting emission (live windowed mode)
    next_window_start: int = 0
    windows_closed: bool = False
    emitted_windows: list["WindowResult"] = field(default_factory=list)
    match_cursor: int = 0
    final: "QueryExecutionResult | None" = None

    def covers(self, index: int) -> bool:
        """Whether this query's coverage includes stream frame ``index``."""
        if self.provably_empty:
            return False
        if self.member_set is not None:
            return index in self.member_set
        if index < self.origin:
            return False
        if self.window is None:
            return True
        return (index - self.origin) % self.window.advance < self.window.size


@dataclass(frozen=True)
class ChunkProgress:
    """What one :meth:`ScanSession.push_chunk` call newly established.

    ``new_matches[sid]`` holds match indices confirmed since the previous
    report (parallel sessions confirm at the in-order merge, so a push may
    report matches from earlier chunks and none from its own);
    ``new_windows[sid]`` the window results whose end passed the watermark.
    """

    watermark: int
    new_matches: dict[int, tuple[int, ...]]
    new_windows: dict[int, tuple["WindowResult", ...]]

    @property
    def has_emissions(self) -> bool:
        return bool(self.new_matches or self.new_windows)


class ScanSession:
    """A resumable shared multi-query scan fed one chunk at a time.

    See the module docstring for the ``live`` modes.  A session is *not*
    thread-safe: the service serialises all access per stream shard.  In
    live mode the session owns the clock attachment (every registered
    cascade's distinct filters and the detector charge ``self.clock`` until
    :meth:`close`); in executor mode the caller has already attached clocks
    and the session leaves them alone.

    ``parallel`` distributes the filter phase of pushed chunks over a worker
    backend with the engine's in-order merge (at most
    ``num_workers + prefetch_depth`` chunks in flight; results, counters and
    clock history are identical to the inline path).  ``temporal`` applies
    delta gating across chunk boundaries with a persistent
    :class:`~repro.query.temporal.DeltaGate` — only ``max_stride=1`` is
    supported (striding needs the whole index sequence up front, which a
    live session never has) and it cannot be combined with ``parallel``.

    ``degrade`` configures the approximate mode that
    :meth:`set_degraded` flips the session into under ingestion overload:
    frames are delta-gated with ``degrade`` (``exact=False`` — reuses are
    trusted, not verified) until the pressure clears.
    """

    def __init__(
        self,
        detector: Detector,
        clock: SimulatedClock | None = None,
        *,
        live: bool = True,
        attach_clocks: bool | None = None,
        parallel: ParallelConfig | None = None,
        temporal: TemporalConfig | None = None,
        profile: bool = False,
        degrade: TemporalConfig | None = None,
    ) -> None:
        if temporal is not None and parallel is not None:
            raise ValueError(
                "a session gates frames sequentially; combining temporal= "
                "with parallel= is not supported (the one-shot executor "
                "composes them as prefetch-only)"
            )
        if temporal is not None and temporal.max_stride != 1:
            raise ValueError(
                "session temporal gating needs max_stride=1: adaptive "
                "striding requires the full index sequence up front"
            )
        if degrade is not None and degrade.exact:
            raise ValueError("the degrade config must be approximate (exact=False)")
        if degrade is not None and degrade.max_stride != 1:
            raise ValueError("the degrade config needs max_stride=1")
        self.detector = detector
        self.clock = clock if clock is not None else SimulatedClock()
        self.live = live
        self._attach_clocks = live if attach_clocks is None else attach_clocks
        self._parallel = parallel
        self._temporal = temporal
        self._profile = profile
        self._degrade_config = degrade or TemporalConfig(exact=False)
        self._states: list[QueryState] = []
        self._watermark = -1
        self._closed = False
        self._cost_baseline = self.clock.snapshot()
        # Merged plan over the *active* queries, rebuilt on membership change.
        self._plan_dirty = False
        self._active: list[int] = []
        self._active_cascades: list[FilterCascade] = []
        self._assignments: list[list[int]] = []
        self._unique_steps: list = []
        self._distinct_filters: list[FrameFilter] = []
        self._attached: list[tuple[FrameFilter, SimulatedClock | None]] = []
        self._detector_prev_clock = None
        self._detector_attached = False
        # Shared-scan counters (what the scan actually did).
        self.shared_filter_computations = 0
        self.shared_detector_invocations = 0
        self.union_frames_scanned = 0
        # Temporal machinery: a persistent gate (lazy import avoids paying
        # for it on non-temporal sessions), session-lifetime telemetry.
        self._gate = None
        self._telemetry = _Telemetry()
        self._filter_reuses = 0
        self._detector_reuses = 0
        self._detector_component = getattr(detector, "name", "detector")
        self._detector_latency = float(getattr(detector, "latency_ms", 0.0))
        #: degraded-mode state (see :meth:`set_degraded`)
        self.degraded = False
        self.degraded_frames = 0
        self._degrade_gate = None
        # Parallel pipelining state (dispatch goes through a supervisor so
        # dead/stalled workers heal when the config asks for it).
        self._backend: WorkerSupervisor | None = None
        self._inflight: dict[int, tuple[ChunkDispatch, tuple[int, ...]]] = {}
        self._next_submit = 0
        self._next_merge = 0
        self._worker_totals: dict[str, CostBreakdown] = {}
        self.chunks_merged = 0
        #: once-per-session dedup registry for WindowTailDropWarning
        self._warn_registry: set = set()
        #: chunks/frames set aside after retries and supervision gave up
        self.quarantined: list[QuarantineRecord] = []
        self._started_wall = time.perf_counter()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def states(self) -> list[QueryState]:
        return self._states

    @property
    def active_sids(self) -> tuple[int, ...]:
        self._ensure_plan()
        return tuple(self._active)

    @property
    def unique_step_count(self) -> int:
        """Cascade steps after cross-query dedup, over the active queries."""
        self._ensure_plan()
        return len(self._unique_steps)

    @property
    def total_step_count(self) -> int:
        self._ensure_plan()
        return sum(len(cascade.steps) for cascade in self._active_cascades)

    @property
    def watermark(self) -> int:
        """Highest merged frame index (``-1`` before any chunk)."""
        return self._watermark

    def add_query(
        self,
        query: Query,
        cascade: FilterCascade | None = None,
        *,
        member_set: set[int] | None = None,
        budget: QueryBudget | None = None,
        key: str | None = None,
        include_partial_windows: bool = True,
    ) -> int:
        """Register a query; returns its session id (stable across churn).

        In live mode coverage derives from ``query.window`` relative to the
        registration point (``member_set`` must be ``None``); in executor
        mode ``member_set`` is the precomputed coverage (``None`` = every
        frame) and window partitioning stays with the caller.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if self.live and member_set is not None:
            raise ValueError("live sessions compute coverage from the query window")
        cascade = cascade if cascade is not None else FilterCascade()
        window: HoppingWindow | None = None
        origin = self._watermark + 1
        if self.live and query.window is not None:
            window = HoppingWindow(size=query.window.size, advance=query.window.advance)
        state = QueryState(
            sid=len(self._states),
            key=key if key is not None else query.name,
            query=query,
            cascade=cascade,
            member_set=member_set if not self.live else None,
            window=window,
            include_partial=include_partial_windows,
            origin=origin,
            provably_empty=cascade.provably_empty,
            budget=budget,
            registered_wall=time.perf_counter(),
            next_window_start=origin,
        )
        if self._profile and len(cascade.steps) > 1:
            state.profiler = CascadeProfiler(cascade, _observer_config(self._parallel))
        self._states.append(state)
        self._invalidate_plan()
        return state.sid

    def remove_query(self, sid: int) -> "QueryExecutionResult":
        """Deregister a query, flushing its tail window, and return its result."""
        state = self._states[sid]
        if not state.active:
            raise ValueError(f"query sid={sid} is not active")
        self._drain_all()
        self._flush_windows(state)
        state.active = False
        state.final = self._finalize_state(state)
        self._invalidate_plan()
        return state.final

    def _invalidate_plan(self) -> None:
        # Membership changed: drain the parallel pipeline under the *old*
        # plan (in-flight outcomes are shaped by the old active list), then
        # drop the backend so the next push rebuilds it with the new plan.
        self._drain_all()
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        self._plan_dirty = True

    def _ensure_plan(self) -> None:
        if not self._plan_dirty:
            return
        self._plan_dirty = False
        self._active = [state.sid for state in self._states if state.active]
        self._active_cascades = [self._states[sid].cascade for sid in self._active]
        self._unique_steps, assignments = merge_cascade_steps(self._active_cascades)
        self._assignments = [list(row) for row in assignments]
        distinct: list[FrameFilter] = []
        for cascade in self._active_cascades:
            for frame_filter in cascade.filters:
                if all(frame_filter is not existing for existing in distinct):
                    distinct.append(frame_filter)
        if self._attach_clocks:
            self._reattach_clocks(distinct)
        self._distinct_filters = distinct

    def _reattach_clocks(self, distinct: list[FrameFilter]) -> None:
        still = {id(frame_filter) for frame_filter in distinct}
        kept: list[tuple[FrameFilter, SimulatedClock | None]] = []
        attached = {id(frame_filter) for frame_filter, _ in self._attached}
        for frame_filter, previous in self._attached:
            if id(frame_filter) in still:
                kept.append((frame_filter, previous))
            else:
                frame_filter.clock = previous
        for frame_filter in distinct:
            if id(frame_filter) not in attached:
                kept.append((frame_filter, frame_filter.clock))
                frame_filter.clock = self.clock
        self._attached = kept
        if not self._detector_attached and hasattr(self.detector, "clock"):
            self._detector_prev_clock = self.detector.clock
            self.detector.clock = self.clock
            self._detector_attached = True

    # ------------------------------------------------------------------
    # Pushing chunks
    # ------------------------------------------------------------------
    def push_chunk(self, frames: Sequence[Frame]) -> ChunkProgress:
        """Feed one chunk of frames through the pipeline.

        Live sessions require strictly ascending frame indices past the
        watermark (window emission counts by bisection over the accumulator
        lists).  Returns the matches and completed windows the push newly
        confirmed — for parallel sessions that is whatever merged, which may
        lag the submitted chunk by up to the in-flight window.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        frames = list(frames)
        if not frames:
            return self._progress({})
        if self.live:
            previous = self._watermark
            for frame in frames:
                if frame.index <= previous:
                    raise ValueError(
                        f"live sessions need strictly ascending frame indices: "
                        f"{frame.index} after watermark {previous}"
                    )
                previous = frame.index
        self._ensure_plan()
        cursors = self._match_cursors()
        if not self._active:
            self._watermark = max(self._watermark, frames[-1].index)
            return self._progress(cursors)
        try:
            if self._temporal is not None or self.degraded:
                self._push_temporal(frames)
            elif self._parallel is not None:
                self._push_parallel(frames)
            else:
                self._push_inline(frames)
        except FaultExhausted as error:
            # Poison chunk: retries (and, on the parallel path, worker
            # re-dispatch) gave up.  Quarantine and keep scanning — a
            # standing query must outlive one bad chunk.
            self.quarantine_chunk(frames, error)
        return self._progress(cursors)

    def quarantine_chunk(
        self, frames: Sequence[object], error: BaseException
    ) -> QuarantineRecord:
        """Set one chunk aside after recovery gave up; the scan continues.

        ``frames`` may be :class:`Frame` objects or bare indices (decode
        exhaustion never materialised any frames).  The watermark still
        advances past the chunk so window emission and later pushes are
        unaffected; the quarantined frames simply never enter any
        accumulator, and the record lands on ``quarantined`` (surfaced as
        ``FaultReport.quarantined`` and ``Emission(kind="fault")``).
        """
        indices = tuple(
            frame.index if isinstance(frame, Frame) else int(frame)  # type: ignore[attr-defined]
            for frame in frames
        )
        record = QuarantineRecord(
            site=getattr(error, "site", "runtime"),
            key=getattr(error, "key", indices[0] if indices else -1),
            frames=indices,
            error=str(error),
        )
        self.quarantined.append(record)
        if indices:
            self._watermark = max(self._watermark, indices[-1])
        return record

    def _match_cursors(self) -> dict[int, int]:
        return {state.sid: len(state.matched) for state in self._states if state.active}

    def _progress(self, cursors: dict[int, int]) -> ChunkProgress:
        new_matches: dict[int, tuple[int, ...]] = {}
        new_windows: dict[int, tuple] = {}
        for sid, start in cursors.items():
            state = self._states[sid]
            if len(state.matched) > start:
                new_matches[sid] = tuple(state.matched[start:])
            completed = self._emit_completed(state)
            if completed:
                new_windows[sid] = tuple(completed)
        return ChunkProgress(
            watermark=self._watermark,
            new_matches=new_matches,
            new_windows=new_windows,
        )

    # -- inline (sequential) path --------------------------------------
    def _push_inline(self, frames: list[Frame]) -> None:
        states = [self._states[sid] for sid in self._active]
        covered = [[state.covers(frame.index) for frame in frames] for state in states]
        orders = self._current_orders()
        if _FAULT_INJECTOR is not None:
            # Chunk-atomic retry: the fault site is *before* any
            # accumulation inside run_filter_chunk, so a retried chunk
            # replays bit-identically and exhaustion poisons the whole
            # chunk (no partial counters to unwind).
            alive, invocations, attributed, computed, step_stats = (
                _FAULT_INJECTOR.with_retry(
                    "filter",
                    frames[0].index,
                    self.clock,
                    lambda: run_filter_chunk(
                        self._active_cascades,
                        self._assignments,
                        covered,
                        orders,
                        frames,
                    ),
                )
            )
        else:
            alive, invocations, attributed, computed, step_stats = run_filter_chunk(
                self._active_cascades, self._assignments, covered, orders, frames
            )
        self._accumulate_filter_phase(
            states, frames, covered, alive, invocations, attributed, computed
        )
        self._observe_profilers(states, step_stats, frames[-1].index)
        self._detector_phase(states, frames, [set(row) for row in alive])
        self._watermark = max(self._watermark, frames[-1].index)

    def _current_orders(self) -> list[tuple[int, ...]]:
        orders: list[tuple[int, ...]] = []
        for sid in self._active:
            profiler = self._states[sid].profiler
            if profiler is not None:
                orders.append(tuple(profiler.order))
            else:
                orders.append(tuple(range(len(self._states[sid].cascade.steps))))
        return orders

    def _observe_profilers(
        self, states: list[QueryState], step_stats, at_frame: int
    ) -> None:
        for state, stats_row in zip(states, step_stats):
            if state.profiler is not None:
                state.profiler.observe(stats_row, at_frame)

    def _accumulate_filter_phase(
        self,
        states: list[QueryState],
        frames: list[Frame],
        covered: list[list[bool]],
        alive: Sequence[Sequence[int]],
        invocations: Sequence[int],
        attributed: Sequence[dict[tuple[str, float], int]],
        computed: int,
    ) -> None:
        self.shared_filter_computations += computed
        union = 0
        for k in range(len(frames)):
            if any(mask[k] for mask in covered):
                union += 1
        self.union_frames_scanned += union
        for position, state in enumerate(states):
            state.scanned.extend(
                frame.index for k, frame in enumerate(frames) if covered[position][k]
            )
            state.passed.extend(alive[position])
            state.filter_invocations += invocations[position]
            for component, calls in attributed[position].items():
                state.attributed[component] = state.attributed.get(component, 0) + calls

    def _detector_phase(
        self, states: list[QueryState], frames: list[Frame], alive_sets: list[set[int]]
    ) -> None:
        for frame in frames:
            interested = [
                position
                for position in range(len(states))
                if frame.index in alive_sets[position]
            ]
            if not interested:
                continue
            if _FAULT_INJECTOR is not None:
                try:
                    detections = _FAULT_INJECTOR.with_retry(
                        "detector",
                        frame.index,
                        self.clock,
                        lambda frame=frame: self.detector.detect(frame),
                    )
                except FaultExhausted as error:
                    # Frame-level quarantine: the frame keeps its filter
                    # accounting (that work really ran) but contributes no
                    # matches, and the scan moves on.
                    self.quarantine_chunk([frame], error)
                    continue
            else:
                detections = self.detector.detect(frame)
            self.shared_detector_invocations += 1
            for position in interested:
                state = states[position]
                if evaluate_predicates_on_detections(state.query, detections):
                    state.matched.append(frame.index)

    def absorb_outcome(
        self, frames: Sequence[Frame], outcome: ChunkOutcome, sids: Sequence[int] | None = None
    ) -> None:
        """Merge one worker :class:`ChunkOutcome` (the engine's merge body).

        Absorbs the chunk's filter cost into the session clock, accumulates
        the per-query counters and runs the detector-union phase — exactly
        what ``execute_many``'s sequential loop does inline, so the parallel
        path stays chunk-for-chunk identical by construction.
        """
        self._ensure_plan()
        if sids is None:
            sids = self._active
        states = [self._states[sid] for sid in sids]
        frames = list(frames)
        self.clock.absorb(outcome.breakdown)
        covered = [[state.covers(frame.index) for frame in frames] for state in states]
        self._accumulate_filter_phase(
            states,
            frames,
            covered,
            outcome.alive,
            outcome.filter_invocations,
            outcome.attributed,
            outcome.computed,
        )
        self._detector_phase(states, frames, [set(row) for row in outcome.alive])
        if frames:
            self._watermark = max(self._watermark, frames[-1].index)
        self.chunks_merged += 1

    # -- parallel path --------------------------------------------------
    def _ensure_backend(self) -> WorkerSupervisor:
        if self._backend is None:
            assert self._parallel is not None
            self._backend = WorkerSupervisor(
                self._parallel, self._active_cascades, self._assignments
            )
        return self._backend

    def _push_parallel(self, frames: list[Frame]) -> None:
        assert self._parallel is not None
        supervisor = self._ensure_backend()
        states = [self._states[sid] for sid in self._active]
        chunk = [frame.index for frame in frames]
        covered = [[state.covers(index) for index in chunk] for state in states]
        orders = self._current_orders()
        entry = supervisor.submit(self._next_submit, chunk, frames, covered, orders)
        self._inflight[self._next_submit] = (entry, tuple(self._active))
        self._next_submit += 1
        max_inflight = self._parallel.num_workers + self._parallel.prefetch_depth
        self._drain_ready()
        while len(self._inflight) >= max_inflight:
            self._merge_next()

    def _drain_ready(self) -> None:
        while self._next_merge in self._inflight:
            future = self._inflight[self._next_merge][0].future
            if future is None or not future.done():
                return
            self._merge_next()

    def _drain_all(self) -> None:
        while self._next_merge in self._inflight:
            self._merge_next()

    def _merge_next(self) -> None:
        entry, sids = self._inflight.pop(self._next_merge)
        supervisor = self._backend
        assert supervisor is not None
        try:
            outcome = supervisor.result(entry)
        except FaultExhausted as error:
            # Poisoned chunk: supervision re-dispatched it to the limit.
            # The handle is already released; quarantine and keep merging.
            self.quarantine_chunk(entry.frames, error)
            self._next_merge += 1
            return
        self._worker_totals[outcome.worker] = self._worker_totals.get(
            outcome.worker, CostBreakdown()
        ).merged_with(outcome.breakdown)
        self.absorb_outcome(entry.frames, outcome, sids)
        states = [self._states[sid] for sid in sids]
        self._observe_profilers(states, outcome.step_stats, entry.frames[-1].index)
        self._next_merge += 1

    @property
    def worker_breakdowns(self) -> dict[str, CostBreakdown]:
        """Per-worker simulated-cost totals of the session's parallel phase."""
        return {label: breakdown.copy() for label, breakdown in self._worker_totals.items()}

    # -- temporal path --------------------------------------------------
    def _active_gate(self):
        from repro.query.temporal import DeltaGate

        if self._temporal is not None and not self.degraded:
            if self._gate is None:
                self._gate = DeltaGate(self._temporal)
            return self._gate, self._temporal.exact
        if self._degrade_gate is None:
            self._degrade_gate = DeltaGate(self._degrade_config)
        return self._degrade_gate, False

    def _push_temporal(self, frames: list[Frame]) -> None:
        gate, exact = self._active_gate()
        states = {sid: self._states[sid] for sid in self._active}
        for frame in frames:
            context = tuple(
                sid for sid in self._active if states[sid].covers(frame.index)
            )
            if not context:
                continue
            self._telemetry.frames_total += 1
            self.union_frames_scanned += 1
            if self.degraded:
                self.degraded_frames += 1
            if gate.decide(frame.image, context):
                outcome = gate.outcome
                gate.mark_reused()
                self._telemetry.frames_reused += 1
                self._reuse_charge(outcome)
                if exact:
                    truth = self._verify_frame(frame, context)
                    self._telemetry.verified_frames += 1
                    if _temporal_verdict(truth) != _temporal_verdict(outcome):
                        self._telemetry.reuse_mismatches += 1
                        gate.replace_outcome(truth)
                    outcome = truth
            else:
                outcome = self._evaluate_frame(frame, context, charged=True)
                gate.set_keyframe(frame.image, outcome, context)
                self._telemetry.frames_computed += 1
            self._apply_temporal_outcome(frame.index, outcome)
        self._watermark = max(self._watermark, frames[-1].index)

    def _evaluate_frame(
        self, frame: Frame, context: tuple[int, ...], charged: bool
    ) -> _SessionTemporalOutcome:
        index_by_sid = {sid: position for position, sid in enumerate(self._active)}
        predictions: dict[tuple, FilterPrediction] = {}
        step_outcomes: dict[int, bool] = {}
        computed: list[str] = []
        per_query: dict[int, _SessionVerdict] = {}
        survivors: list[int] = []
        for sid in context:
            state = self._states[sid]
            position = index_by_sid[sid]
            cascade = state.cascade
            step_positions = self._assignments[position]
            alive = True
            counted: set[tuple] = set()
            components: list[tuple[str, float]] = []
            step_stats = [(0, 0)] * len(cascade.steps)
            order = (
                state.profiler.order
                if state.profiler is not None
                else range(len(cascade.steps))
            )
            for step_position in order:
                if not alive:
                    break
                step = cascade.steps[step_position]
                unique_position = step_positions[step_position]
                identity = step.frame_filter.identity
                if identity not in predictions:
                    predictions[identity] = step.frame_filter.predict(frame)
                    computed.append(step.frame_filter.name)
                    if charged:
                        self.shared_filter_computations += 1
                if identity not in counted:
                    counted.add(identity)
                    components.append(
                        (step.frame_filter.name, step.frame_filter.latency_ms)
                    )
                if unique_position not in step_outcomes:
                    step_outcomes[unique_position] = step.passes(predictions[identity])
                step_stats[step_position] = (
                    1,
                    1 if step_outcomes[unique_position] else 0,
                )
                if not step_outcomes[unique_position]:
                    alive = False
            if charged and state.profiler is not None:
                state.profiler.observe(step_stats, frame.index)
            per_query[sid] = _SessionVerdict(
                components=tuple(components), passed=alive, matched=False
            )
            if alive:
                survivors.append(sid)
        detector_ran = False
        if survivors:
            if _FAULT_INJECTOR is not None:
                # Exhaustion propagates: the temporal pipeline is
                # keyframe-relative, so push_chunk quarantines the rest of
                # the chunk rather than skipping one frame mid-gate.
                detections = _FAULT_INJECTOR.with_retry(
                    "detector",
                    frame.index,
                    self.clock,
                    lambda: self.detector.detect(frame),
                )
            else:
                detections = self.detector.detect(frame)
            detector_ran = True
            if charged:
                self.shared_detector_invocations += 1
            for sid in survivors:
                if evaluate_predicates_on_detections(self._states[sid].query, detections):
                    entry = per_query[sid]
                    per_query[sid] = _SessionVerdict(
                        components=entry.components, passed=entry.passed, matched=True
                    )
        return _SessionTemporalOutcome(
            per_query=per_query,
            computed_components=tuple(computed),
            detector_ran=detector_ran,
        )

    def _verify_frame(
        self, frame: Frame, context: tuple[int, ...]
    ) -> _SessionTemporalOutcome:
        with clocks_detached(self._distinct_filters, self.detector):
            return self._evaluate_frame(frame, context, charged=False)

    def _reuse_charge(self, outcome: _SessionTemporalOutcome) -> None:
        for component in outcome.computed_components:
            self.clock.reuse(component)
        self._filter_reuses += len(outcome.computed_components)
        if outcome.detector_ran:
            self.clock.reuse(self._detector_component)
            self._detector_reuses += 1

    def _apply_temporal_outcome(
        self, index: int, outcome: _SessionTemporalOutcome
    ) -> None:
        for sid, entry in outcome.per_query.items():
            state = self._states[sid]
            state.scanned.append(index)
            state.filter_invocations += len(entry.components)
            for component in entry.components:
                state.attributed[component] = state.attributed.get(component, 0) + 1
            if entry.passed:
                state.passed.append(index)
            if entry.matched:
                state.matched.append(index)

    @property
    def temporal_stats(self) -> TemporalStats:
        """Session-lifetime gating telemetry (all zeros if never gated)."""
        return with_component_reuses(
            self._telemetry.freeze(), self._filter_reuses, self._detector_reuses
        )

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def set_degraded(self, degraded: bool) -> None:
        """Enter/leave the temporal-approximate degraded mode.

        Entering drains the parallel pipeline (degraded frames gate
        sequentially); leaving drops the degrade gate so the next overload
        starts from a fresh keyframe.  Idempotent.
        """
        if degraded == self.degraded:
            return
        self._drain_all()
        self.degraded = degraded
        if not degraded:
            self._degrade_gate = None

    # ------------------------------------------------------------------
    # Budgets
    # ------------------------------------------------------------------
    def check_budgets(self, now: float | None = None) -> list[BudgetViolation]:
        """Evaluate every active query's budget; returns *new* violations.

        Each budget kind fires once per query (edge-triggered): the service
        records the event and keeps running — SLA accounting, not a breaker.
        """
        now = now if now is not None else time.perf_counter()
        fresh: list[BudgetViolation] = []
        for sid in self.active_sids:
            state = self._states[sid]
            if state.budget is None:
                continue
            simulated_ms = sum(
                latency * calls for (_, latency), calls in state.attributed.items()
            ) + self._detector_latency * len(state.passed)
            for violation in state.budget.violations(
                label=state.key,
                frames=len(state.scanned),
                elapsed_seconds=max(now - state.registered_wall, 0.0),
                simulated_ms=simulated_ms,
                at_frame=self._watermark,
            ):
                if violation.kind in state.violated_kinds:
                    continue
                state.violated_kinds.add(violation.kind)
                state.violations.append(violation)
                fresh.append(violation)
        return fresh

    # ------------------------------------------------------------------
    # Replanning
    # ------------------------------------------------------------------
    def replan(self) -> list[PlanRevision]:
        """Re-plan every profiled query's step order from observed pass rates.

        The manual counterpart of the engine's adaptive re-planner (the same
        :func:`~repro.query.planner.replan_order` /
        :func:`~repro.query.planner.expected_cascade_cost_ms` machinery that
        :meth:`~repro.query.planner.QueryPlanner.replan` delegates to): a new
        order is adopted when the observed rates say it is strictly cheaper,
        and applies to chunks pushed after this call.
        """
        revisions: list[PlanRevision] = []
        for sid in self.active_sids:
            state = self._states[sid]
            profiler = state.profiler
            if profiler is None:
                continue
            rates = profiler.pass_rates()
            latencies = [step.frame_filter.latency_ms for step in state.cascade.steps]
            candidate = replan_order(latencies, rates)
            if candidate == profiler.order:
                continue
            current_cost = expected_cascade_cost_ms(latencies, rates, profiler.order)
            candidate_cost = expected_cascade_cost_ms(latencies, rates, candidate)
            if candidate_cost <= 0.0 or current_cost <= candidate_cost:
                continue
            revision = PlanRevision(
                at_frame=self._watermark,
                old_order=tuple(profiler.order),
                new_order=candidate,
                step_names=tuple(step.name for step in state.cascade.steps),
                observed_pass_rates=rates,
                expected_gain=current_cost / candidate_cost,
            )
            profiler.revisions.append(revision)
            profiler.order = candidate
            revisions.append(revision)
        return revisions

    # ------------------------------------------------------------------
    # Window emission (live mode)
    # ------------------------------------------------------------------
    def _emit_completed(self, state: QueryState) -> list["WindowResult"]:
        if state.window is None or not self.live or state.windows_closed:
            return []
        out: list = []
        size = state.window.size
        advance = state.window.advance
        while state.next_window_start + size <= self._watermark + 1:
            bounds = WindowBounds(
                start=state.next_window_start, stop=state.next_window_start + size
            )
            out.append(self._window_result(state, bounds))
            state.next_window_start += advance
        state.emitted_windows.extend(out)
        return out

    def _window_result(self, state: QueryState, bounds: WindowBounds) -> "WindowResult":
        from repro.query.executor import WindowResult, WindowStats

        lo = bisect_left(state.matched, bounds.start)
        hi = bisect_left(state.matched, bounds.stop)
        return WindowResult(
            bounds=bounds,
            matched_frames=tuple(state.matched[lo:hi]),
            stats=WindowStats(
                frames_scanned=_count_between(state.scanned, bounds),
                frames_passed_filters=_count_between(state.passed, bounds),
            ),
        )

    def _flush_windows(self, state: QueryState) -> list["WindowResult"]:
        """Emit the tail window at end of coverage, matching ``windows_over``.

        After the completed windows, at most one truncated window remains;
        with ``include_partial`` it is emitted, otherwise the drop is warned
        once per session (deduplicated across standing queries with the same
        window geometry) — and, either way, no later start is materialised,
        replicating the generator's break-after-partial rule.
        """
        if state.window is None or not self.live or state.windows_closed:
            return []
        out = self._emit_completed(state)
        state.windows_closed = True
        end = self._watermark + 1
        start = state.next_window_start
        if start < end:
            if state.include_partial:
                bounds = WindowBounds(start=start, stop=end)
                tail = self._window_result(state, bounds)
                state.emitted_windows.append(tail)
                out.append(tail)
            else:
                warn_window_tail_drop(
                    size=state.window.size,
                    advance=state.window.advance,
                    start=start,
                    stop=end,
                    num_frames=end,
                    registry=self._warn_registry,
                )
        return out

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def _finalize_state(self, state: QueryState) -> "QueryExecutionResult":
        from repro.query.executor import ExecutionStats, QueryExecutionResult

        breakdown = CostBreakdown()
        for (component, latency), calls in state.attributed.items():
            breakdown.per_component_ms[component] = (
                breakdown.per_component_ms.get(component, 0.0) + latency * calls
            )
            breakdown.per_component_calls[component] = (
                breakdown.per_component_calls.get(component, 0) + calls
            )
        survivors = len(state.passed)
        if survivors:
            breakdown.per_component_ms[self._detector_component] = (
                breakdown.per_component_ms.get(self._detector_component, 0.0)
                + self._detector_latency * survivors
            )
            breakdown.per_component_calls[self._detector_component] = (
                breakdown.per_component_calls.get(self._detector_component, 0)
                + survivors
            )
        stats = ExecutionStats(
            frames_scanned=len(state.scanned),
            frames_passed_filters=survivors,
            detector_invocations=survivors,
            filter_invocations=state.filter_invocations,
            simulated_cost=breakdown,
            wall_clock_seconds=time.perf_counter() - state.registered_wall,
            batch_size=None,
            plan_revisions=(
                tuple(state.profiler.revisions) if state.profiler is not None else ()
            ),
        )
        return QueryExecutionResult(
            query_name=state.query.name,
            cascade_description=state.cascade.describe(),
            matched_frames=tuple(state.matched),
            stats=stats,
            windows=(
                tuple(state.emitted_windows) if state.window is not None else None
            ),
            temporal=(
                self.temporal_stats
                if (self._temporal is not None or self.degraded_frames)
                else None
            ),
        )

    def finish(self) -> dict[int, "QueryExecutionResult"]:
        """Drain, flush every active query's tail window, finalise and close.

        Returns sid → result for the queries still registered; queries
        removed earlier keep the result :meth:`remove_query` returned (also
        available as ``states[sid].final``).
        """
        self._drain_all()
        results: dict[int, "QueryExecutionResult"] = {}
        for state in self._states:
            if not state.active:
                continue
            self._flush_windows(state)
            state.final = self._finalize_state(state)
            results[state.sid] = state.final
        self.close()
        return results

    def shared_cost_report(self):
        """A :class:`~repro.cost.SharedCostReport` over the session so far.

        ``shared`` is the clock delta since the session started; attribution
        covers *every* query ever registered (removed queries keep the cost
        they accrued), labelled as ``execute_many`` labels duplicates.
        """
        from repro.cost import SharedCostReport
        from repro.query.executor import _unique_query_labels

        labels = _unique_query_labels([state.query for state in self._states])
        attributed: dict[str, CostBreakdown] = {}
        for state, label in zip(self._states, labels):
            breakdown = CostBreakdown()
            for (component, latency), calls in state.attributed.items():
                breakdown.per_component_ms[component] = (
                    breakdown.per_component_ms.get(component, 0.0) + latency * calls
                )
                breakdown.per_component_calls[component] = (
                    breakdown.per_component_calls.get(component, 0) + calls
                )
            survivors = len(state.passed)
            if survivors:
                breakdown.per_component_ms[self._detector_component] = (
                    breakdown.per_component_ms.get(self._detector_component, 0.0)
                    + self._detector_latency * survivors
                )
                breakdown.per_component_calls[self._detector_component] = (
                    breakdown.per_component_calls.get(self._detector_component, 0)
                    + survivors
                )
            attributed[label] = breakdown
        return SharedCostReport(
            shared=self.clock.delta_since(self._cost_baseline), attributed=attributed
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialise the session's live progress into a picklable payload.

        The payload captures everything a crashed shard worker needs to
        resume *without re-emitting or skipping windows*: per-query
        accumulators and window cursors (``next_window_start`` /
        ``emitted_windows`` / ``match_cursor``), the watermark, the shared
        counters, the clock delta accrued since the session started,
        temporal-gate state (signature, streak, cached outcome) and the
        quarantine list.  The parallel pipeline is drained first so no
        in-flight chunk is lost.  Wall-clock fields (``registered_wall``)
        are deliberately *not* captured: elapsed-time budgets restart at
        restore, since the wall time of a dead process is meaningless.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        self._drain_all()
        states_payload = []
        for state in self._states:
            states_payload.append(
                {
                    "key": state.key,
                    "origin": state.origin,
                    "active": state.active,
                    "scanned": list(state.scanned),
                    "passed": list(state.passed),
                    "matched": list(state.matched),
                    "filter_invocations": state.filter_invocations,
                    "attributed": dict(state.attributed),
                    "violations": list(state.violations),
                    "violated_kinds": set(state.violated_kinds),
                    "next_window_start": state.next_window_start,
                    "windows_closed": state.windows_closed,
                    "emitted_windows": list(state.emitted_windows),
                    "match_cursor": state.match_cursor,
                }
            )
        telemetry = self._telemetry
        return {
            "version": CHECKPOINT_VERSION,
            "live": self.live,
            "watermark": self._watermark,
            "clock_delta": self.clock.delta_since(self._cost_baseline),
            "shared_filter_computations": self.shared_filter_computations,
            "shared_detector_invocations": self.shared_detector_invocations,
            "union_frames_scanned": self.union_frames_scanned,
            "chunks_merged": self.chunks_merged,
            "degraded": self.degraded,
            "degraded_frames": self.degraded_frames,
            "filter_reuses": self._filter_reuses,
            "detector_reuses": self._detector_reuses,
            "telemetry": {
                "frames_total": telemetry.frames_total,
                "frames_computed": telemetry.frames_computed,
                "frames_reused": telemetry.frames_reused,
                "frames_skipped": telemetry.frames_skipped,
                "refinement_probes": telemetry.refinement_probes,
                "verified_frames": telemetry.verified_frames,
                "reuse_mismatches": telemetry.reuse_mismatches,
                "max_stride_used": telemetry.max_stride_used,
            },
            "gate": None if self._gate is None else self._gate.state_dict(),
            "degrade_gate": (
                None
                if self._degrade_gate is None
                else self._degrade_gate.state_dict()
            ),
            "warn_registry": set(self._warn_registry),
            "quarantined": list(self.quarantined),
            "states": states_payload,
        }

    def restore(self, snapshot: dict) -> None:
        """Load a :meth:`checkpoint` payload into a freshly-built session.

        The caller rebuilds the session the way the original was built —
        same constructor arguments, same queries re-added via
        :meth:`add_query` in the same order — and then restores.  The
        restored session continues exactly where the checkpoint was cut:
        already-emitted windows and matches are never re-emitted (their
        cursors are part of the payload) and the next pushed chunk must
        start past the restored watermark, so nothing is skipped either.
        """
        if snapshot.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {snapshot.get('version')!r}"
            )
        if self._closed:
            raise RuntimeError("session is closed")
        if bool(snapshot["live"]) != self.live:
            raise ValueError("checkpoint live-mode flag does not match the session")
        if (
            self._watermark != -1
            or self.chunks_merged
            or any(state.scanned for state in self._states)
        ):
            raise RuntimeError(
                "restore() needs a fresh session (no chunks pushed yet)"
            )
        payload = snapshot["states"]
        if len(payload) != len(self._states):
            raise ValueError(
                f"checkpoint holds {len(payload)} queries, session has "
                f"{len(self._states)} — re-add the same queries in order"
            )
        for state, entry in zip(self._states, payload):
            if state.key != entry["key"]:
                raise ValueError(
                    f"query key mismatch at sid={state.sid}: checkpoint "
                    f"{entry['key']!r} vs session {state.key!r}"
                )
            state.origin = entry["origin"]
            state.active = entry["active"]
            state.scanned = list(entry["scanned"])
            state.passed = list(entry["passed"])
            state.matched = list(entry["matched"])
            state.filter_invocations = entry["filter_invocations"]
            state.attributed = dict(entry["attributed"])
            state.violations = list(entry["violations"])
            state.violated_kinds = set(entry["violated_kinds"])
            state.next_window_start = entry["next_window_start"]
            state.windows_closed = entry["windows_closed"]
            state.emitted_windows = list(entry["emitted_windows"])
            state.match_cursor = entry["match_cursor"]
        self._watermark = snapshot["watermark"]
        # Re-charge the checkpointed simulated cost onto this session's
        # clock (absorb replays both charges and reuses), so cost reports
        # after a resume match an uninterrupted run.  The baseline stays at
        # construction time, which predates the absorb by definition.
        self.clock.absorb(snapshot["clock_delta"])
        self.shared_filter_computations = snapshot["shared_filter_computations"]
        self.shared_detector_invocations = snapshot["shared_detector_invocations"]
        self.union_frames_scanned = snapshot["union_frames_scanned"]
        self.chunks_merged = snapshot["chunks_merged"]
        self.degraded = snapshot["degraded"]
        self.degraded_frames = snapshot["degraded_frames"]
        self._filter_reuses = snapshot["filter_reuses"]
        self._detector_reuses = snapshot["detector_reuses"]
        for name, value in snapshot["telemetry"].items():
            setattr(self._telemetry, name, value)
        if snapshot["gate"] is not None:
            if self._temporal is None:
                raise ValueError(
                    "checkpoint carries temporal gate state but the session "
                    "was built without temporal="
                )
            from repro.query.temporal import DeltaGate

            self._gate = DeltaGate(self._temporal)
            self._gate.load_state(snapshot["gate"])
        if snapshot["degrade_gate"] is not None:
            from repro.query.temporal import DeltaGate

            self._degrade_gate = DeltaGate(self._degrade_config)
            self._degrade_gate.load_state(snapshot["degrade_gate"])
        self._warn_registry = set(snapshot["warn_registry"])
        self.quarantined = list(snapshot["quarantined"])
        self._invalidate_plan()

    def close(self) -> None:
        """Tear down the backend and restore every clock.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._drain_all()
        finally:
            if self._backend is not None:
                self._backend.close()
                self._backend = None
            for frame_filter, previous in self._attached:
                frame_filter.clock = previous
            self._attached = []
            if self._detector_attached:
                self.detector.clock = self._detector_prev_clock
                self._detector_attached = False

    def __enter__(self) -> "ScanSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _temporal_verdict(outcome: _SessionTemporalOutcome) -> tuple:
    """The gate-comparison verdict of a session temporal outcome."""
    return tuple(
        (sid, entry.passed, entry.matched)
        for sid, entry in sorted(outcome.per_query.items())
    )


def _observer_config(base: ParallelConfig | None) -> ParallelConfig:
    """A profiler config that records observations but never auto-revises.

    ``CascadeProfiler.observe`` is a no-op unless the config is adaptive, so
    observe-only profiling (driving the *manual* :meth:`ScanSession.replan`)
    uses an adaptive config whose consideration interval is unreachable.  A
    genuinely adaptive caller config is used as-is — the engine's mid-stream
    auto-revision semantics then apply.
    """
    if base is not None and base.adaptive:
        return base
    window = base.adaptive_window if base is not None else 32
    return ParallelConfig(
        adaptive=True, adaptive_window=window, adaptive_interval=1_000_000_000
    )


def _count_between(values: list[int], bounds: WindowBounds) -> int:
    """Count entries of a sorted list that fall inside half-open ``bounds``."""
    return bisect_left(values, bounds.stop) - bisect_left(values, bounds.start)
