"""Directional spatial relations between objects.

The paper's query language expresses constraints such as
``ORDER(vehType1, vehType2) = RIGHT`` — "the second object is to the right of
the first".  This module evaluates such constraints both on exact bounding
boxes (full detector output) and on coarse grid occupancy masks (CLF filter
output).

Semantics of ``A <direction> B`` (e.g. ``LEFT_OF``): the relation holds when
the *center* of ``A`` is strictly on that side of the center of ``B`` along
the relevant axis.  An optional ``margin`` (in pixels) requires the separation
to exceed a threshold, which is useful to ignore near-ties caused by grid
quantisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.spatial.geometry import Box, Point
from repro.spatial.grid import GridMask
from repro.spatial.regions import Region


class Direction(enum.Enum):
    """Directional relations between two objects (``A`` relative to ``B``)."""

    LEFT_OF = "left_of"
    RIGHT_OF = "right_of"
    ABOVE = "above"
    BELOW = "below"

    @property
    def inverse(self) -> "Direction":
        """The relation with the operands swapped (A left of B == B right of A)."""
        return _INVERSES[self]

    @classmethod
    def from_keyword(cls, keyword: str) -> "Direction":
        """Parse the keyword used in the paper's ``ORDER(a, b) = KEYWORD`` syntax.

        In the paper's syntax ``ORDER(a, b) = RIGHT`` means "b is at the right
        of a", i.e. *a is left of b*.  ``from_keyword`` therefore returns the
        relation that the *first* operand bears to the *second*.
        """
        normalized = keyword.strip().lower()
        mapping = {
            "right": cls.LEFT_OF,
            "left": cls.RIGHT_OF,
            "above": cls.BELOW,
            "below": cls.ABOVE,
        }
        if normalized not in mapping:
            raise ValueError(f"unknown ORDER keyword: {keyword!r}")
        return mapping[normalized]


_INVERSES = {
    Direction.LEFT_OF: Direction.RIGHT_OF,
    Direction.RIGHT_OF: Direction.LEFT_OF,
    Direction.ABOVE: Direction.BELOW,
    Direction.BELOW: Direction.ABOVE,
}


@dataclass(frozen=True)
class RelationResult:
    """Outcome of evaluating a spatial relation.

    ``satisfied`` is the boolean verdict; ``separation`` is the signed
    distance (in pixels) along the relevant axis, positive when the relation
    holds, which callers can use for margins or diagnostics.
    """

    satisfied: bool
    separation: float


def _separation(a: Point, b: Point, direction: Direction) -> float:
    if direction is Direction.LEFT_OF:
        return b.x - a.x
    if direction is Direction.RIGHT_OF:
        return a.x - b.x
    if direction is Direction.ABOVE:
        return b.y - a.y
    if direction is Direction.BELOW:
        return a.y - b.y
    raise ValueError(f"unknown direction: {direction}")  # pragma: no cover


def direction_between(a: Point, b: Point) -> list[Direction]:
    """All directional relations that hold between points ``a`` and ``b``."""
    return [d for d in Direction if _separation(a, b, d) > 0]


def evaluate_direction(
    a: Box | Point, b: Box | Point, direction: Direction, margin: float = 0.0
) -> RelationResult:
    """Evaluate ``a <direction> b`` on boxes or points.

    Boxes are reduced to their centers; the relation holds when the signed
    separation exceeds ``margin``.
    """
    if margin < 0:
        raise ValueError(f"margin must be non-negative: {margin}")
    point_a = a.center if isinstance(a, Box) else a
    point_b = b.center if isinstance(b, Box) else b
    separation = _separation(point_a, point_b, direction)
    return RelationResult(satisfied=separation > margin, separation=separation)


def evaluate_direction_on_grid(
    a: GridMask, b: GridMask, direction: Direction, margin_cells: float = 0.0
) -> RelationResult:
    """Evaluate ``a <direction> b`` on grid occupancy masks via their centroids.

    This is how the CLF filters pre-evaluate spatial constraints: each class
    is localised on the grid, the masks are reduced to centroids, and the
    directional relation is tested with an optional margin expressed in grid
    cells.  Empty masks never satisfy a relation (there is nothing to relate).
    """
    centroid_a = a.centroid()
    centroid_b = b.centroid()
    if centroid_a is None or centroid_b is None:
        return RelationResult(satisfied=False, separation=float("-inf"))
    cell_extent = (
        a.grid.cell_width
        if direction in (Direction.LEFT_OF, Direction.RIGHT_OF)
        else a.grid.cell_height
    )
    return evaluate_direction(
        centroid_a, centroid_b, direction, margin=margin_cells * cell_extent
    )


def grid_masks_satisfy_direction(
    a: GridMask, b: GridMask, direction: Direction, margin_cells: float = 0.0
) -> bool:
    """Existential variant: some occupied cell of ``a`` bears the relation to some cell of ``b``.

    The centroid-based :func:`evaluate_direction_on_grid` can miss
    configurations where e.g. one of several cars is left of the bus; the
    existential variant checks every pair of occupied cells and is what the
    query executor uses when a query asks whether *any* object of class A is
    left of *any* object of class B.
    """
    cells_a = a.occupied_cells()
    cells_b = b.occupied_cells()
    if not cells_a or not cells_b:
        return False
    cell_extent = (
        a.grid.cell_width
        if direction in (Direction.LEFT_OF, Direction.RIGHT_OF)
        else a.grid.cell_height
    )
    margin = margin_cells * cell_extent
    for row_a, col_a in cells_a:
        center_a = a.grid.cell_center(row_a, col_a)
        for row_b, col_b in cells_b:
            center_b = b.grid.cell_center(row_b, col_b)
            if _separation(center_a, center_b, direction) > margin:
                return True
    return False


def inside_region(obj: Box | Point, region: Region, mode: str = "center") -> bool:
    """Whether an object (box or point) lies inside a screen region."""
    if isinstance(obj, Point):
        return region.contains_point(obj)
    return region.contains_box(obj, mode=mode)
