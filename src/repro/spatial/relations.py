"""Directional spatial relations between objects.

The paper's query language expresses constraints such as
``ORDER(vehType1, vehType2) = RIGHT`` — "the second object is to the right of
the first".  This module evaluates such constraints both on exact bounding
boxes (full detector output) and on coarse grid occupancy masks (CLF filter
output).

Semantics of ``A <direction> B`` (e.g. ``LEFT_OF``): the relation holds when
the *center* of ``A`` is strictly on that side of the center of ``B`` along
the relevant axis.  An optional ``margin`` (in pixels) requires the separation
to exceed a threshold, which is useful to ignore near-ties caused by grid
quantisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.spatial.geometry import Box, Point
from repro.spatial.grid import GridMask
from repro.spatial.regions import Region


class Direction(enum.Enum):
    """Directional relations between two objects (``A`` relative to ``B``)."""

    LEFT_OF = "left_of"
    RIGHT_OF = "right_of"
    ABOVE = "above"
    BELOW = "below"

    @property
    def inverse(self) -> "Direction":
        """The relation with the operands swapped (A left of B == B right of A)."""
        return _INVERSES[self]

    @classmethod
    def from_keyword(cls, keyword: str) -> "Direction":
        """Parse the keyword used in the paper's ``ORDER(a, b) = KEYWORD`` syntax.

        In the paper's syntax ``ORDER(a, b) = RIGHT`` means "b is at the right
        of a", i.e. *a is left of b*.  ``from_keyword`` therefore returns the
        relation that the *first* operand bears to the *second*.
        """
        normalized = keyword.strip().lower()
        mapping = {
            "right": cls.LEFT_OF,
            "left": cls.RIGHT_OF,
            "above": cls.BELOW,
            "below": cls.ABOVE,
        }
        if normalized not in mapping:
            raise ValueError(f"unknown ORDER keyword: {keyword!r}")
        return mapping[normalized]


_INVERSES = {
    Direction.LEFT_OF: Direction.RIGHT_OF,
    Direction.RIGHT_OF: Direction.LEFT_OF,
    Direction.ABOVE: Direction.BELOW,
    Direction.BELOW: Direction.ABOVE,
}


@dataclass(frozen=True)
class RelationResult:
    """Outcome of evaluating a spatial relation.

    ``satisfied`` is the boolean verdict; ``separation`` is the signed
    distance (in pixels) along the relevant axis, positive when the relation
    holds, which callers can use for margins or diagnostics.
    """

    satisfied: bool
    separation: float


def _separation(a: Point, b: Point, direction: Direction) -> float:
    if direction is Direction.LEFT_OF:
        return b.x - a.x
    if direction is Direction.RIGHT_OF:
        return a.x - b.x
    if direction is Direction.ABOVE:
        return b.y - a.y
    if direction is Direction.BELOW:
        return a.y - b.y
    raise ValueError(f"unknown direction: {direction}")  # pragma: no cover


def direction_between(a: Point, b: Point) -> list[Direction]:
    """All directional relations that hold between points ``a`` and ``b``."""
    return [d for d in Direction if _separation(a, b, d) > 0]


def evaluate_direction(
    a: Box | Point, b: Box | Point, direction: Direction, margin: float = 0.0
) -> RelationResult:
    """Evaluate ``a <direction> b`` on boxes or points.

    Boxes are reduced to their centers; the relation holds when the signed
    separation exceeds ``margin``.
    """
    if margin < 0:
        raise ValueError(f"margin must be non-negative: {margin}")
    point_a = a.center if isinstance(a, Box) else a
    point_b = b.center if isinstance(b, Box) else b
    separation = _separation(point_a, point_b, direction)
    return RelationResult(satisfied=separation > margin, separation=separation)


def _check_grid_compatible(a: GridMask, b: GridMask) -> None:
    """Reject mask pairs living on different grids.

    The directional checks compute pixel margins from ``a``'s cell extent, so
    masks on different-resolution (or different-frame) grids would silently
    compare incomparable coordinates; raise instead, mirroring
    :meth:`GridMask._check_compatible` for the set operations.
    """
    if a.grid != b.grid:
        raise ValueError(
            f"incompatible grids: {a.grid.shape} on "
            f"{a.grid.frame_width}x{a.grid.frame_height} vs {b.grid.shape} on "
            f"{b.grid.frame_width}x{b.grid.frame_height}"
        )


def evaluate_direction_on_grid(
    a: GridMask, b: GridMask, direction: Direction, margin_cells: float = 0.0
) -> RelationResult:
    """Evaluate ``a <direction> b`` on grid occupancy masks via their centroids.

    This is how the CLF filters pre-evaluate spatial constraints: each class
    is localised on the grid, the masks are reduced to centroids, and the
    directional relation is tested with an optional margin expressed in grid
    cells.  Empty masks never satisfy a relation (there is nothing to relate);
    masks on incompatible grids raise :class:`ValueError`.
    """
    _check_grid_compatible(a, b)
    centroid_a = a.centroid()
    centroid_b = b.centroid()
    if centroid_a is None or centroid_b is None:
        return RelationResult(satisfied=False, separation=float("-inf"))
    cell_extent = (
        a.grid.cell_width
        if direction in (Direction.LEFT_OF, Direction.RIGHT_OF)
        else a.grid.cell_height
    )
    return evaluate_direction(
        centroid_a, centroid_b, direction, margin=margin_cells * cell_extent
    )


def grid_masks_satisfy_direction(
    a: GridMask, b: GridMask, direction: Direction, margin_cells: float = 0.0
) -> bool:
    """Existential variant: some occupied cell of ``a`` bears the relation to some cell of ``b``.

    The centroid-based :func:`evaluate_direction_on_grid` can miss
    configurations where e.g. one of several cars is left of the bus; the
    existential variant asks whether *any* pair of occupied cells satisfies
    the relation, which is what the query executor needs for "any object of
    class A left of any object of class B".  Because cell centers are affine
    in the cell index, the maximum pairwise separation is attained at the
    extremal cells (e.g. for ``LEFT_OF``, ``max(center_b.x) - min(center_a.x)``),
    so the check runs on four array extrema instead of comparing every cell
    pair.  Masks on incompatible grids raise :class:`ValueError`.
    """
    _check_grid_compatible(a, b)
    rows_a, cols_a = np.nonzero(a.values)
    rows_b, cols_b = np.nonzero(b.values)
    if rows_a.size == 0 or rows_b.size == 0:
        return False
    if direction is Direction.LEFT_OF:
        max_separation = (int(cols_b.max()) - int(cols_a.min())) * a.grid.cell_width
    elif direction is Direction.RIGHT_OF:
        max_separation = (int(cols_a.max()) - int(cols_b.min())) * a.grid.cell_width
    elif direction is Direction.ABOVE:
        max_separation = (int(rows_b.max()) - int(rows_a.min())) * a.grid.cell_height
    elif direction is Direction.BELOW:
        max_separation = (int(rows_a.max()) - int(rows_b.min())) * a.grid.cell_height
    else:  # pragma: no cover
        raise ValueError(f"unknown direction: {direction}")
    cell_extent = (
        a.grid.cell_width
        if direction in (Direction.LEFT_OF, Direction.RIGHT_OF)
        else a.grid.cell_height
    )
    return max_separation > margin_cells * cell_extent


def inside_region(obj: Box | Point, region: Region, mode: str = "center") -> bool:
    """Whether an object (box or point) lies inside a screen region."""
    if isinstance(obj, Point):
        return region.contains_point(obj)
    return region.contains_box(obj, mode=mode)
