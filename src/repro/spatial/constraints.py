"""Composable spatial constraints.

A :class:`Constraint` is a boolean predicate over a *binding* — a mapping from
query variable names (e.g. ``"vehType1"``) to concrete objects (boxes or grid
masks).  Constraints compose with AND / OR / NOT, mirroring how the paper's
WHERE clauses combine class predicates, count predicates and ORDER
constraints.

Two evaluation modes are supported through the same interface:

* exact mode — bindings map variables to :class:`~repro.spatial.geometry.Box`
  instances coming from a full object detector;
* grid mode — bindings map variables to
  :class:`~repro.spatial.grid.GridMask` instances coming from CLF filters.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Union

from repro.spatial.geometry import Box
from repro.spatial.grid import GridMask
from repro.spatial.regions import Region
from repro.spatial.relations import (
    Direction,
    evaluate_direction,
    grid_masks_satisfy_direction,
    inside_region,
)

Binding = Mapping[str, Union[Box, GridMask]]


class Constraint(abc.ABC):
    """A boolean predicate over a variable binding."""

    @abc.abstractmethod
    def evaluate(self, binding: Binding) -> bool:
        """Evaluate the constraint; missing variables make it false."""

    @abc.abstractmethod
    def variables(self) -> frozenset[str]:
        """The variable names the constraint refers to."""

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def __and__(self, other: "Constraint") -> "AndConstraint":
        return AndConstraint((self, other))

    def __or__(self, other: "Constraint") -> "OrConstraint":
        return OrConstraint((self, other))

    def __invert__(self) -> "NotConstraint":
        return NotConstraint(self)


@dataclass(frozen=True)
class DirectionalConstraint(Constraint):
    """``subject <direction> reference`` between two bound variables."""

    subject: str
    reference: str
    direction: Direction
    margin: float = 0.0

    def evaluate(self, binding: Binding) -> bool:
        if self.subject not in binding or self.reference not in binding:
            return False
        a = binding[self.subject]
        b = binding[self.reference]
        if isinstance(a, GridMask) and isinstance(b, GridMask):
            return grid_masks_satisfy_direction(a, b, self.direction)
        if isinstance(a, Box) and isinstance(b, Box):
            return evaluate_direction(a, b, self.direction, margin=self.margin).satisfied
        raise TypeError(
            "directional constraint requires two boxes or two grid masks, got "
            f"{type(a).__name__} and {type(b).__name__}"
        )

    def variables(self) -> frozenset[str]:
        return frozenset({self.subject, self.reference})


@dataclass(frozen=True)
class RegionConstraint(Constraint):
    """``subject`` lies inside (or outside) a fixed screen region."""

    subject: str
    region: Region
    inside: bool = True
    mode: str = "center"

    def evaluate(self, binding: Binding) -> bool:
        if self.subject not in binding:
            return False
        obj = binding[self.subject]
        if isinstance(obj, GridMask):
            region_mask = self.region.grid_mask(obj.grid)
            contained = bool(obj.intersection(region_mask))
        elif isinstance(obj, Box):
            contained = inside_region(obj, self.region, mode=self.mode)
        else:
            raise TypeError(
                f"region constraint requires a box or grid mask, got {type(obj).__name__}"
            )
        return contained if self.inside else not contained

    def variables(self) -> frozenset[str]:
        return frozenset({self.subject})


@dataclass(frozen=True)
class AndConstraint(Constraint):
    """Conjunction of constraints (true when all members are true)."""

    members: tuple[Constraint, ...]

    def evaluate(self, binding: Binding) -> bool:
        return all(member.evaluate(binding) for member in self.members)

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for member in self.members:
            result |= member.variables()
        return result


@dataclass(frozen=True)
class OrConstraint(Constraint):
    """Disjunction of constraints (true when any member is true)."""

    members: tuple[Constraint, ...]

    def evaluate(self, binding: Binding) -> bool:
        return any(member.evaluate(binding) for member in self.members)

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for member in self.members:
            result |= member.variables()
        return result


@dataclass(frozen=True)
class NotConstraint(Constraint):
    """Negation of a constraint."""

    member: Constraint

    def evaluate(self, binding: Binding) -> bool:
        return not self.member.evaluate(binding)

    def variables(self) -> frozenset[str]:
        return self.member.variables()
