"""Grid abstraction used by class-location filters (CLF).

The paper's CLF filters do not predict exact object extents; they predict, on
a ``g x g`` grid overlaid on the frame (``g = 56`` by default), which cells
contain an object of each class.  Spatial constraints are then evaluated over
the occupied cells.  This module provides the mapping between pixel
coordinates / bounding boxes and grid cells, binary grid masks, and the
Manhattan-distance neighbourhoods used by the ``CLF-1`` / ``CLF-2`` tolerance
variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np
from scipy import ndimage

from repro.spatial.geometry import Box, Point


@dataclass(frozen=True)
class Grid:
    """A ``rows x cols`` grid overlaid on a ``width x height`` pixel frame."""

    rows: int
    cols: int
    frame_width: int
    frame_height: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"grid dimensions must be positive: {self.rows}x{self.cols}")
        if self.frame_width <= 0 or self.frame_height <= 0:
            raise ValueError(
                "frame dimensions must be positive: "
                f"{self.frame_width}x{self.frame_height}"
            )

    @classmethod
    def square(cls, g: int, frame_size: int) -> "Grid":
        """A ``g x g`` grid over a square ``frame_size x frame_size`` frame."""
        return cls(rows=g, cols=g, frame_width=frame_size, frame_height=frame_size)

    @property
    def cell_width(self) -> float:
        return self.frame_width / self.cols

    @property
    def cell_height(self) -> float:
        return self.frame_height / self.rows

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    # ------------------------------------------------------------------
    # Pixel <-> cell mapping
    # ------------------------------------------------------------------
    def cell_of_point(self, point: Point) -> tuple[int, int]:
        """The ``(row, col)`` cell containing ``point`` (clamped to the frame)."""
        col = int(point.x / self.cell_width)
        row = int(point.y / self.cell_height)
        row = min(max(row, 0), self.rows - 1)
        col = min(max(col, 0), self.cols - 1)
        return (row, col)

    def cell_box(self, row: int, col: int) -> Box:
        """The pixel-space bounding box of cell ``(row, col)``."""
        self._check_cell(row, col)
        return Box(
            col * self.cell_width,
            row * self.cell_height,
            (col + 1) * self.cell_width,
            (row + 1) * self.cell_height,
        )

    def cell_center(self, row: int, col: int) -> Point:
        """The pixel-space center of cell ``(row, col)``."""
        return self.cell_box(row, col).center

    def cells_overlapping_box(self, box: Box, min_coverage: float = 0.0) -> list[tuple[int, int]]:
        """All cells whose area overlaps ``box``.

        ``min_coverage`` requires the intersection to cover at least that
        fraction of the *cell* area; the default of 0 returns every touched
        cell.  This is the down-scaling used to turn detector bounding boxes
        into ground-truth location grids for filter training.
        """
        clipped = box.clipped(self.frame_width, self.frame_height)
        if clipped is None:
            return []
        col_start = int(clipped.x_min / self.cell_width)
        col_end = min(int(np.ceil(clipped.x_max / self.cell_width)), self.cols)
        row_start = int(clipped.y_min / self.cell_height)
        row_end = min(int(np.ceil(clipped.y_max / self.cell_height)), self.rows)
        cells: list[tuple[int, int]] = []
        for row in range(row_start, row_end):
            for col in range(col_start, col_end):
                if min_coverage <= 0.0:
                    cells.append((row, col))
                    continue
                cell_box = self.cell_box(row, col)
                inter = cell_box.intersection(clipped)
                if inter is not None and inter.area / cell_box.area >= min_coverage:
                    cells.append((row, col))
        return cells

    def mask_from_boxes(self, boxes: Iterable[Box], min_coverage: float = 0.0) -> "GridMask":
        """A binary mask with all cells overlapped by any of ``boxes`` set."""
        mask = np.zeros(self.shape, dtype=bool)
        for box in boxes:
            for row, col in self.cells_overlapping_box(box, min_coverage=min_coverage):
                mask[row, col] = True
        return GridMask(grid=self, values=mask)

    def empty_mask(self) -> "GridMask":
        """An all-false mask on this grid."""
        return GridMask(grid=self, values=np.zeros(self.shape, dtype=bool))

    def _check_cell(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"cell ({row}, {col}) outside grid {self.rows}x{self.cols}")


def cells_within_manhattan(
    cell: tuple[int, int], distance: int, rows: int, cols: int
) -> list[tuple[int, int]]:
    """All grid cells within the given Manhattan distance of ``cell``.

    Used by the ``CLF-1`` / ``CLF-2`` tolerance metrics: a predicted cell is
    judged correct when a ground-truth object of the same class lies within
    Manhattan distance 1 (any of the 4 adjacent cells) or 2 of the prediction.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative: {distance}")
    row0, col0 = cell
    result: list[tuple[int, int]] = []
    for dr in range(-distance, distance + 1):
        remaining = distance - abs(dr)
        for dc in range(-remaining, remaining + 1):
            row, col = row0 + dr, col0 + dc
            if 0 <= row < rows and 0 <= col < cols:
                result.append((row, col))
    return result


@dataclass
class GridMask:
    """A boolean occupancy mask over a :class:`Grid`.

    ``values[row, col]`` is ``True`` when the corresponding cell is occupied
    by (a predicted or ground-truth) object of some class.
    """

    grid: Grid
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=bool)
        if values.shape != self.grid.shape:
            raise ValueError(
                f"mask shape {values.shape} does not match grid {self.grid.shape}"
            )
        self.values = values

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.values.any())

    @property
    def count(self) -> int:
        """Number of occupied cells."""
        return int(self.values.sum())

    def occupied_cells(self) -> list[tuple[int, int]]:
        """Row-major list of occupied ``(row, col)`` cells."""
        rows, cols = np.nonzero(self.values)
        return list(zip(rows.tolist(), cols.tolist()))

    def iter_centers(self) -> Iterator[Point]:
        """Pixel-space centers of the occupied cells."""
        for row, col in self.occupied_cells():
            yield self.grid.cell_center(row, col)

    def centroid(self) -> Point | None:
        """Pixel-space centroid of the occupied cells, or ``None`` if empty."""
        cells = self.occupied_cells()
        if not cells:
            return None
        xs = [self.grid.cell_center(r, c).x for r, c in cells]
        ys = [self.grid.cell_center(r, c).y for r, c in cells]
        return Point(sum(xs) / len(xs), sum(ys) / len(ys))

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "GridMask") -> "GridMask":
        self._check_compatible(other)
        return GridMask(grid=self.grid, values=self.values | other.values)

    def intersection(self, other: "GridMask") -> "GridMask":
        self._check_compatible(other)
        return GridMask(grid=self.grid, values=self.values & other.values)

    def difference(self, other: "GridMask") -> "GridMask":
        self._check_compatible(other)
        return GridMask(grid=self.grid, values=self.values & ~other.values)

    def dilated(self, distance: int) -> "GridMask":
        """Mask grown by ``distance`` in Manhattan metric (tolerance matching).

        Iterating a 4-connected binary dilation ``distance`` times grows each
        occupied cell into its Manhattan ball of that radius — the same result
        as unioning :func:`cells_within_manhattan` per cell, but vectorized.
        """
        if distance <= 0:
            return GridMask(grid=self.grid, values=self.values.copy())
        grown = ndimage.binary_dilation(
            self.values,
            structure=ndimage.generate_binary_structure(2, 1),
            iterations=distance,
        )
        return GridMask(grid=self.grid, values=grown)

    def restricted_to(self, region_mask: "GridMask") -> "GridMask":
        """Alias of :meth:`intersection`, reads better for screen regions."""
        return self.intersection(region_mask)

    def _check_compatible(self, other: "GridMask") -> None:
        if self.grid.shape != other.grid.shape:
            raise ValueError(
                f"incompatible grids: {self.grid.shape} vs {other.grid.shape}"
            )
