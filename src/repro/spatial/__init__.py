"""Spatial predicate algebra for video monitoring queries.

This package provides the geometric primitives (points, boxes, grids) and the
spatial-relation vocabulary (left-of, right-of, above, below, containment in
screen regions) that the paper's queries use, e.g. ``ORDER(vehType1,
vehType2) = RIGHT`` or "bicycle not in bike lane".

The relations are evaluated both on exact bounding boxes (as produced by a
full object detector) and on coarse ``g x g`` grid predictions (as produced by
the CLF filters), which is what makes filter-based pre-evaluation of spatial
constraints possible.
"""

from repro.spatial.geometry import Box, Point, box_center, box_iou, union_box
from repro.spatial.grid import Grid, GridMask, cells_within_manhattan
from repro.spatial.regions import (
    Quadrant,
    Region,
    full_frame_region,
    quadrant_region,
)
from repro.spatial.relations import (
    Direction,
    RelationResult,
    direction_between,
    evaluate_direction,
    evaluate_direction_on_grid,
    grid_masks_satisfy_direction,
    inside_region,
)
from repro.spatial.constraints import (
    AndConstraint,
    Constraint,
    DirectionalConstraint,
    NotConstraint,
    OrConstraint,
    RegionConstraint,
)

__all__ = [
    "Box",
    "Point",
    "box_center",
    "box_iou",
    "union_box",
    "Grid",
    "GridMask",
    "cells_within_manhattan",
    "Quadrant",
    "Region",
    "full_frame_region",
    "quadrant_region",
    "Direction",
    "RelationResult",
    "direction_between",
    "evaluate_direction",
    "evaluate_direction_on_grid",
    "grid_masks_satisfy_direction",
    "inside_region",
    "Constraint",
    "AndConstraint",
    "OrConstraint",
    "NotConstraint",
    "DirectionalConstraint",
    "RegionConstraint",
]
