"""Geometric primitives: points and axis-aligned bounding boxes.

Coordinates follow image conventions: ``x`` grows to the right and ``y`` grows
downwards, with the origin at the top-left corner of the frame.  All
coordinates are expressed in pixels (floats are accepted so that sub-pixel
motion accumulates correctly across frames).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Point:
    """A 2-D point in image coordinates (x to the right, y downwards)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Box:
    """An axis-aligned bounding box ``[x_min, x_max) x [y_min, y_max)``.

    The box is stored with inclusive minimum and exclusive maximum edges,
    which matches how detector bounding boxes are rasterised onto pixel
    grids.  A box is valid when ``x_max > x_min`` and ``y_max > y_min``.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError(
                "degenerate box: "
                f"({self.x_min}, {self.y_min}, {self.x_max}, {self.y_max})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "Box":
        """Build a box from its center point and dimensions."""
        if width <= 0 or height <= 0:
            raise ValueError(f"box dimensions must be positive: {width} x {height}")
        return cls(cx - width / 2.0, cy - height / 2.0, cx + width / 2.0, cy + height / 2.0)

    @classmethod
    def from_xywh(cls, x: float, y: float, width: float, height: float) -> "Box":
        """Build a box from its top-left corner and dimensions."""
        if width <= 0 or height <= 0:
            raise ValueError(f"box dimensions must be positive: {width} x {height}")
        return cls(x, y, x + width, y + height)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(x_min, y_min, x_max, y_max)``."""
        return (self.x_min, self.y_min, self.x_max, self.y_max)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        """True when ``point`` lies inside the box (min-inclusive, max-exclusive)."""
        return (
            self.x_min <= point.x < self.x_max
            and self.y_min <= point.y < self.y_max
        )

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` lies entirely within this box."""
        return (
            self.x_min <= other.x_min
            and self.y_min <= other.y_min
            and self.x_max >= other.x_max
            and self.y_max >= other.y_max
        )

    def intersects(self, other: "Box") -> bool:
        """True when the two boxes have a non-empty intersection."""
        return (
            self.x_min < other.x_max
            and other.x_min < self.x_max
            and self.y_min < other.y_max
            and other.y_min < self.y_max
        )

    def intersection(self, other: "Box") -> "Box | None":
        """The intersection box, or ``None`` when the boxes do not overlap."""
        if not self.intersects(other):
            return None
        return Box(
            max(self.x_min, other.x_min),
            max(self.y_min, other.y_min),
            min(self.x_max, other.x_max),
            min(self.y_max, other.y_max),
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def translated(self, dx: float, dy: float) -> "Box":
        """Return a copy shifted by ``(dx, dy)``."""
        return Box(self.x_min + dx, self.y_min + dy, self.x_max + dx, self.y_max + dy)

    def scaled(self, sx: float, sy: float | None = None) -> "Box":
        """Return a copy with coordinates multiplied by ``(sx, sy)``.

        Useful for mapping between the frame resolution and the filter grid
        resolution (e.g. 448x448 pixels down to a 56x56 grid).
        """
        if sy is None:
            sy = sx
        if sx <= 0 or sy <= 0:
            raise ValueError(f"scale factors must be positive: {sx}, {sy}")
        return Box(self.x_min * sx, self.y_min * sy, self.x_max * sx, self.y_max * sy)

    def clipped(self, width: float, height: float) -> "Box | None":
        """Clip the box to the frame ``[0, width) x [0, height)``.

        Returns ``None`` when the box lies entirely outside the frame.
        """
        x_min = max(self.x_min, 0.0)
        y_min = max(self.y_min, 0.0)
        x_max = min(self.x_max, float(width))
        y_max = min(self.y_max, float(height))
        if x_max <= x_min or y_max <= y_min:
            return None
        return Box(x_min, y_min, x_max, y_max)

    def expanded(self, margin: float) -> "Box":
        """Return a copy grown by ``margin`` pixels on every side."""
        return Box(
            self.x_min - margin,
            self.y_min - margin,
            self.x_max + margin,
            self.y_max + margin,
        )


def box_center(box: Box) -> Point:
    """Convenience wrapper for :attr:`Box.center`."""
    return box.center


def box_iou(a: Box, b: Box) -> float:
    """Intersection-over-union of two boxes, in ``[0, 1]``."""
    inter = a.intersection(b)
    if inter is None:
        return 0.0
    inter_area = inter.area
    union_area = a.area + b.area - inter_area
    if union_area <= 0:
        return 0.0
    return inter_area / union_area


def union_box(boxes: Sequence[Box] | Iterable[Box]) -> Box:
    """The smallest box enclosing all ``boxes``.

    Raises ``ValueError`` when the sequence is empty.
    """
    boxes = list(boxes)
    if not boxes:
        raise ValueError("union_box requires at least one box")
    return Box(
        min(b.x_min for b in boxes),
        min(b.y_min for b in boxes),
        max(b.x_max for b in boxes),
        max(b.y_max for b in boxes),
    )
