"""Named screen regions (quadrants, bike lanes, entrances, ...).

The paper's queries constrain objects not only relative to each other but
also relative to fixed areas of the visible screen, e.g. "two people in the
lower-left quadrant" (query q2) or "bicycles in the bike lane".  A
:class:`Region` is simply a named box in frame coordinates, with helpers for
the four quadrants which the evaluation queries use repeatedly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.spatial.geometry import Box, Point
from repro.spatial.grid import Grid, GridMask


class Quadrant(enum.Enum):
    """The four screen quadrants, named from the viewer's perspective."""

    UPPER_LEFT = "upper_left"
    UPPER_RIGHT = "upper_right"
    LOWER_LEFT = "lower_left"
    LOWER_RIGHT = "lower_right"


@dataclass(frozen=True)
class Region:
    """A named rectangular region of the screen.

    Boxes are min-inclusive / max-exclusive, which tiles *interior* edges
    perfectly (a point on the boundary between two quadrants belongs to
    exactly one) but leaves the frame's outermost bottom and right edges in
    no region at all.  Regions whose max edge coincides with the frame edge
    therefore set ``inclusive_x_max`` / ``inclusive_y_max`` so that a
    detection centered exactly on the frame boundary still falls inside —
    the four quadrants and the full-frame region together must cover every
    representable point of the frame.
    """

    name: str
    box: Box
    inclusive_x_max: bool = False
    inclusive_y_max: bool = False

    def contains_point(self, point: Point) -> bool:
        x_ok = self.box.x_min <= point.x < self.box.x_max or (
            self.inclusive_x_max and point.x == self.box.x_max
        )
        y_ok = self.box.y_min <= point.y < self.box.y_max or (
            self.inclusive_y_max and point.y == self.box.y_max
        )
        return x_ok and y_ok

    def contains_box(self, box: Box, mode: str = "center") -> bool:
        """Whether ``box`` is considered inside the region.

        ``mode`` selects the containment semantics:

        * ``"center"`` (default) — the box center lies inside the region;
          this is the semantics the paper uses when mapping detections to
          screen areas.
        * ``"full"`` — the box lies entirely within the region.
        * ``"overlap"`` — the box overlaps the region at all.
        """
        if mode == "center":
            return self.contains_point(box.center)
        if mode == "full":
            return self.box.contains_box(box)
        if mode == "overlap":
            return self.box.intersects(box)
        raise ValueError(f"unknown containment mode: {mode!r}")

    def grid_mask(self, grid: Grid) -> GridMask:
        """The set of grid cells whose centers fall inside the region.

        Vectorized: the row/column center coordinates are compared against
        the region bounds as two 1-D interval tests whose outer product is
        the mask — same semantics as testing :meth:`contains_point` on every
        cell center, without the per-cell Python loop.  The centers are
        computed with the exact expression :meth:`Grid.cell_center` uses
        (``(edge + next_edge) / 2``, not ``(col + 0.5) * width``): the two
        differ in the last ulp for non-dyadic cell sizes, which would flip
        strict comparisons on cells whose center lies exactly on a region
        boundary.
        """
        cols = np.arange(grid.cols)
        rows = np.arange(grid.rows)
        col_centers = (cols * grid.cell_width + (cols + 1) * grid.cell_width) / 2.0
        row_centers = (rows * grid.cell_height + (rows + 1) * grid.cell_height) / 2.0
        x_ok = (self.box.x_min <= col_centers) & (col_centers < self.box.x_max)
        y_ok = (self.box.y_min <= row_centers) & (row_centers < self.box.y_max)
        if self.inclusive_x_max:
            x_ok |= col_centers == self.box.x_max
        if self.inclusive_y_max:
            y_ok |= row_centers == self.box.y_max
        return GridMask(grid=grid, values=y_ok[:, None] & x_ok[None, :])


def full_frame_region(width: int, height: int) -> Region:
    """The region covering the entire frame (all four frame edges inclusive)."""
    return Region(
        name="frame",
        box=Box(0, 0, width, height),
        inclusive_x_max=True,
        inclusive_y_max=True,
    )


def quadrant_region(quadrant: Quadrant, width: int, height: int) -> Region:
    """One of the four screen quadrants of a ``width x height`` frame.

    The quadrants tile the frame exactly: interior boundaries stay
    max-exclusive (a point on the vertical midline belongs to the right
    quadrants only), while the frame's own right and bottom edges are
    inclusive for the quadrants that touch them, so every point of the
    ``[0, width] x [0, height]`` frame falls in exactly one quadrant.
    """
    half_w = width / 2.0
    half_h = height / 2.0
    if quadrant is Quadrant.UPPER_LEFT:
        box = Box(0, 0, half_w, half_h)
    elif quadrant is Quadrant.UPPER_RIGHT:
        box = Box(half_w, 0, width, half_h)
    elif quadrant is Quadrant.LOWER_LEFT:
        box = Box(0, half_h, half_w, height)
    elif quadrant is Quadrant.LOWER_RIGHT:
        box = Box(half_w, half_h, width, height)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown quadrant: {quadrant}")
    return Region(
        name=quadrant.value,
        box=box,
        inclusive_x_max=box.x_max == width,
        inclusive_y_max=box.y_max == height,
    )
