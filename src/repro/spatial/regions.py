"""Named screen regions (quadrants, bike lanes, entrances, ...).

The paper's queries constrain objects not only relative to each other but
also relative to fixed areas of the visible screen, e.g. "two people in the
lower-left quadrant" (query q2) or "bicycles in the bike lane".  A
:class:`Region` is simply a named box in frame coordinates, with helpers for
the four quadrants which the evaluation queries use repeatedly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.spatial.geometry import Box, Point
from repro.spatial.grid import Grid, GridMask


class Quadrant(enum.Enum):
    """The four screen quadrants, named from the viewer's perspective."""

    UPPER_LEFT = "upper_left"
    UPPER_RIGHT = "upper_right"
    LOWER_LEFT = "lower_left"
    LOWER_RIGHT = "lower_right"


@dataclass(frozen=True)
class Region:
    """A named rectangular region of the screen."""

    name: str
    box: Box

    def contains_point(self, point: Point) -> bool:
        return self.box.contains_point(point)

    def contains_box(self, box: Box, mode: str = "center") -> bool:
        """Whether ``box`` is considered inside the region.

        ``mode`` selects the containment semantics:

        * ``"center"`` (default) — the box center lies inside the region;
          this is the semantics the paper uses when mapping detections to
          screen areas.
        * ``"full"`` — the box lies entirely within the region.
        * ``"overlap"`` — the box overlaps the region at all.
        """
        if mode == "center":
            return self.box.contains_point(box.center)
        if mode == "full":
            return self.box.contains_box(box)
        if mode == "overlap":
            return self.box.intersects(box)
        raise ValueError(f"unknown containment mode: {mode!r}")

    def grid_mask(self, grid: Grid) -> GridMask:
        """The set of grid cells whose centers fall inside the region."""
        values = grid.empty_mask().values
        for row in range(grid.rows):
            for col in range(grid.cols):
                if self.box.contains_point(grid.cell_center(row, col)):
                    values[row, col] = True
        return GridMask(grid=grid, values=values)


def full_frame_region(width: int, height: int) -> Region:
    """The region covering the entire frame."""
    return Region(name="frame", box=Box(0, 0, width, height))


def quadrant_region(quadrant: Quadrant, width: int, height: int) -> Region:
    """One of the four screen quadrants of a ``width x height`` frame."""
    half_w = width / 2.0
    half_h = height / 2.0
    if quadrant is Quadrant.UPPER_LEFT:
        box = Box(0, 0, half_w, half_h)
    elif quadrant is Quadrant.UPPER_RIGHT:
        box = Box(half_w, 0, width, half_h)
    elif quadrant is Quadrant.LOWER_LEFT:
        box = Box(0, half_h, half_w, height)
    elif quadrant is Quadrant.LOWER_RIGHT:
        box = Box(half_w, half_h, width, height)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown quadrant: {quadrant}")
    return Region(name=quadrant.value, box=box)
