"""Latency model and simulated clock.

The paper reports component latencies measured on a Titan XP GPU:

* IC branch (first 5 VGG19 layers + branch): ~1.5 ms / frame
* OD branch (first 8 Darknet layers + branch): ~1.9 ms / frame
* full YOLOv2: ~15 ms / frame
* Mask R-CNN: ~200 ms / frame

We cannot reproduce those absolute numbers on CPU with a numpy substrate, but
the *ratios* between components are what drive every execution-time result in
the paper (Table III, Table IV).  Each simulated component therefore charges
its paper-calibrated latency to a :class:`SimulatedClock`, so execution-time
tables reproduce the paper's shape deterministically, while pytest-benchmark
separately reports the wall-clock cost of our own code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


# Latencies in milliseconds per frame, as reported in Section IV of the paper.
IC_BRANCH_MS = 1.5
OD_BRANCH_MS = 1.9
OD_COF_MS = 1.9
YOLO_FULL_MS = 15.0
MASK_RCNN_MS = 200.0

# Branch-depth trade-off reported in the paper's footnote: branching at layer
# 5 gives ~90% accuracy at ~1.0 ms, branching at layer 15 gives ~92% at 1.5 ms.
IC_BRANCH_LAYER5_MS = 1.0
IC_BRANCH_LAYER15_MS = 1.5


@dataclass
class CostBreakdown:
    """Accumulated simulated cost, broken down by component name.

    ``per_component_calls`` counts invocations that actually ran (and charged
    their latency); ``per_component_reused`` counts invocations the temporal
    execution layer *avoided* by reusing a cached result — they charge zero
    milliseconds but are recorded so reused-vs-computed ratios are visible in
    every cost report.
    """

    per_component_ms: dict[str, float] = field(default_factory=dict)
    per_component_calls: dict[str, int] = field(default_factory=dict)
    per_component_reused: dict[str, int] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return sum(self.per_component_ms.values())

    @property
    def total_seconds(self) -> float:
        return self.total_ms / 1000.0

    @property
    def total_calls(self) -> int:
        """Invocations that actually ran (computed, not reused)."""
        return sum(self.per_component_calls.values())

    @property
    def total_reused(self) -> int:
        """Invocations avoided by temporal reuse (charged zero milliseconds)."""
        return sum(self.per_component_reused.values())

    @property
    def reuse_fraction(self) -> float:
        """Fraction of all would-be invocations that were served from cache.

        ``nan`` when nothing ran at all (no computed and no reused calls).
        """
        total = self.total_calls + self.total_reused
        if total == 0:
            return float("nan")
        return self.total_reused / total

    def merged_with(self, other: "CostBreakdown") -> "CostBreakdown":
        merged = self.copy()
        for name, ms in other.per_component_ms.items():
            merged.per_component_ms[name] = merged.per_component_ms.get(name, 0.0) + ms
        for name, calls in other.per_component_calls.items():
            merged.per_component_calls[name] = (
                merged.per_component_calls.get(name, 0) + calls
            )
        for name, reused in other.per_component_reused.items():
            merged.per_component_reused[name] = (
                merged.per_component_reused.get(name, 0) + reused
            )
        return merged

    def copy(self) -> "CostBreakdown":
        """An independent copy (mutating the copy leaves the original intact)."""
        return CostBreakdown(
            per_component_ms=dict(self.per_component_ms),
            per_component_calls=dict(self.per_component_calls),
            per_component_reused=dict(self.per_component_reused),
        )

    def minus(self, earlier: "CostBreakdown") -> "CostBreakdown":
        """The cost accumulated since ``earlier`` (a prior snapshot of this clock).

        Components whose delta is zero are dropped, so a delta over a period
        in which a component never ran does not mention it at all.  ``earlier``
        must be a prefix of this breakdown (same clock, taken earlier) —
        negative deltas indicate a reset in between and raise.
        """
        delta = CostBreakdown()
        missing = (
            set(earlier.per_component_ms) - set(self.per_component_ms)
        ) | (set(earlier.per_component_reused) - set(self.per_component_reused))
        if missing:
            raise ValueError(
                f"snapshot is not a prefix of this breakdown (components {sorted(missing)} "
                "disappeared); was the clock reset between the snapshot and now?"
            )
        for name, ms in self.per_component_ms.items():
            diff_ms = ms - earlier.per_component_ms.get(name, 0.0)
            diff_calls = self.per_component_calls.get(name, 0) - earlier.per_component_calls.get(name, 0)
            if diff_ms < -1e-9 or diff_calls < 0:
                raise ValueError(
                    f"snapshot is not a prefix of this breakdown (component {name!r} "
                    "shrank); was the clock reset between the snapshot and now?"
                )
            if diff_calls or diff_ms > 0.0:
                delta.per_component_ms[name] = diff_ms
                delta.per_component_calls[name] = diff_calls
        for name, reused in self.per_component_reused.items():
            diff_reused = reused - earlier.per_component_reused.get(name, 0)
            if diff_reused < 0:
                raise ValueError(
                    f"snapshot is not a prefix of this breakdown (component {name!r} "
                    "shrank); was the clock reset between the snapshot and now?"
                )
            if diff_reused:
                delta.per_component_reused[name] = diff_reused
        return delta


def merge_worker_breakdowns(breakdowns: Iterable[CostBreakdown]) -> CostBreakdown:
    """Merge per-worker cost breakdowns into one total.

    Parallel execution charges each worker's filter work to a private
    per-worker clock (a shared clock would race and lose updates under
    threads); the merged breakdown is what the run charged overall.  Merging
    is order-dependent only at float rounding: component call counts are
    exact integers, milliseconds agree with a single-clock run to the last
    ulp or two.
    """
    merged = CostBreakdown()
    for breakdown in breakdowns:
        merged = merged.merged_with(breakdown)
    return merged


@dataclass(frozen=True)
class ParallelCostReport:
    """Cost accounting for one parallel pipelined execution.

    ``per_worker`` holds one entry per worker that executed at least one
    chunk — the merge of that worker's chunk deltas, ordered by worker label
    (thread ids in numeric order; process entries by pid); ``wall_clock_seconds``
    is the whole run's wall clock.  The report puts the two cost notions of this
    codebase side by side: the *simulated* cost is invariant under
    parallelism (the same component invocations happen, so the paper-model
    milliseconds are identical to a sequential run), while the *wall clock*
    is what the worker pool actually buys.
    """

    per_worker: tuple[CostBreakdown, ...]
    wall_clock_seconds: float

    @property
    def num_workers(self) -> int:
        return len(self.per_worker)

    @property
    def merged(self) -> CostBreakdown:
        """All workers' simulated filter cost combined."""
        return merge_worker_breakdowns(self.per_worker)

    @property
    def simulated_seconds(self) -> float:
        return self.merged.total_seconds

    @property
    def worker_seconds(self) -> tuple[float, ...]:
        """Per-worker simulated seconds, for load-balance inspection."""
        return tuple(breakdown.total_seconds for breakdown in self.per_worker)

    @property
    def balance(self) -> float:
        """Mean over max of the per-worker simulated loads (1.0 = perfectly even).

        ``nan`` when no worker charged anything (e.g. an empty scan or a
        prefetch-only parallel run).
        """
        seconds = self.worker_seconds
        peak = max(seconds, default=0.0)
        if peak <= 0.0:
            return float("nan")
        return (sum(seconds) / len(seconds)) / peak

    @property
    def simulated_over_wall(self) -> float:
        """Simulated seconds per wall-clock second of the filter phase.

        A pure reporting ratio (the two clocks measure different things —
        paper-model GPU latencies vs this reproduction's numpy wall time);
        ``inf`` when the run took no measurable wall time.
        """
        if self.wall_clock_seconds <= 0.0:
            return float("inf") if self.simulated_seconds > 0.0 else 0.0
        return self.simulated_seconds / self.wall_clock_seconds


@dataclass(frozen=True)
class SharedCostReport:
    """Cost accounting for a shared multi-query execution.

    ``shared`` is what the shared scan actually charged — every frame
    materialised once, every shared filter evaluated at most once per frame,
    the detector run at most once per frame — while ``attributed`` holds, per
    query, the cost that query would have paid running alone over the same
    frames (its cascade's filter invocations plus the detector on its own
    cascade survivors).  The gap between the attributed total and the shared
    total is the work the sharing eliminated.
    """

    shared: CostBreakdown
    attributed: dict[str, CostBreakdown] = field(default_factory=dict)

    @property
    def standalone_ms(self) -> float:
        """Total cost of running every query independently (sum of attributions)."""
        return sum(breakdown.total_ms for breakdown in self.attributed.values())

    @property
    def shared_ms(self) -> float:
        return self.shared.total_ms

    @property
    def savings_ratio(self) -> float:
        """How many times cheaper the shared run is than N independent runs.

        ``1.0`` when both sides are free (nothing executed, nothing saved);
        ``inf`` when attributed work exists but the shared run charged
        nothing (cannot happen with real components, but keeps the ratio
        total).
        """
        if self.shared_ms <= 0.0:
            return 1.0 if self.standalone_ms <= 0.0 else float("inf")
        return self.standalone_ms / self.shared_ms

    @property
    def computed_calls(self) -> int:
        """Component invocations the shared scan actually performed."""
        return self.shared.total_calls

    @property
    def reused_calls(self) -> int:
        """Component invocations the shared scan avoided via temporal reuse."""
        return self.shared.total_reused

    @property
    def reuse_fraction(self) -> float:
        """Reused fraction of the shared scan's would-be invocations (``nan`` if none)."""
        return self.shared.reuse_fraction


@dataclass(frozen=True)
class BudgetViolation:
    """One SLA ceiling a standing query blew through.

    ``kind`` names the ceiling (``"throughput"``, ``"per_frame_cost"`` or
    ``"total_cost"``); ``observed`` and ``limit`` are in the ceiling's own
    unit (frames/second or simulated milliseconds).  ``at_frame`` is the
    stream watermark when the check fired, so violations can be lined up
    against window emissions and degrade events in a service trace.
    """

    label: str
    kind: str
    observed: float
    limit: float
    at_frame: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.label}: {self.kind} budget exceeded at frame {self.at_frame} "
            f"(observed {self.observed:.3f}, limit {self.limit:.3f})"
        )


@dataclass(frozen=True)
class QueryBudget:
    """Per-query SLA ceilings for standing queries.

    All ceilings are optional; an unset ceiling is never checked.  The
    throughput floor is measured against *wall* time (the service's real
    ingest rate), while the cost ceilings are measured against *simulated*
    milliseconds attributed to the query (the paper-model cost it would pay
    running alone) — the same dual accounting the rest of the codebase uses.

    ``grace_seconds`` suppresses the throughput check until the query has
    been registered that long, so a freshly registered query is not flagged
    before the first chunk could possibly have arrived.
    """

    min_frames_per_second: float | None = None
    max_simulated_ms_per_frame: float | None = None
    max_simulated_ms_total: float | None = None
    grace_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "min_frames_per_second",
            "max_simulated_ms_per_frame",
            "max_simulated_ms_total",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set, got {value}")
        if self.grace_seconds < 0:
            raise ValueError(f"grace_seconds must be >= 0, got {self.grace_seconds}")

    def violations(
        self,
        *,
        label: str,
        frames: int,
        elapsed_seconds: float,
        simulated_ms: float,
        at_frame: int,
    ) -> list[BudgetViolation]:
        """Ceilings currently violated given the query's accrued counters.

        Stateless: callers that want edge-triggered events (fire once per
        ceiling, not once per chunk) track which ``kind``s already fired.
        """
        found: list[BudgetViolation] = []
        if (
            self.min_frames_per_second is not None
            and elapsed_seconds > self.grace_seconds
            and elapsed_seconds > 0.0
        ):
            observed = frames / elapsed_seconds
            if observed < self.min_frames_per_second:
                found.append(
                    BudgetViolation(
                        label=label,
                        kind="throughput",
                        observed=observed,
                        limit=self.min_frames_per_second,
                        at_frame=at_frame,
                    )
                )
        if self.max_simulated_ms_per_frame is not None and frames > 0:
            observed = simulated_ms / frames
            if observed > self.max_simulated_ms_per_frame:
                found.append(
                    BudgetViolation(
                        label=label,
                        kind="per_frame_cost",
                        observed=observed,
                        limit=self.max_simulated_ms_per_frame,
                        at_frame=at_frame,
                    )
                )
        if (
            self.max_simulated_ms_total is not None
            and simulated_ms > self.max_simulated_ms_total
        ):
            found.append(
                BudgetViolation(
                    label=label,
                    kind="total_cost",
                    observed=simulated_ms,
                    limit=self.max_simulated_ms_total,
                    at_frame=at_frame,
                )
            )
        return found


# Runtime sanitizer hook, installed by repro.analysis.sanitizers while a
# sanitized scan runs.  ``None`` means off, and every use is guarded with
# ``is not None`` so the uninstrumented path costs one global load (INV007).
_CLOCK_SANITIZER = None

#: Clock component retry backoff is charged to (see
#: :class:`repro.faults.RetryPolicy`): recovery time is simulated cost,
#: never a wall-clock sleep, so retried runs stay deterministic.
RETRY_BACKOFF_COMPONENT = "retry_backoff"


class SimulatedClock:
    """Accumulates the simulated cost of detector / filter invocations."""

    def __init__(self) -> None:
        self._breakdown = CostBreakdown()

    def charge(self, component: str, milliseconds: float, calls: int = 1) -> None:
        """Charge ``milliseconds`` of simulated latency to ``component``."""
        if _CLOCK_SANITIZER is not None:
            with _CLOCK_SANITIZER.clock_access(self, "charge", component, milliseconds):
                self._charge_unchecked(component, milliseconds, calls)
            return
        self._charge_unchecked(component, milliseconds, calls)

    def _charge_unchecked(self, component: str, milliseconds: float, calls: int) -> None:
        if milliseconds < 0:
            raise ValueError(f"cannot charge negative time: {milliseconds}")
        if calls < 0:
            raise ValueError(f"cannot charge negative calls: {calls}")
        breakdown = self._breakdown
        breakdown.per_component_ms[component] = (
            breakdown.per_component_ms.get(component, 0.0) + milliseconds
        )
        breakdown.per_component_calls[component] = (
            breakdown.per_component_calls.get(component, 0) + calls
        )

    def reuse(self, component: str, calls: int = 1) -> None:
        """Record ``calls`` invocations of ``component`` served from a temporal cache.

        Reused invocations charge zero milliseconds — the whole point of the
        temporal execution layer — but are counted separately so cost reports
        can show how much work the reuse avoided (see
        :attr:`CostBreakdown.per_component_reused`).
        """
        if _CLOCK_SANITIZER is not None:
            with _CLOCK_SANITIZER.clock_access(self, "reuse", component, 0.0):
                self._reuse_unchecked(component, calls)
            return
        self._reuse_unchecked(component, calls)

    def _reuse_unchecked(self, component: str, calls: int) -> None:
        if calls < 0:
            raise ValueError(f"cannot record negative reused calls: {calls}")
        if calls == 0:
            return
        breakdown = self._breakdown
        breakdown.per_component_reused[component] = (
            breakdown.per_component_reused.get(component, 0) + calls
        )

    def absorb(self, breakdown: CostBreakdown) -> None:
        """Add a detached breakdown (e.g. a parallel worker's chunk delta) to this clock.

        The parallel engine charges filter work to per-worker clocks and
        absorbs each chunk's delta into the main clock at the in-order merge
        point, so the main clock's history reads exactly like a sequential
        run's: chunk by chunk, in stream order.
        """
        for name, ms in breakdown.per_component_ms.items():
            self.charge(name, ms, calls=breakdown.per_component_calls.get(name, 0))
        for name, reused in breakdown.per_component_reused.items():
            self.reuse(name, reused)

    def reset(self) -> None:
        """Discard all accumulated cost."""
        self._breakdown = CostBreakdown()

    def snapshot(self) -> CostBreakdown:
        """A frozen copy of the current breakdown, for later delta accounting.

        Callers that share one clock across several executions take a
        snapshot before each run and compute the run's own cost with
        :meth:`CostBreakdown.minus`, instead of resetting the clock (which
        would silently wipe the other runs' accumulated cost).
        """
        return self._breakdown.copy()

    def delta_since(self, snapshot: CostBreakdown) -> CostBreakdown:
        """The cost accumulated since ``snapshot`` (see :meth:`snapshot`)."""
        return self._breakdown.minus(snapshot)

    @property
    def breakdown(self) -> CostBreakdown:
        return self._breakdown

    @property
    def elapsed_ms(self) -> float:
        return self._breakdown.total_ms

    @property
    def elapsed_seconds(self) -> float:
        return self._breakdown.total_seconds
