"""repro — reproduction of "Video Monitoring Queries" (Koudas, Li, Xarchakos, ICDE 2020).

The package implements the paper's approximate frame filters (IC / OD count,
class-count and class-location filters plus the count-optimised OD-COF
classifier), a declarative query layer that uses them as a filter cascade in
front of an expensive reference detector, and Monte-Carlo aggregate
monitoring with (multiple) control variates — together with the substrates
the paper depends on: a synthetic single-camera video workload matching the
paper's dataset statistics, detector simulators with the paper's latency
profile, and a small numpy neural-network framework for the branch networks.

Quickstart::

    from repro import build_jackson, FilterTrainer, QueryBuilder
    from repro.detection import ReferenceDetector
    from repro.query import QueryPlanner, PlannerConfig, StreamingQueryExecutor

    dataset = build_jackson()
    filters = FilterTrainer(dataset=dataset).train_all()
    query = (
        QueryBuilder("one_car_one_person")
        .count("car").equals(1)
        .count("person").equals(1)
        .spatial("car").left_of("person")
        .build()
    )
    planner = QueryPlanner(filters, PlannerConfig(count_tolerance=1, location_dilation=1))
    executor = StreamingQueryExecutor(ReferenceDetector(class_names=dataset.class_names))
    result = executor.execute(query, dataset.test, planner.plan(query))
"""

from repro.cost import (
    IC_BRANCH_MS,
    MASK_RCNN_MS,
    OD_BRANCH_MS,
    YOLO_FULL_MS,
    CostBreakdown,
    SimulatedClock,
)
from repro.video import (
    VideoDataset,
    VideoStream,
    build_coral,
    build_dataset,
    build_detrac,
    build_jackson,
    dataset_profiles,
)
from repro.detection import FastDetector, ReferenceDetector, annotate_stream
from repro.filters import (
    FilterTrainer,
    ICFilter,
    ODCountClassifier,
    ODFilter,
    evaluate_count_filter,
    evaluate_localization,
)
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    brute_force_execute,
    parse_query,
)
from repro.aggregates import AggregateMonitor, AggregateQuerySpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SimulatedClock",
    "CostBreakdown",
    "IC_BRANCH_MS",
    "OD_BRANCH_MS",
    "YOLO_FULL_MS",
    "MASK_RCNN_MS",
    "VideoDataset",
    "VideoStream",
    "build_coral",
    "build_jackson",
    "build_detrac",
    "build_dataset",
    "dataset_profiles",
    "ReferenceDetector",
    "FastDetector",
    "annotate_stream",
    "FilterTrainer",
    "ICFilter",
    "ODFilter",
    "ODCountClassifier",
    "evaluate_count_filter",
    "evaluate_localization",
    "QueryBuilder",
    "QueryPlanner",
    "PlannerConfig",
    "StreamingQueryExecutor",
    "brute_force_execute",
    "parse_query",
    "AggregateMonitor",
    "AggregateQuerySpec",
]
