"""Standing-query membership: handles, per-stream grouping, the registry lock.

The registry is the service's source of truth for *which* queries exist and
on *what* stream; the scan state itself (accumulators, merged plan, window
partials) lives in each stream shard's
:class:`~repro.query.session.ScanSession`.  Splitting the two keeps the
locking story simple: registry membership is guarded by one lock (INV008 —
``_entries`` / ``_by_stream`` may only be mutated while ``self._lock`` is
held), while scan state is only ever touched under the owning shard's lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.query.ast import Query
from repro.query.planner import FilterCascade

if TYPE_CHECKING:
    from repro.cost import QueryBudget
    from repro.service.emitters import Emitter


@dataclass
class StandingQuery:
    """One registered always-on query (the registry's per-handle record).

    ``handle`` is the service-wide identifier returned by ``register`` and
    used by every emission; ``sid`` is the query's id inside its stream
    shard's scan session (assigned when the shard admits the query).
    """

    handle: int
    stream: str
    key: str
    query: Query
    cascade: FilterCascade
    sid: int = -1
    budget: "QueryBudget | None" = None
    emitter: "Emitter | None" = None
    include_partial_windows: bool = True


class QueryRegistry:
    """Thread-safe handle → standing-query membership, grouped by stream."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: dict[int, StandingQuery] = {}
        self._by_stream: dict[str, list[int]] = {}
        self._next_handle = 0

    def add(self, entry_fields: dict) -> StandingQuery:
        """Allocate a handle and record a new standing query."""
        with self._lock:
            handle = self._next_handle
            self._next_handle += 1
            entry = StandingQuery(handle=handle, **entry_fields)
            self._entries[handle] = entry
            self._by_stream.setdefault(entry.stream, []).append(handle)
            return entry

    def remove(self, handle: int) -> StandingQuery:
        """Drop a standing query from membership; returns its record."""
        with self._lock:
            entry = self._entries.pop(handle)
            handles = self._by_stream[entry.stream]
            handles.remove(handle)
            if not handles:
                del self._by_stream[entry.stream]
            return entry

    def get(self, handle: int) -> StandingQuery:
        with self._lock:
            return self._entries[handle]

    def handles_for(self, stream: str) -> tuple[int, ...]:
        with self._lock:
            return tuple(self._by_stream.get(stream, ()))

    def by_sid(self, stream: str, sid: int) -> StandingQuery | None:
        """The stream's entry whose shard session id is ``sid`` (if any)."""
        with self._lock:
            for handle in self._by_stream.get(stream, ()):
                entry = self._entries[handle]
                if entry.sid == sid:
                    return entry
            return None

    def streams(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._by_stream)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, handle: int) -> bool:
        with self._lock:
            return handle in self._entries
