"""Standing-query monitoring service (ROADMAP item 1: always-on queries).

The package turns the one-shot query engine into a long-running service:

* :mod:`repro.service.service` — :class:`QueryService`: named live streams,
  runtime register/deregister, per-stream shard workers, incremental
  emission, SLA accounting, backpressure.
* :mod:`repro.service.registry` — :class:`QueryRegistry`: lock-guarded
  standing-query membership (INV008).
* :mod:`repro.service.ingest` — :class:`IngestionQueue`: bounded queues with
  the ``block`` / ``drop_oldest`` / ``degrade`` backpressure policies.
* :mod:`repro.service.emitters` — :class:`Emission` and the pluggable sinks.

The scan machinery itself lives in :class:`repro.query.session.ScanSession`
(the executor's chunk pipeline, extracted); this package only adds the
always-on plumbing around it.
"""

from repro.service.emitters import BufferEmitter, CallbackEmitter, Emission, Emitter
from repro.service.ingest import POLICIES, IngestionQueue
from repro.service.registry import QueryRegistry, StandingQuery
from repro.service.service import (
    QueryService,
    ServiceStats,
    StreamConfig,
    StreamStats,
)

__all__ = [
    "BufferEmitter",
    "CallbackEmitter",
    "Emission",
    "Emitter",
    "IngestionQueue",
    "POLICIES",
    "QueryRegistry",
    "QueryService",
    "ServiceStats",
    "StandingQuery",
    "StreamConfig",
    "StreamStats",
]
