"""Pluggable sinks for standing-query emissions.

The service pushes an :class:`Emission` for every incremental event a
standing query produces: newly confirmed matches, completed windows, budget
violations, and the final :class:`~repro.query.executor.QueryExecutionResult`
on deregistration.  Emitters are deliberately tiny — a callback adapter for
"wire it to my own code" and a thread-safe buffer for tests and polling
consumers.  Emitter exceptions are the consumer's problem by design: the
service catches and counts them (``StreamStats.emitter_errors``) so one bad
subscriber cannot stall a stream shard.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Protocol

if TYPE_CHECKING:
    from repro.cost import BudgetViolation
    from repro.faults.injector import QuarantineRecord
    from repro.query.executor import QueryExecutionResult, WindowResult

# Fault-injection hook, installed by repro.faults while a chaos session runs.
# ``None`` means off; every use sits behind an ``is not None`` guard so the
# fault-free delivery path stays a plain try/except loop (INV009).
_FAULT_INJECTOR = None


@dataclass(frozen=True)
class Emission:
    """One incremental event of one standing query.

    ``kind`` is ``"matches"`` (``matched_frames`` newly confirmed),
    ``"window"`` (``window`` completed), ``"violation"`` (``violation``
    fired), ``"result"`` (``result`` finalised on deregistration / stream
    close) or ``"fault"`` (``fault`` holds the
    :class:`~repro.faults.QuarantineRecord` of a frame group that exhausted
    its retry budget; ``handle`` is ``-1`` — quarantine is per stream, not
    per query).  ``watermark`` is the stream's highest processed frame index
    at emission time.
    """

    stream: str
    key: str
    handle: int
    kind: str
    watermark: int
    matched_frames: tuple[int, ...] = ()
    window: "WindowResult | None" = None
    violation: "BudgetViolation | None" = None
    result: "QueryExecutionResult | None" = None
    fault: "QuarantineRecord | None" = None


class Emitter(Protocol):
    """Anything that can receive standing-query emissions."""

    def emit(self, emission: Emission) -> None: ...


@dataclass
class CallbackEmitter:
    """Adapts a plain callable to the emitter protocol."""

    callback: Callable[[Emission], None]

    def emit(self, emission: Emission) -> None:
        self.callback(emission)


@dataclass
class BufferEmitter:
    """Collects emissions in memory, thread-safely (the default test sink)."""

    _emissions: list[Emission] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def emit(self, emission: Emission) -> None:
        with self._lock:
            self._emissions.append(emission)

    def emissions(self, kind: str | None = None, handle: int | None = None) -> list[Emission]:
        """A snapshot of received emissions, optionally filtered."""
        with self._lock:
            snapshot = list(self._emissions)
        return [
            emission
            for emission in snapshot
            if (kind is None or emission.kind == kind)
            and (handle is None or emission.handle == handle)
        ]

    def windows(self, handle: int | None = None) -> list["WindowResult"]:
        """Completed windows in emission order (the quickstart accessor)."""
        return [
            emission.window
            for emission in self.emissions(kind="window", handle=handle)
            if emission.window is not None
        ]

    def matched_frames(self, handle: int | None = None) -> list[int]:
        """All newly-confirmed match indices, concatenated in emission order."""
        out: list[int] = []
        for emission in self.emissions(kind="matches", handle=handle):
            out.extend(emission.matched_frames)
        return out

    def clear(self) -> None:
        with self._lock:
            self._emissions.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._emissions)


def deliver(
    emitters: Iterable[Emitter],
    emission: Emission,
    warned: set[int] | None = None,
) -> int:
    """Deliver ``emission`` to every emitter; returns the number of failures.

    A raising emitter never stops delivery to the others and never
    propagates into the caller (the stream shard keeps scanning).  With
    ``warned`` — a caller-owned set of emitter ids — the first failure of
    each emitter additionally raises a :class:`RuntimeWarning`; repeat
    failures are counted silently.
    """
    failures = 0
    for emitter in emitters:
        try:
            if _FAULT_INJECTOR is not None:
                # Injected emitter fault: simulates this subscriber raising.
                _FAULT_INJECTOR.emitter_event()
            emitter.emit(emission)
        except Exception as error:
            failures += 1
            if warned is not None and id(emitter) not in warned:
                warned.add(id(emitter))
                warnings.warn(
                    f"emitter {type(emitter).__name__} raised "
                    f"{type(error).__name__} while receiving a "
                    f"{emission.kind!r} emission for stream "
                    f"{emission.stream!r}; it stays subscribed and further "
                    "failures are only counted",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return failures
