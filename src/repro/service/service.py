"""The standing-query monitoring service.

:class:`QueryService` runs always-on queries against named live streams.
Each attached stream is one *shard*: a bounded ingestion queue, one worker
thread, and a live :class:`~repro.query.session.ScanSession` that holds the
shard's scan state.  Queries register and deregister at runtime — the
session recomputes the cross-query dedup plan
(:func:`~repro.query.planner.merge_cascade_steps`) on every membership
change — and every incremental event (new matches, completed windows,
budget violations, final results) is pushed to the configured emitters.

The execution semantics are exactly the one-shot engine's: a finite stream
replayed chunk-by-chunk through the service produces bit-identical
per-query results to ``execute_many``, because the chunk pipeline *is* the
executor's, extracted into the session (see ``repro/query/session.py``).
The service adds what one-shot execution cannot express: arrival, churn,
backpressure (see ``repro/service/ingest.py``) and per-query SLA accounting
(:class:`~repro.cost.QueryBudget`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cost import BudgetViolation, QueryBudget, SimulatedClock
from repro.detection.base import Detector
from repro.query.ast import Query
from repro.query.parallel import ParallelConfig, PlanRevision
from repro.query.planner import FilterCascade
from repro.query.session import ScanSession
from repro.query.temporal import TemporalConfig
from repro.service.emitters import Emission, Emitter, deliver
from repro.service.ingest import IngestionQueue
from repro.service.registry import QueryRegistry, StandingQuery
from repro.video.stream import Frame

#: results of closing a stream: handle -> final execution result
StreamResults = Mapping[int, "object"]


@dataclass(frozen=True)
class StreamConfig:
    """Per-stream execution and ingestion settings.

    ``chunk_size`` is the scan granularity (``feed`` re-chunks arbitrary
    frame batches to it); ``queue_chunks`` bounds the ingestion queue and
    ``policy`` picks the backpressure behaviour (``"block"`` /
    ``"drop_oldest"`` / ``"degrade"``).  ``temporal`` / ``parallel`` /
    ``profile`` configure the shard's scan session exactly as they configure
    the one-shot executor; ``degrade`` is the approximate
    :class:`~repro.query.temporal.TemporalConfig` applied while the
    ``degrade`` policy has the shard in its degraded episode.
    """

    chunk_size: int = 16
    queue_chunks: int = 8
    policy: str = "block"
    temporal: TemporalConfig | None = None
    parallel: ParallelConfig | None = None
    profile: bool = False
    degrade: TemporalConfig | None = None

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.queue_chunks <= 0:
            raise ValueError(f"queue_chunks must be positive, got {self.queue_chunks}")


@dataclass(frozen=True)
class StreamStats:
    """A point-in-time snapshot of one stream shard."""

    stream: str
    active_queries: int
    chunks_ingested: int
    frames_ingested: int
    chunks_processed: int
    queue_depth: int
    queue_high_water: int
    dropped_chunks: int
    degrade_events: int
    degraded: bool
    degraded_chunks: int
    degraded_frames: int
    unique_steps: int
    total_steps: int
    watermark: int
    violations: tuple[BudgetViolation, ...]
    emitter_errors: int


@dataclass(frozen=True)
class ServiceStats:
    """Service-wide snapshot: per-stream stats plus the roll-ups."""

    streams: dict[str, StreamStats] = field(default_factory=dict)

    @property
    def active_queries(self) -> int:
        return sum(stats.active_queries for stats in self.streams.values())

    @property
    def violations(self) -> tuple[BudgetViolation, ...]:
        out: list[BudgetViolation] = []
        for stats in self.streams.values():
            out.extend(stats.violations)
        return tuple(out)

    @property
    def degrade_events(self) -> int:
        return sum(stats.degrade_events for stats in self.streams.values())

    @property
    def dropped_chunks(self) -> int:
        return sum(stats.dropped_chunks for stats in self.streams.values())


class _StreamShard:
    """One stream's queue + worker + scan session (internal)."""

    def __init__(
        self,
        name: str,
        detector: Detector,
        config: StreamConfig,
        registry: QueryRegistry,
        service_emitters: Sequence[Emitter],
        clock: SimulatedClock | None,
    ) -> None:
        self.name = name
        self.config = config
        self.session = ScanSession(
            detector,
            clock,
            live=True,
            temporal=config.temporal,
            parallel=config.parallel,
            profile=config.profile,
            degrade=config.degrade,
        )
        self.queue = IngestionQueue(config.queue_chunks, config.policy)
        self.lock = threading.RLock()
        self._registry = registry
        self._service_emitters = service_emitters
        self._sid_to_handle: dict[int, int] = {}
        self._thread: threading.Thread | None = None
        self.chunks_ingested = 0
        self.frames_ingested = 0
        self.chunks_processed = 0
        self.degraded_chunks = 0
        self.emitter_errors = 0
        self.violations: list[BudgetViolation] = []

    # -- membership (called by the service, shard lock serialises vs scan) --
    def admit(self, entry: StandingQuery) -> None:
        with self.lock:
            entry.sid = self.session.add_query(
                entry.query,
                entry.cascade,
                budget=entry.budget,
                key=entry.key,
                include_partial_windows=entry.include_partial_windows,
            )
            self._sid_to_handle[entry.sid] = entry.handle

    def evict(self, entry: StandingQuery):
        with self.lock:
            emitted_before = len(self.session.states[entry.sid].emitted_windows)
            result = self.session.remove_query(entry.sid)
            del self._sid_to_handle[entry.sid]
            self._emit_tail_windows(entry, result, emitted_before)
            self._deliver(
                Emission(
                    stream=self.name,
                    key=entry.key,
                    handle=entry.handle,
                    kind="result",
                    watermark=self.session.watermark,
                    result=result,
                ),
                entry,
            )
            return result

    # -- ingestion -------------------------------------------------------
    def feed(self, frames: Sequence[Frame]) -> int:
        """Re-chunk and ingest ``frames``; returns chunks accepted."""
        accepted = 0
        size = self.config.chunk_size
        for start in range(0, len(frames), size):
            chunk = list(frames[start : start + size])
            if self._thread is None:
                self._process_chunk(chunk)
            elif not self.queue.put(chunk):
                break
            accepted += 1
            self.chunks_ingested += 1
            self.frames_ingested += len(chunk)
        return accepted

    def _worker_loop(self) -> None:
        while True:
            chunk = self.queue.get()
            if chunk is None:
                return
            self._process_chunk(chunk)

    def _process_chunk(self, frames: Sequence[Frame]) -> None:
        with self.lock:
            if self.queue.policy == "degrade":
                requested = self.queue.degrade_requested
                if requested != self.session.degraded:
                    self.session.set_degraded(requested)
            progress = self.session.push_chunk(frames)
            if self.session.degraded:
                self.degraded_chunks += 1
            self.chunks_processed += 1
            self._emit_progress(progress)
            self._check_budgets()

    # -- emission --------------------------------------------------------
    def _entry_for_sid(self, sid: int) -> StandingQuery | None:
        handle = self._sid_to_handle.get(sid)
        if handle is None:
            return None
        return self._registry.get(handle)

    def _deliver(self, emission: Emission, entry: StandingQuery | None) -> None:
        emitters: list[Emitter] = list(self._service_emitters)
        if entry is not None and entry.emitter is not None:
            emitters.append(entry.emitter)
        self.emitter_errors += deliver(emitters, emission)

    def _emit_progress(self, progress) -> None:
        for sid, matches in progress.new_matches.items():
            entry = self._entry_for_sid(sid)
            if entry is None:
                continue
            self._deliver(
                Emission(
                    stream=self.name,
                    key=entry.key,
                    handle=entry.handle,
                    kind="matches",
                    watermark=progress.watermark,
                    matched_frames=matches,
                ),
                entry,
            )
        for sid, windows in progress.new_windows.items():
            entry = self._entry_for_sid(sid)
            if entry is None:
                continue
            for window in windows:
                self._deliver(
                    Emission(
                        stream=self.name,
                        key=entry.key,
                        handle=entry.handle,
                        kind="window",
                        watermark=progress.watermark,
                        window=window,
                    ),
                    entry,
                )

    def _emit_tail_windows(self, entry: StandingQuery, result, emitted_before: int) -> None:
        """Emit windows flushed at finalisation (the truncated tail, if any).

        Windows completed during the scan were emitted incrementally from
        ``_emit_progress``; finalisation may flush at most one more partial
        window, and it must reach the emitters exactly once too.
        """
        windows = getattr(result, "windows", None)
        if not windows:
            return
        for window in windows[emitted_before:]:
            self._deliver(
                Emission(
                    stream=self.name,
                    key=entry.key,
                    handle=entry.handle,
                    kind="window",
                    watermark=self.session.watermark,
                    window=window,
                ),
                entry,
            )

    def _check_budgets(self) -> None:
        fresh = self.session.check_budgets()
        if not fresh:
            return
        self.violations.extend(fresh)
        for violation in fresh:
            entry = None
            for state in self.session.states:
                if any(existing is violation for existing in state.violations):
                    entry = self._entry_for_sid(state.sid)
                    break
            self._deliver(
                Emission(
                    stream=self.name,
                    key=violation.label,
                    handle=entry.handle if entry is not None else -1,
                    kind="violation",
                    watermark=self.session.watermark,
                    violation=violation,
                ),
                entry,
            )

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._worker_loop, name=f"query-service-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        self.queue.close(drain=drain)
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def finish(self) -> dict[int, object]:
        """Stop ingestion, drain, finalise every remaining query."""
        self.stop(drain=True)
        results: dict[int, object] = {}
        with self.lock:
            emitted_before = {
                state.sid: len(state.emitted_windows) for state in self.session.states
            }
            for sid, result in self.session.finish().items():
                entry = self._entry_for_sid(sid)
                if entry is None:
                    continue
                results[entry.handle] = result
                self._emit_tail_windows(entry, result, emitted_before[sid])
                self._deliver(
                    Emission(
                        stream=self.name,
                        key=entry.key,
                        handle=entry.handle,
                        kind="result",
                        watermark=self.session.watermark,
                        result=result,
                    ),
                    entry,
                )
            self._sid_to_handle.clear()
        return results

    def replan(self) -> list[PlanRevision]:
        with self.lock:
            return self.session.replan()

    def stats(self) -> StreamStats:
        with self.lock:
            queue = self.queue.snapshot()
            return StreamStats(
                stream=self.name,
                active_queries=len(self.session.active_sids),
                chunks_ingested=self.chunks_ingested,
                frames_ingested=self.frames_ingested,
                chunks_processed=self.chunks_processed,
                queue_depth=int(queue["depth"]),
                queue_high_water=int(queue["high_water"]),
                dropped_chunks=int(queue["dropped_chunks"]),
                degrade_events=int(queue["degrade_events"]),
                degraded=self.session.degraded,
                degraded_chunks=self.degraded_chunks,
                degraded_frames=self.session.degraded_frames,
                unique_steps=self.session.unique_step_count,
                total_steps=self.session.total_step_count,
                watermark=self.session.watermark,
                violations=tuple(self.violations),
                emitter_errors=self.emitter_errors,
            )


class QueryService:
    """Register standing queries on live streams; collect incremental results.

    Quickstart::

        service = QueryService(emitters=[buffer := BufferEmitter()])
        service.attach_stream("lobby", detector)
        handle = service.register("lobby", query, cascade)
        service.start()
        for batch in arriving_batches:
            service.feed("lobby", batch)
        results = service.close()            # handle -> QueryExecutionResult
        windows = buffer.windows(handle)     # incremental window emissions
    """

    def __init__(self, emitters: Sequence[Emitter] = ()) -> None:
        self.registry = QueryRegistry()
        self._emitters = list(emitters)
        self._shards: dict[str, _StreamShard] = {}
        self._started = False

    # -- streams ---------------------------------------------------------
    def attach_stream(
        self,
        name: str,
        detector: Detector,
        config: StreamConfig | None = None,
        *,
        clock: SimulatedClock | None = None,
    ) -> None:
        """Attach a named live stream; queries register against it by name."""
        if name in self._shards:
            raise ValueError(f"stream {name!r} is already attached")
        shard = _StreamShard(
            name, detector, config or StreamConfig(), self.registry,
            self._emitters, clock,
        )
        self._shards[name] = shard
        if self._started:
            shard.start()

    def _shard(self, name: str) -> _StreamShard:
        try:
            return self._shards[name]
        except KeyError:
            raise KeyError(
                f"unknown stream {name!r}; attached: {sorted(self._shards)}"
            ) from None

    # -- standing queries ------------------------------------------------
    def register(
        self,
        stream: str,
        query: Query,
        cascade: FilterCascade | None = None,
        *,
        key: str | None = None,
        budget: QueryBudget | None = None,
        emitter: Emitter | None = None,
        include_partial_windows: bool = True,
    ) -> int:
        """Register a standing query on ``stream``; returns its handle.

        The query starts covering frames from the stream's *current*
        watermark — it observes nothing retroactively.  ``emitter`` (if
        given) receives this query's emissions in addition to the
        service-wide emitters.
        """
        shard = self._shard(stream)
        entry = self.registry.add(
            dict(
                stream=stream,
                key=key if key is not None else query.name,
                query=query,
                cascade=cascade if cascade is not None else FilterCascade(),
                budget=budget,
                emitter=emitter,
                include_partial_windows=include_partial_windows,
            )
        )
        shard.admit(entry)
        return entry.handle

    def deregister(self, handle: int):
        """Remove a standing query; flushes its tail window, returns its result."""
        entry = self.registry.get(handle)
        result = self._shard(entry.stream).evict(entry)
        self.registry.remove(handle)
        return result

    # -- ingestion -------------------------------------------------------
    def feed(self, stream: str, frames: Sequence[Frame]) -> int:
        """Ingest ``frames`` into ``stream``; returns the chunks accepted.

        Before :meth:`start` the frames are processed synchronously on the
        caller's thread (deterministic replay mode — what the parity tests
        use); after it they are enqueued for the shard worker per the
        stream's backpressure policy.
        """
        return self._shard(stream).feed(frames)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Start one ingestion worker per attached stream."""
        self._started = True
        for shard in self._shards.values():
            shard.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the workers (draining queued chunks by default)."""
        self._started = False
        for shard in self._shards.values():
            shard.stop(drain=drain)

    def close_stream(self, name: str) -> dict[int, object]:
        """Detach a stream, finalising its remaining queries (handle → result)."""
        shard = self._shard(name)
        results = shard.finish()
        for handle in self.registry.handles_for(name):
            self.registry.remove(handle)
        del self._shards[name]
        return results

    def close(self) -> dict[int, object]:
        """Close every stream; returns handle → final result for all of them."""
        results: dict[int, object] = {}
        for name in list(self._shards):
            results.update(self.close_stream(name))
        self._started = False
        return results

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------
    def replan(self, stream: str) -> list[PlanRevision]:
        """Re-plan the stream's profiled cascades from observed pass rates."""
        return self._shard(stream).replan()

    def shared_cost_report(self, stream: str):
        """The stream shard's :class:`~repro.cost.SharedCostReport` so far."""
        shard = self._shard(stream)
        with shard.lock:
            return shard.session.shared_cost_report()

    def stats(self) -> ServiceStats:
        return ServiceStats(
            streams={name: shard.stats() for name, shard in self._shards.items()}
        )
