"""The standing-query monitoring service.

:class:`QueryService` runs always-on queries against named live streams.
Each attached stream is one *shard*: a bounded ingestion queue, one worker
thread, and a live :class:`~repro.query.session.ScanSession` that holds the
shard's scan state.  Queries register and deregister at runtime — the
session recomputes the cross-query dedup plan
(:func:`~repro.query.planner.merge_cascade_steps`) on every membership
change — and every incremental event (new matches, completed windows,
budget violations, final results) is pushed to the configured emitters.

The execution semantics are exactly the one-shot engine's: a finite stream
replayed chunk-by-chunk through the service produces bit-identical
per-query results to ``execute_many``, because the chunk pipeline *is* the
executor's, extracted into the session (see ``repro/query/session.py``).
The service adds what one-shot execution cannot express: arrival, churn,
backpressure (see ``repro/service/ingest.py``) and per-query SLA accounting
(:class:`~repro.cost.QueryBudget`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.diagnostics import AnalysisError
from repro.cost import BudgetViolation, QueryBudget, SimulatedClock
from repro.detection.base import Detector
from repro.faults.injector import (
    FaultError,
    FaultExhausted,
    FaultReport,
    current_report,
    maybe_install_from_env,
    uninstall,
)
from repro.query.ast import Query
from repro.query.parallel import ParallelConfig, PlanRevision
from repro.query.planner import FilterCascade
from repro.query.session import ScanSession
from repro.query.temporal import TemporalConfig
from repro.service.emitters import Emission, Emitter, deliver
from repro.service.ingest import IngestionQueue
from repro.service.registry import QueryRegistry, StandingQuery
from repro.video.stream import Frame

#: results of closing a stream: handle -> final execution result
StreamResults = Mapping[int, "object"]

# Fault-injection hook, installed by repro.faults while a chaos session runs.
# ``None`` means off; every use sits behind an ``is not None`` guard so the
# fault-free shard loop pays nothing (INV009).
_FAULT_INJECTOR = None

#: the shard worker's dequeue poll interval: short enough that
#: ``stop(drain=False)`` is observed promptly, long enough to stay off the
#: queue lock while idle
_WORKER_POLL_SECONDS = 0.05

#: injected shard-worker crashes survived per chunk before the chunk is
#: quarantined as poison
_MAX_SHARD_RETRIES = 3


@dataclass(frozen=True)
class StreamConfig:
    """Per-stream execution and ingestion settings.

    ``chunk_size`` is the scan granularity (``feed`` re-chunks arbitrary
    frame batches to it); ``queue_chunks`` bounds the ingestion queue and
    ``policy`` picks the backpressure behaviour (``"block"`` /
    ``"drop_oldest"`` / ``"degrade"``).  ``temporal`` / ``parallel`` /
    ``profile`` configure the shard's scan session exactly as they configure
    the one-shot executor; ``degrade`` is the approximate
    :class:`~repro.query.temporal.TemporalConfig` applied while the
    ``degrade`` policy has the shard in its degraded episode.
    """

    chunk_size: int = 16
    queue_chunks: int = 8
    policy: str = "block"
    temporal: TemporalConfig | None = None
    parallel: ParallelConfig | None = None
    profile: bool = False
    degrade: TemporalConfig | None = None

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.queue_chunks <= 0:
            raise ValueError(f"queue_chunks must be positive, got {self.queue_chunks}")


@dataclass(frozen=True)
class StreamStats:
    """A point-in-time snapshot of one stream shard."""

    stream: str
    active_queries: int
    chunks_ingested: int
    frames_ingested: int
    chunks_processed: int
    queue_depth: int
    queue_high_water: int
    dropped_chunks: int
    degrade_events: int
    degraded: bool
    degraded_chunks: int
    degraded_frames: int
    unique_steps: int
    total_steps: int
    watermark: int
    violations: tuple[BudgetViolation, ...]
    emitter_errors: int
    #: frame groups quarantined after exhausting their retry budgets
    quarantined_chunks: int = 0
    #: injected-fault / quarantine accounting (``None`` on fault-free shards)
    faults: FaultReport | None = None


@dataclass(frozen=True)
class ServiceStats:
    """Service-wide snapshot: per-stream stats plus the roll-ups."""

    streams: dict[str, StreamStats] = field(default_factory=dict)

    @property
    def active_queries(self) -> int:
        return sum(stats.active_queries for stats in self.streams.values())

    @property
    def violations(self) -> tuple[BudgetViolation, ...]:
        out: list[BudgetViolation] = []
        for stats in self.streams.values():
            out.extend(stats.violations)
        return tuple(out)

    @property
    def degrade_events(self) -> int:
        return sum(stats.degrade_events for stats in self.streams.values())

    @property
    def dropped_chunks(self) -> int:
        return sum(stats.dropped_chunks for stats in self.streams.values())

    @property
    def quarantined_chunks(self) -> int:
        return sum(stats.quarantined_chunks for stats in self.streams.values())


class _StreamShard:
    """One stream's queue + worker + scan session (internal)."""

    def __init__(
        self,
        name: str,
        detector: Detector,
        config: StreamConfig,
        registry: QueryRegistry,
        service_emitters: Sequence[Emitter],
        clock: SimulatedClock | None,
    ) -> None:
        self.name = name
        self.config = config
        self.session = ScanSession(
            detector,
            clock,
            live=True,
            temporal=config.temporal,
            parallel=config.parallel,
            profile=config.profile,
            degrade=config.degrade,
        )
        self.queue = IngestionQueue(config.queue_chunks, config.policy)
        self.lock = threading.RLock()
        self._registry = registry
        self._service_emitters = service_emitters
        self._sid_to_handle: dict[int, int] = {}
        self._thread: threading.Thread | None = None
        self.chunks_ingested = 0
        self.frames_ingested = 0
        self.chunks_processed = 0
        self.degraded_chunks = 0
        self.emitter_errors = 0
        self.violations: list[BudgetViolation] = []
        # Fault-tolerance bookkeeping: emitters that already got their
        # first-failure warning, and how many of the session's quarantine
        # records have been pushed out as ``kind="fault"`` emissions.
        self._warned_emitters: set[int] = set()
        self._faults_emitted = 0

    # -- membership (called by the service, shard lock serialises vs scan) --
    def admit(self, entry: StandingQuery) -> None:
        with self.lock:
            entry.sid = self.session.add_query(
                entry.query,
                entry.cascade,
                budget=entry.budget,
                key=entry.key,
                include_partial_windows=entry.include_partial_windows,
            )
            self._sid_to_handle[entry.sid] = entry.handle

    def evict(self, entry: StandingQuery):
        with self.lock:
            emitted_before = len(self.session.states[entry.sid].emitted_windows)
            result = self.session.remove_query(entry.sid)
            del self._sid_to_handle[entry.sid]
            self._emit_tail_windows(entry, result, emitted_before)
            self._deliver(
                Emission(
                    stream=self.name,
                    key=entry.key,
                    handle=entry.handle,
                    kind="result",
                    watermark=self.session.watermark,
                    result=result,
                ),
                entry,
            )
            return result

    # -- ingestion -------------------------------------------------------
    def feed(self, frames: Sequence[Frame]) -> int:
        """Re-chunk and ingest ``frames``; returns chunks accepted."""
        if self.queue.closed:
            raise AnalysisError(
                f"stream {self.name!r} is closed to ingestion (stop/close "
                "already shut its queue); attach a fresh stream to keep feeding"
            )
        accepted = 0
        size = self.config.chunk_size
        for start in range(0, len(frames), size):
            chunk = list(frames[start : start + size])
            if self._thread is None:
                self._run_chunk_resilient(chunk)
            elif not self.queue.put(chunk):
                break
            accepted += 1
            self.chunks_ingested += 1
            self.frames_ingested += len(chunk)
        return accepted

    def _worker_loop(self) -> None:
        # The timed get bounds how long the worker can sit inside the queue:
        # ``stop(drain=False)`` clears the backlog and closes the queue, and
        # within one poll interval the loop observes closed-and-drained and
        # exits — it cannot deadlock on a wakeup that was never signalled.
        # ``None`` alone is *not* an exit signal (timeouts and injected queue
        # stalls return it too), so the loop re-checks the queue state.
        while True:
            chunk = self.queue.get(timeout=_WORKER_POLL_SECONDS)
            if chunk is None:
                if self.queue.closed and self.queue.depth == 0:
                    return
                continue
            self._run_chunk_resilient(chunk)

    def _run_chunk_resilient(self, chunk: Sequence[Frame]) -> None:
        """Scan one chunk, surviving injected shard crashes and poison input.

        An injected ``shard_crash`` fault fires *before* the session sees the
        chunk, so re-running it is exact — this is the self-healing retry a
        supervisor restarting a crashed shard worker would perform.  A chunk
        that keeps failing (or raises a genuine error) is quarantined and the
        scan moves on; the stream never wedges on poison input.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                if _FAULT_INJECTOR is not None:
                    _FAULT_INJECTOR.shard_event(self.name, self.chunks_processed)
                self._process_chunk(chunk)
                return
            except FaultExhausted as error:
                self._quarantine(chunk, error)
                return
            except FaultError as error:
                if attempts > _MAX_SHARD_RETRIES:
                    self._quarantine(chunk, error)
                    return
                continue
            except Exception as error:
                self._quarantine(chunk, error)
                return

    def _quarantine(self, chunk: Sequence[Frame], error: BaseException) -> None:
        with self.lock:
            self.session.quarantine_chunk(list(chunk), error)
            self._emit_quarantines()

    def _process_chunk(self, frames: Sequence[Frame]) -> None:
        with self.lock:
            if self.queue.policy == "degrade":
                requested = self.queue.degrade_requested
                if requested != self.session.degraded:
                    self.session.set_degraded(requested)
            progress = self.session.push_chunk(frames)
            if self.session.degraded:
                self.degraded_chunks += 1
            self.chunks_processed += 1
            self._emit_progress(progress)
            self._check_budgets()
            self._emit_quarantines()

    # -- emission --------------------------------------------------------
    def _entry_for_sid(self, sid: int) -> StandingQuery | None:
        handle = self._sid_to_handle.get(sid)
        if handle is None:
            return None
        return self._registry.get(handle)

    def _deliver(self, emission: Emission, entry: StandingQuery | None) -> None:
        emitters: list[Emitter] = list(self._service_emitters)
        if entry is not None and entry.emitter is not None:
            emitters.append(entry.emitter)
        self.emitter_errors += deliver(
            emitters, emission, warned=self._warned_emitters
        )

    def _emit_quarantines(self) -> None:
        """Push new quarantine records as ``kind="fault"`` emissions.

        Runs under the shard lock.  Covers both shard-level quarantines
        (:meth:`_quarantine`) and the ones the session performed internally
        (detector retry exhaustion, parallel-worker redispatch exhaustion).
        """
        records = self.session.quarantined
        for record in records[self._faults_emitted :]:
            self._deliver(
                Emission(
                    stream=self.name,
                    key=str(record.site),
                    handle=-1,
                    kind="fault",
                    watermark=self.session.watermark,
                    fault=record,
                ),
                None,
            )
        self._faults_emitted = len(records)

    def _emit_progress(self, progress) -> None:
        for sid, matches in progress.new_matches.items():
            entry = self._entry_for_sid(sid)
            if entry is None:
                continue
            self._deliver(
                Emission(
                    stream=self.name,
                    key=entry.key,
                    handle=entry.handle,
                    kind="matches",
                    watermark=progress.watermark,
                    matched_frames=matches,
                ),
                entry,
            )
        for sid, windows in progress.new_windows.items():
            entry = self._entry_for_sid(sid)
            if entry is None:
                continue
            for window in windows:
                self._deliver(
                    Emission(
                        stream=self.name,
                        key=entry.key,
                        handle=entry.handle,
                        kind="window",
                        watermark=progress.watermark,
                        window=window,
                    ),
                    entry,
                )

    def _emit_tail_windows(self, entry: StandingQuery, result, emitted_before: int) -> None:
        """Emit windows flushed at finalisation (the truncated tail, if any).

        Windows completed during the scan were emitted incrementally from
        ``_emit_progress``; finalisation may flush at most one more partial
        window, and it must reach the emitters exactly once too.
        """
        windows = getattr(result, "windows", None)
        if not windows:
            return
        for window in windows[emitted_before:]:
            self._deliver(
                Emission(
                    stream=self.name,
                    key=entry.key,
                    handle=entry.handle,
                    kind="window",
                    watermark=self.session.watermark,
                    window=window,
                ),
                entry,
            )

    def _check_budgets(self) -> None:
        fresh = self.session.check_budgets()
        if not fresh:
            return
        self.violations.extend(fresh)
        for violation in fresh:
            entry = None
            for state in self.session.states:
                if any(existing is violation for existing in state.violations):
                    entry = self._entry_for_sid(state.sid)
                    break
            self._deliver(
                Emission(
                    stream=self.name,
                    key=violation.label,
                    handle=entry.handle if entry is not None else -1,
                    kind="violation",
                    watermark=self.session.watermark,
                    violation=violation,
                ),
                entry,
            )

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._worker_loop, name=f"query-service-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        self.queue.close(drain=drain)
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def finish(self) -> dict[int, object]:
        """Stop ingestion, drain, finalise every remaining query."""
        self.stop(drain=True)
        results: dict[int, object] = {}
        with self.lock:
            emitted_before = {
                state.sid: len(state.emitted_windows) for state in self.session.states
            }
            for sid, result in self.session.finish().items():
                entry = self._entry_for_sid(sid)
                if entry is None:
                    continue
                results[entry.handle] = result
                self._emit_tail_windows(entry, result, emitted_before[sid])
                self._deliver(
                    Emission(
                        stream=self.name,
                        key=entry.key,
                        handle=entry.handle,
                        kind="result",
                        watermark=self.session.watermark,
                        result=result,
                    ),
                    entry,
                )
            self._sid_to_handle.clear()
        return results

    def replan(self) -> list[PlanRevision]:
        with self.lock:
            return self.session.replan()

    def stats(self) -> StreamStats:
        with self.lock:
            queue = self.queue.snapshot()
            return StreamStats(
                stream=self.name,
                active_queries=len(self.session.active_sids),
                chunks_ingested=self.chunks_ingested,
                frames_ingested=self.frames_ingested,
                chunks_processed=self.chunks_processed,
                queue_depth=int(queue["depth"]),
                queue_high_water=int(queue["high_water"]),
                dropped_chunks=int(queue["dropped_chunks"]),
                degrade_events=int(queue["degrade_events"]),
                degraded=self.session.degraded,
                degraded_chunks=self.degraded_chunks,
                degraded_frames=self.session.degraded_frames,
                unique_steps=self.session.unique_step_count,
                total_steps=self.session.total_step_count,
                watermark=self.session.watermark,
                violations=tuple(self.violations),
                emitter_errors=self.emitter_errors,
                quarantined_chunks=len(self.session.quarantined),
                faults=current_report(tuple(self.session.quarantined)),
            )


class QueryService:
    """Register standing queries on live streams; collect incremental results.

    Quickstart::

        service = QueryService(emitters=[buffer := BufferEmitter()])
        service.attach_stream("lobby", detector)
        handle = service.register("lobby", query, cascade)
        service.start()
        for batch in arriving_batches:
            service.feed("lobby", batch)
        results = service.close()            # handle -> QueryExecutionResult
        windows = buffer.windows(handle)     # incremental window emissions
    """

    def __init__(self, emitters: Sequence[Emitter] = ()) -> None:
        self.registry = QueryRegistry()
        self._emitters = list(emitters)
        self._shards: dict[str, _StreamShard] = {}
        self._started = False
        # ``$REPRO_FAULTS`` chaos mode: install the described injector for
        # this service's lifetime (no-op when unset or when an explicit
        # injection session is already live — we must not fight it).
        self._env_injector = maybe_install_from_env()

    # -- streams ---------------------------------------------------------
    def attach_stream(
        self,
        name: str,
        detector: Detector,
        config: StreamConfig | None = None,
        *,
        clock: SimulatedClock | None = None,
    ) -> None:
        """Attach a named live stream; queries register against it by name."""
        if name in self._shards:
            raise ValueError(f"stream {name!r} is already attached")
        shard = _StreamShard(
            name, detector, config or StreamConfig(), self.registry,
            self._emitters, clock,
        )
        self._shards[name] = shard
        if self._started:
            shard.start()

    def _shard(self, name: str) -> _StreamShard:
        try:
            return self._shards[name]
        except KeyError:
            raise KeyError(
                f"unknown stream {name!r}; attached: {sorted(self._shards)}"
            ) from None

    # -- standing queries ------------------------------------------------
    def register(
        self,
        stream: str,
        query: Query,
        cascade: FilterCascade | None = None,
        *,
        key: str | None = None,
        budget: QueryBudget | None = None,
        emitter: Emitter | None = None,
        include_partial_windows: bool = True,
    ) -> int:
        """Register a standing query on ``stream``; returns its handle.

        The query starts covering frames from the stream's *current*
        watermark — it observes nothing retroactively.  ``emitter`` (if
        given) receives this query's emissions in addition to the
        service-wide emitters.
        """
        shard = self._shard(stream)
        if shard.queue.closed:
            raise AnalysisError(
                f"cannot register {query.name!r}: stream {stream!r} is closed "
                "to ingestion (stop/close already shut its queue)"
            )
        entry = self.registry.add(
            dict(
                stream=stream,
                key=key if key is not None else query.name,
                query=query,
                cascade=cascade if cascade is not None else FilterCascade(),
                budget=budget,
                emitter=emitter,
                include_partial_windows=include_partial_windows,
            )
        )
        shard.admit(entry)
        return entry.handle

    def deregister(self, handle: int):
        """Remove a standing query; flushes its tail window, returns its result."""
        entry = self.registry.get(handle)
        result = self._shard(entry.stream).evict(entry)
        self.registry.remove(handle)
        return result

    # -- ingestion -------------------------------------------------------
    def feed(self, stream: str, frames: Sequence[Frame]) -> int:
        """Ingest ``frames`` into ``stream``; returns the chunks accepted.

        Before :meth:`start` the frames are processed synchronously on the
        caller's thread (deterministic replay mode — what the parity tests
        use); after it they are enqueued for the shard worker per the
        stream's backpressure policy.
        """
        return self._shard(stream).feed(frames)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Start one ingestion worker per attached stream."""
        self._started = True
        for shard in self._shards.values():
            shard.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the workers (draining queued chunks by default)."""
        self._started = False
        for shard in self._shards.values():
            shard.stop(drain=drain)

    def close_stream(self, name: str) -> dict[int, object]:
        """Detach a stream, finalising its remaining queries (handle → result).

        Idempotent: closing a stream that is unknown or already closed
        returns ``{}`` instead of raising — teardown paths (``close``,
        ``__exit__``, supervisors cleaning up after a crash) may race or
        repeat without consequence.
        """
        shard = self._shards.get(name)
        if shard is None:
            return {}
        results = shard.finish()
        for handle in self.registry.handles_for(name):
            self.registry.remove(handle)
        del self._shards[name]
        return results

    def close(self) -> dict[int, object]:
        """Close every stream; returns handle → final result for all of them.

        Idempotent: a second ``close`` finds no streams and returns ``{}``.
        """
        results: dict[int, object] = {}
        for name in list(self._shards):
            results.update(self.close_stream(name))
        self._started = False
        if self._env_injector is not None:
            uninstall(self._env_injector)
            self._env_injector = None
        return results

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- checkpoint / resume ---------------------------------------------
    def checkpoint(self, stream: str) -> dict:
        """Snapshot the stream shard's live scan progress.

        The snapshot is picklable and self-contained (see
        :meth:`~repro.query.session.ScanSession.checkpoint`); taken under
        the shard lock, so it is consistent with respect to the worker.
        Pending queued chunks are *not* captured — re-feed anything fed
        after the checkpoint when resuming.
        """
        shard = self._shard(stream)
        with shard.lock:
            return shard.session.checkpoint()

    def restore_stream(self, name: str, snapshot: dict) -> None:
        """Restore a freshly attached stream from a :meth:`checkpoint`.

        The stream must have been re-attached and the same queries
        re-registered in the same order (the session verifies the keys);
        afterwards the shard continues exactly where the snapshot left off —
        no window re-emitted, none skipped.
        """
        shard = self._shard(name)
        with shard.lock:
            shard.session.restore(snapshot)

    # -- introspection ---------------------------------------------------
    def replan(self, stream: str) -> list[PlanRevision]:
        """Re-plan the stream's profiled cascades from observed pass rates."""
        return self._shard(stream).replan()

    def shared_cost_report(self, stream: str):
        """The stream shard's :class:`~repro.cost.SharedCostReport` so far."""
        shard = self._shard(stream)
        with shard.lock:
            return shard.session.shared_cost_report()

    def stats(self) -> ServiceStats:
        return ServiceStats(
            streams={name: shard.stats() for name, shard in self._shards.items()}
        )
