"""Bounded ingestion queues with explicit backpressure policy.

Every stream shard owns one :class:`IngestionQueue` of frame chunks.  A live
source that outruns the scan has to go *somewhere*, and the policy names the
three honest answers:

* ``block`` — the producer waits for space.  Backpressure propagates to the
  caller of ``feed``; queue depth stays bounded by construction.
* ``drop_oldest`` — the oldest queued chunk is evicted (counted in
  ``dropped_chunks``) to admit the new one.  Freshness over completeness.
* ``degrade`` — the queue admits the chunk but raises its ``degrade_requested``
  flag; the consuming shard flips its scan session into temporal-approximate
  mode until the depth falls back under half the capacity (hysteresis, so the
  mode does not flap at the boundary).  Each rising edge counts one degrade
  event.  The producer still blocks at twice the configured capacity — a hard
  backstop so a wedged consumer cannot buffer unboundedly.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Sequence

from repro.video.stream import Frame

#: the admissible backpressure policies, in documentation order
POLICIES = ("block", "drop_oldest", "degrade")

# Fault-injection hook, installed by repro.faults while a chaos session runs.
# ``None`` means off; the single use is guarded with ``is not None`` so the
# fault-free dequeue path is untouched (INV009).
_FAULT_INJECTOR = None


class IngestionQueue:
    """A bounded, closable FIFO of frame chunks with one backpressure policy."""

    def __init__(self, maxsize: int, policy: str = "block") -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        if policy not in POLICIES:
            raise ValueError(f"unknown backpressure policy {policy!r}; use one of {POLICIES}")
        self.maxsize = maxsize
        self.policy = policy
        self._chunks: deque[Sequence[Frame]] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # Telemetry (read under the lock via snapshot()).
        self.high_water = 0
        self.dropped_chunks = 0
        self.degrade_events = 0
        self.degrade_requested = False

    def _capacity(self) -> int:
        # ``degrade`` trades latency for liveness: the soft bound triggers the
        # degraded mode, the hard bound (2x) still blocks the producer.
        return self.maxsize * 2 if self.policy == "degrade" else self.maxsize

    def put(self, chunk: Sequence[Frame], timeout: float | None = None) -> bool:
        """Enqueue one chunk per the policy; returns False if closed/timed out."""
        with self._not_full:
            if self._closed:
                return False
            if self.policy == "drop_oldest":
                while len(self._chunks) >= self.maxsize:
                    self._chunks.popleft()
                    self.dropped_chunks += 1
            else:
                if self.policy == "degrade" and len(self._chunks) >= self.maxsize:
                    if not self.degrade_requested:
                        self.degrade_requested = True
                        self.degrade_events += 1
                while len(self._chunks) >= self._capacity():
                    if not self._not_full.wait(timeout=timeout):
                        return False
                    if self._closed:
                        return False
            self._chunks.append(chunk)
            self.high_water = max(self.high_water, len(self._chunks))
            self._not_empty.notify()
            return True

    def get(self, timeout: float | None = None) -> Sequence[Frame] | None:
        """Dequeue the next chunk; ``None`` when the queue is closed and drained.

        Also clears ``degrade_requested`` once the depth falls to half the
        soft capacity or below (the hysteresis that ends a degraded episode).
        """
        if _FAULT_INJECTOR is not None:
            # Injected queue stall: this dequeue times out empty exactly as a
            # slow producer would make it.  The chunk stays queued; callers
            # must already treat ``None`` as "poll again" (the shard worker's
            # timed loop does), so no work is lost.
            if _FAULT_INJECTOR.queue_stall():
                return None
        with self._not_empty:
            while not self._chunks:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            chunk = self._chunks.popleft()
            if self.degrade_requested and len(self._chunks) <= self.maxsize // 2:
                self.degrade_requested = False
            self._not_full.notify()
            return chunk

    def close(self, drain: bool = True) -> None:
        """Refuse further puts; pending gets drain (or drop) the backlog."""
        with self._lock:
            self._closed = True
            if not drain:
                self._chunks.clear()
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._chunks)

    def snapshot(self) -> dict[str, int | bool]:
        """A consistent read of the queue telemetry."""
        with self._lock:
            return {
                "depth": len(self._chunks),
                "high_water": self.high_water,
                "dropped_chunks": self.dropped_chunks,
                "degrade_events": self.degrade_events,
                "degrade_requested": self.degrade_requested,
            }
