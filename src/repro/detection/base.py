"""Detection data model and detector interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.spatial.geometry import Box
from repro.spatial.grid import Grid, GridMask
from repro.video.stream import Frame


@dataclass(frozen=True)
class Detection:
    """A single detected object in a frame."""

    class_name: str
    box: Box
    score: float
    color_name: str | None = None
    track_id: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"detection score must be in [0, 1]: {self.score}")


@dataclass(frozen=True)
class FrameDetections:
    """The full output of a detector for one frame."""

    frame_index: int
    detections: tuple[Detection, ...]
    latency_ms: float
    detector_name: str

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.detections)

    def count_of(self, class_name: str) -> int:
        return sum(1 for det in self.detections if det.class_name == class_name)

    def counts_by_class(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for det in self.detections:
            counts[det.class_name] = counts.get(det.class_name, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Object access
    # ------------------------------------------------------------------
    def of_class(self, class_name: str) -> list[Detection]:
        return [det for det in self.detections if det.class_name == class_name]

    def boxes_of(self, class_name: str) -> list[Box]:
        return [det.box for det in self.of_class(class_name)]

    def location_mask(self, grid: Grid, class_name: str) -> GridMask:
        """Occupancy mask of the detections of ``class_name`` on ``grid``."""
        return grid.mask_from_boxes(self.boxes_of(class_name))

    def filtered(self, min_score: float) -> "FrameDetections":
        """Detections with score at least ``min_score``."""
        return FrameDetections(
            frame_index=self.frame_index,
            detections=tuple(d for d in self.detections if d.score >= min_score),
            latency_ms=self.latency_ms,
            detector_name=self.detector_name,
        )


class Detector(abc.ABC):
    """A full-frame object detector."""

    #: component name used for simulated-cost accounting
    name: str = "detector"
    #: simulated latency charged per processed frame (milliseconds)
    latency_ms: float = 0.0

    @abc.abstractmethod
    def detect(self, frame: Frame) -> FrameDetections:
        """Detect all objects in ``frame``."""

    def detect_many(self, frames: Sequence[Frame]) -> list[FrameDetections]:
        """Detect objects in a batch of frames."""
        return [self.detect(frame) for frame in frames]
