"""Frozen convolutional feature backbones.

The paper never trains its backbones from scratch: the IC filters reuse the
first five convolution layers of VGG19 pre-trained on ImageNet, and the OD
filters reuse the first eight layers of Darknet-19 pre-trained on MS-COCO;
only the small branch heads are trained on the annotated video.  Pre-trained
weights are unavailable here, so the backbones are replaced by *fixed*
(untrained) convolutional feature extractors that play the same role: map a
rendered frame to a ``g x g x F`` grid of per-cell features from which the
trained branch heads estimate counts and locations.

Two backbone flavours mirror the paper's two filter families:

* :func:`detection_backbone` — features are pooled at the full ``g x g``
  resolution, preserving precise spatial detail (the Darknet features the OD
  branch taps are spatially sharp because the network is trained to localise);
* :func:`classification_backbone` — features are pooled at a 4x coarser
  resolution and up-sampled back to ``g x g``, reflecting that classification
  networks retain much weaker spatial information (their class-activation
  maps are blurry), which is exactly why the paper finds IC filters weaker at
  localisation yet competitive at counting.

Backbones also support fitting a static background model (per-pixel median
over training frames).  A fixed camera is a stated assumption of the paper,
and background-differencing is the classical analogue of the "objectness"
signal a pretrained detection backbone provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.video.stream import Frame


# Base feature channels produced per grid cell, in order.  When the backbone
# is configured with ``include_context=True`` a second copy of these channels,
# averaged over a 3x3 cell neighbourhood, is appended (giving the heads a
# notion of object extent, the way deeper conv layers grow receptive fields).
FEATURE_NAMES = (
    "red",
    "green",
    "blue",
    "intensity_std",
    "edge_energy",
    "background_diff_luma",
    "background_diff_color",
)


@dataclass(frozen=True)
class BackboneConfig:
    """Configuration of a feature backbone."""

    grid_size: int = 56
    pool_factor: int = 1
    use_background_model: bool = True
    include_context: bool = True
    name: str = "backbone"

    def __post_init__(self) -> None:
        if self.grid_size <= 0:
            raise ValueError(f"grid_size must be positive: {self.grid_size}")
        if self.pool_factor <= 0:
            raise ValueError(f"pool_factor must be positive: {self.pool_factor}")
        if self.grid_size % self.pool_factor != 0:
            raise ValueError(
                f"grid_size {self.grid_size} must be divisible by pool_factor {self.pool_factor}"
            )


def _block_reduce_mean(array: np.ndarray, out_size: int) -> np.ndarray:
    """Average-pool a square ``(H, W)`` or ``(H, W, C)`` array to ``out_size``."""
    height = array.shape[0]
    if height % out_size != 0:
        # Resize by nearest-neighbour first so the block size divides evenly.
        scale = max(int(np.ceil(height / out_size)), 1)
        target = out_size * scale
        indices = np.clip(
            (np.arange(target) * height / target).astype(int), 0, height - 1
        )
        array = array[indices][:, indices]
        height = target
    block = height // out_size
    if array.ndim == 2:
        reshaped = array.reshape(out_size, block, out_size, block)
        return reshaped.mean(axis=(1, 3))
    reshaped = array.reshape(out_size, block, out_size, block, array.shape[2])
    return reshaped.mean(axis=(1, 3))


def _block_reduce_mean_batch(array: np.ndarray, out_size: int) -> np.ndarray:
    """Batched :func:`_block_reduce_mean` over a leading ``N`` axis.

    Implemented with strided slice sums instead of a reshape + multi-axis
    ``mean`` — several times faster, because each add streams through
    contiguous memory instead of gathering tiny strided blocks.  The
    summation order deliberately replicates numpy's reduction order for the
    per-frame ``reshape(...).mean(axis=...)`` (trailing block axis first for
    ``(H, W)`` arrays, row-major block pairs for ``(H, W, C)`` arrays), so
    each slice of the result is bit-identical to :func:`_block_reduce_mean`
    on that frame.
    """
    height = array.shape[1]
    if height % out_size != 0:
        scale = max(int(np.ceil(height / out_size)), 1)
        target = out_size * scale
        indices = np.clip(
            (np.arange(target) * height / target).astype(int), 0, height - 1
        )
        array = array[:, indices][:, :, indices]
        height = target
    block = height // out_size
    if block == 1:
        return array / 1.0
    if array.ndim == 3:
        total = None
        for dx in range(block):
            part = array[:, :, dx::block]
            total = part if total is None else total + part
        acc = None
        for dy in range(block):
            part = total[:, dy::block, :]
            acc = part if acc is None else acc + part
        return acc / (block * block)
    acc = None
    for dy in range(block):
        for dx in range(block):
            part = array[:, dy::block, dx::block, :]
            acc = part if acc is None else acc + part
    return acc / (block * block)


def _block_reduce_std(array: np.ndarray, out_size: int) -> np.ndarray:
    """Per-block standard deviation of a square ``(H, W)`` array."""
    mean = _block_reduce_mean(array, out_size)
    mean_sq = _block_reduce_mean(array**2, out_size)
    variance = np.clip(mean_sq - mean**2, 0.0, None)
    return np.sqrt(variance)


def _block_reduce_std_batch(array: np.ndarray, out_size: int) -> np.ndarray:
    """Batched :func:`_block_reduce_std` over a leading ``N`` axis."""
    mean = _block_reduce_mean_batch(array, out_size)
    mean_sq = _block_reduce_mean_batch(array**2, out_size)
    variance = np.clip(mean_sq - mean**2, 0.0, None)
    return np.sqrt(variance)


def _channel_mean_batch(array: np.ndarray) -> np.ndarray:
    """Mean over the trailing channel axis of ``(N, H, W, 3)`` without a
    strided ufunc reduction (which numpy executes an order of magnitude
    slower than three fused slice adds)."""
    mean = array[..., 0] + array[..., 1]
    mean += array[..., 2]
    mean /= array.shape[-1]
    return mean


def _block_sum_int_batch(array: np.ndarray, out_size: int) -> np.ndarray:
    """Exact per-block int64 sums of an integer ``(N, H, W)`` batch.

    The accumulator must hold ``max(|array|) * block**2``; the gray-squared
    caller sums values up to ``765**2 = 585225`` per pixel, which overflows
    int32 already at 61x61 blocks, so accumulation is ``int64`` (safe for
    any realistic frame-to-grid ratio).
    """
    height = array.shape[1]
    block = height // out_size
    total = None
    for dx in range(block):
        part = array[:, :, dx::block]
        total = part.astype(np.int64) if total is None else total + part
    acc = None
    for dy in range(block):
        part = total[:, dy::block, :]
        acc = part.copy() if acc is None else np.add(acc, part, out=acc)
    return acc


def _edge_energy_batch(gray: np.ndarray) -> np.ndarray:
    """Batched Sobel magnitude using the separable form of the kernels.

    ``[1, 2, 1] ⊗ [-1, 0, 1]`` factorisation: smooth along one axis, then
    difference along the other — six passes instead of twelve.
    """
    padded = np.pad(gray, ((0, 0), (1, 1), (1, 1)), mode="edge")
    smooth_rows = padded[:, :-2, :] + 2.0 * padded[:, 1:-1, :]
    smooth_rows += padded[:, 2:, :]
    gx = smooth_rows[:, :, 2:] - smooth_rows[:, :, :-2]
    smooth_cols = padded[:, :, :-2] + 2.0 * padded[:, :, 1:-1]
    smooth_cols += padded[:, :, 2:]
    gy = smooth_cols[:, 2:, :] - smooth_cols[:, :-2, :]
    gx *= gx
    gy *= gy
    gx += gy
    return np.sqrt(gx, out=gx)


def _neighbourhood_mean(features: np.ndarray, radius: int = 1) -> np.ndarray:
    """Average each cell's features over a ``(2r+1) x (2r+1)`` cell neighbourhood."""
    padded = np.pad(
        features, ((radius, radius), (radius, radius), (0, 0)), mode="edge"
    )
    size = 2 * radius + 1
    accumulated = np.zeros_like(features, dtype=np.float64)
    for dy in range(size):
        for dx in range(size):
            accumulated += padded[
                dy : dy + features.shape[0], dx : dx + features.shape[1], :
            ]
    return accumulated / (size * size)


def _neighbourhood_mean_batch(features: np.ndarray, radius: int = 1) -> np.ndarray:
    """Batched :func:`_neighbourhood_mean` over ``(N, g, g, F)`` features.

    Uses the separable form of the box filter (sum over rows, then over
    columns): ``2 * (2r + 1)`` passes instead of ``(2r + 1)^2``.
    """
    padded = np.pad(
        features, ((0, 0), (radius, radius), (radius, radius), (0, 0)), mode="edge"
    )
    size = 2 * radius + 1
    rows = features.shape[1]
    cols = features.shape[2]
    row_sum = None
    for dy in range(size):
        part = padded[:, dy : dy + rows, :, :]
        row_sum = part.copy() if row_sum is None else np.add(row_sum, part, out=row_sum)
    accumulated = None
    for dx in range(size):
        part = row_sum[:, :, dx : dx + cols, :]
        accumulated = (
            part.copy() if accumulated is None else np.add(accumulated, part, out=accumulated)
        )
    accumulated /= size * size
    return accumulated


def _edge_energy(gray: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude (a fixed 3x3 convolution pair).

    Per-frame ``(H, W)`` only; the batched paths use the separable
    :func:`_edge_energy_batch` / integer Sobel instead.
    """
    padded = np.pad(gray, 1, mode="edge")
    gx = (
        padded[:-2, 2:] + 2 * padded[1:-1, 2:] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[1:-1, :-2] - padded[2:, :-2]
    )
    gy = (
        padded[2:, :-2] + 2 * padded[2:, 1:-1] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[:-2, 1:-1] - padded[:-2, 2:]
    )
    return np.sqrt(gx**2 + gy**2)


def _assemble_base_features(
    red: np.ndarray,
    green: np.ndarray,
    blue: np.ndarray,
    intensity_std: np.ndarray,
    edge: np.ndarray,
    diff_luma: np.ndarray,
    diff_color: np.ndarray,
) -> np.ndarray:
    """Pack the seven pooled base-feature planes into ``(N, p, p, 7)``."""
    n, rows, cols = red.shape
    features = np.empty((n, rows, cols, len(FEATURE_NAMES)))
    features[..., 0] = red
    features[..., 1] = green
    features[..., 2] = blue
    features[..., 3] = intensity_std
    features[..., 4] = edge
    features[..., 5] = diff_luma
    features[..., 6] = diff_color
    return features


class FeatureBackbone:
    """Maps rendered frames to ``(grid, grid, F)`` per-cell feature arrays."""

    def __init__(self, config: BackboneConfig | None = None) -> None:
        self._config = config or BackboneConfig()
        self._background: np.ndarray | None = None
        self._background_doubled: np.ndarray | None = None

    @property
    def config(self) -> BackboneConfig:
        return self._config

    @property
    def name(self) -> str:
        return self._config.name

    @property
    def num_features(self) -> int:
        base = len(FEATURE_NAMES)
        return base * 2 if self._config.include_context else base

    @property
    def grid_size(self) -> int:
        return self._config.grid_size

    # ------------------------------------------------------------------
    # Background model
    # ------------------------------------------------------------------
    def fit_background(self, frames: Iterable[Frame], max_frames: int = 60) -> None:
        """Estimate the static background as the per-pixel median of sample frames."""
        images = []
        for index, frame in enumerate(frames):
            if index >= max_frames:
                break
            images.append(frame.image.astype(np.float32))
        if not images:
            raise ValueError("fit_background needs at least one frame")
        self._background = np.median(np.stack(images, axis=0), axis=0)
        # A median of uint8 frames is always an exact half-integer, which is
        # what lets the batched path run the background difference in exact
        # int16 arithmetic (see extract_batch).
        doubled = 2.0 * self._background.astype(np.float64)
        rounded = np.rint(doubled)
        self._background_doubled = (
            rounded.astype(np.int16) if np.array_equal(doubled, rounded) else None
        )

    @property
    def has_background(self) -> bool:
        return self._background is not None

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    def extract(self, image: np.ndarray) -> np.ndarray:
        """Per-cell features of one rendered frame.

        ``image`` is an ``(H, W, 3)`` uint8 array; the result has shape
        ``(grid_size, grid_size, num_features)`` and dtype float64.
        """
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) image, got {image.shape}")
        config = self._config
        pooled_size = config.grid_size // config.pool_factor
        pixels = image.astype(np.float64) / 255.0
        gray = pixels.mean(axis=2)

        rgb = _block_reduce_mean(pixels, pooled_size)
        intensity_std = _block_reduce_std(gray, pooled_size)
        edge = _block_reduce_mean(_edge_energy(gray), pooled_size)

        if config.use_background_model and self._background is not None:
            background = self._background / 255.0
            diff = pixels - background
            diff_luma = _block_reduce_mean(np.abs(diff).mean(axis=2), pooled_size)
            diff_color = _block_reduce_mean(
                np.abs(diff - diff.mean(axis=2, keepdims=True)).mean(axis=2), pooled_size
            )
        else:
            diff_luma = np.zeros((pooled_size, pooled_size))
            diff_color = np.zeros((pooled_size, pooled_size))

        features = np.stack(
            [
                rgb[..., 0],
                rgb[..., 1],
                rgb[..., 2],
                intensity_std,
                edge,
                diff_luma,
                diff_color,
            ],
            axis=-1,
        )
        if config.include_context:
            features = np.concatenate([features, _neighbourhood_mean(features)], axis=-1)
        if config.pool_factor > 1:
            features = np.repeat(
                np.repeat(features, config.pool_factor, axis=0), config.pool_factor, axis=1
            )
        return features

    def extract_batch(self, images: np.ndarray) -> np.ndarray:
        """Per-cell features for a batch of frames in one vectorized pass.

        ``images`` is an ``(N, H, W, 3)`` uint8 array; the result has shape
        ``(N, grid_size, grid_size, num_features)``.  The computation is
        mathematically identical to :meth:`extract` per frame, but fuses and
        amortises the numpy passes over the whole batch (separable Sobel and
        box filters, slice-based block reductions, in-place accumulation),
        which is what makes the batched filter path several times faster
        than per-frame extraction.  Results agree with :meth:`extract` to
        floating-point rounding, so thresholded decisions are unaffected.
        """
        if images.ndim != 4 or images.shape[3] != 3:
            raise ValueError(f"expected (N, H, W, 3) images, got {images.shape}")
        config = self._config
        pooled_size = config.grid_size // config.pool_factor
        n = images.shape[0]
        height, width = images.shape[1], images.shape[2]
        use_background = config.use_background_model and self._background is not None
        integer_path = (
            images.dtype == np.uint8
            and height == width
            and height % pooled_size == 0
            and (not use_background or self._background_doubled is not None)
        )
        if integer_path:
            features = self._base_features_uint8(images, pooled_size, use_background)
        else:
            features = self._base_features_float(images, pooled_size, use_background)
        if config.include_context:
            features = np.concatenate(
                [features, _neighbourhood_mean_batch(features)], axis=-1
            )
        if config.pool_factor > 1:
            features = np.repeat(
                np.repeat(features, config.pool_factor, axis=1), config.pool_factor, axis=2
            )
        return features

    def _base_features_float(
        self, images: np.ndarray, pooled_size: int, use_background: bool
    ) -> np.ndarray:
        """Float fallback of the batched base-feature computation."""
        n = images.shape[0]
        pixels = images / 255.0
        gray = _channel_mean_batch(pixels)

        rgb = _block_reduce_mean_batch(pixels, pooled_size)
        intensity_std = _block_reduce_std_batch(gray, pooled_size)
        edge = _block_reduce_mean_batch(_edge_energy_batch(gray), pooled_size)

        if use_background:
            background = self._background / 255.0
            diff = pixels - background
            abs_diff = np.abs(diff)
            diff_luma = _block_reduce_mean_batch(
                _channel_mean_batch(abs_diff), pooled_size
            )
            channel_mean = _channel_mean_batch(diff)
            color = np.abs(diff[..., 0] - channel_mean)
            for channel in (1, 2):
                color += np.abs(diff[..., channel] - channel_mean)
            color /= 3.0
            diff_color = _block_reduce_mean_batch(color, pooled_size)
        else:
            diff_luma = np.zeros((n, pooled_size, pooled_size))
            diff_color = np.zeros((n, pooled_size, pooled_size))

        return _assemble_base_features(
            rgb[..., 0], rgb[..., 1], rgb[..., 2],
            intensity_std, edge, diff_luma, diff_color,
        )

    def _base_features_uint8(
        self, images: np.ndarray, pooled_size: int, use_background: bool
    ) -> np.ndarray:
        """Exact-integer fast path of the batched base-feature computation.

        All base features are (block means of) linear or absolute-value
        functions of the uint8 pixels, so the full-resolution arithmetic runs
        in int16/int32 (int64 block accumulators) — a fraction of the float64
        memory traffic — with exact integer sums that are divided into floats
        only at pooled resolution.
        Background differences use the doubled background (``2 * median`` of
        uint8 frames is always integral), i.e. every integer intermediate is
        exact; results differ from the float path only by float rounding.
        """
        n = images.shape[0]
        height = images.shape[1]
        block = height // pooled_size
        denominator = float(255 * block * block)
        small = images.astype(np.int16)

        # rgb channels: exact block sums of the raw pixel values.
        red = _block_sum_int_batch(small[..., 0], pooled_size) / denominator
        green = _block_sum_int_batch(small[..., 1], pooled_size) / denominator
        blue = _block_sum_int_batch(small[..., 2], pooled_size) / denominator

        # Grayscale moments: gray = (r + g + b) / 765, so per-block mean and
        # mean-square come from exact sums of G and G^2.
        gray_int = small[..., 0] + small[..., 1]
        gray_int += small[..., 2]  # <= 765, fits int16
        gray_sq = gray_int.astype(np.int32)
        gray_sq *= gray_sq  # <= 585225
        mean = _block_sum_int_batch(gray_int, pooled_size) / (765.0 * block * block)
        mean_sq = _block_sum_int_batch(gray_sq, pooled_size) / (
            765.0 * 765.0 * block * block
        )
        variance = np.clip(mean_sq - mean**2, 0.0, None)
        intensity_std = np.sqrt(variance)

        # Sobel magnitude: the gradients are integer-linear in G; only the
        # final square root runs in float, before the block mean.
        padded = np.pad(gray_int, ((0, 0), (1, 1), (1, 1)), mode="edge")
        smooth_rows = padded[:, :-2, :] + 2 * padded[:, 1:-1, :]
        smooth_rows += padded[:, 2:, :]  # <= 3060
        gx = smooth_rows[:, :, 2:] - smooth_rows[:, :, :-2]
        smooth_cols = padded[:, :, :-2] + 2 * padded[:, :, 1:-1]
        smooth_cols += padded[:, :, 2:]
        gy = smooth_cols[:, 2:, :] - smooth_cols[:, :-2, :]
        energy = gx.astype(np.int32)
        energy *= energy
        gy32 = gy.astype(np.int32)
        gy32 *= gy32
        energy += gy32  # <= 2 * 6120^2, fits int32
        edge = _block_reduce_mean_batch(np.sqrt(energy), pooled_size) / 765.0

        if use_background:
            # Signed doubled difference: sd = 2*pixel - 2*background, exact.
            signed = small + small  # 2 * pixel, <= 510
            signed -= self._background_doubled
            abs_sum = np.abs(signed[..., 0]) + np.abs(signed[..., 1])
            abs_sum += np.abs(signed[..., 2])  # <= 3060
            diff_luma = _block_sum_int_batch(abs_sum, pooled_size) / (
                2.0 * 3.0 * denominator
            )
            # |d_c - mean(d)| = |3*sd_c - (sd_0+sd_1+sd_2)| / (3 * 2 * 255)
            channel_sum = signed[..., 0] + signed[..., 1]
            channel_sum += signed[..., 2]  # <= 4590 in magnitude
            color_sum = None
            for channel in range(3):
                term = signed[..., channel] * np.int16(3)
                term -= channel_sum
                np.abs(term, out=term)  # <= 9180
                color_sum = term if color_sum is None else color_sum + term
            diff_color = _block_sum_int_batch(color_sum, pooled_size) / (
                3.0 * 3.0 * 2.0 * denominator
            )
        else:
            diff_luma = np.zeros((n, pooled_size, pooled_size))
            diff_color = np.zeros((n, pooled_size, pooled_size))

        return _assemble_base_features(
            red, green, blue, intensity_std, edge, diff_luma, diff_color
        )

    def extract_frame(self, frame: Frame) -> np.ndarray:
        """Convenience wrapper taking a :class:`~repro.video.stream.Frame`."""
        return self.extract(frame.image)


def classification_backbone(grid_size: int = 56, pool_factor: int = 2) -> FeatureBackbone:
    """The IC-family backbone: spatially coarser, classification-style features."""
    return FeatureBackbone(
        BackboneConfig(
            grid_size=grid_size,
            pool_factor=pool_factor,
            use_background_model=True,
            name="vgg19_conv5",
        )
    )


def detection_backbone(grid_size: int = 56) -> FeatureBackbone:
    """The OD-family backbone: spatially sharp, detection-style features."""
    return FeatureBackbone(
        BackboneConfig(
            grid_size=grid_size,
            pool_factor=1,
            use_background_model=True,
            name="darknet19_conv8",
        )
    )
