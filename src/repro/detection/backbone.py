"""Frozen convolutional feature backbones.

The paper never trains its backbones from scratch: the IC filters reuse the
first five convolution layers of VGG19 pre-trained on ImageNet, and the OD
filters reuse the first eight layers of Darknet-19 pre-trained on MS-COCO;
only the small branch heads are trained on the annotated video.  Pre-trained
weights are unavailable here, so the backbones are replaced by *fixed*
(untrained) convolutional feature extractors that play the same role: map a
rendered frame to a ``g x g x F`` grid of per-cell features from which the
trained branch heads estimate counts and locations.

Two backbone flavours mirror the paper's two filter families:

* :func:`detection_backbone` — features are pooled at the full ``g x g``
  resolution, preserving precise spatial detail (the Darknet features the OD
  branch taps are spatially sharp because the network is trained to localise);
* :func:`classification_backbone` — features are pooled at a 4x coarser
  resolution and up-sampled back to ``g x g``, reflecting that classification
  networks retain much weaker spatial information (their class-activation
  maps are blurry), which is exactly why the paper finds IC filters weaker at
  localisation yet competitive at counting.

Backbones also support fitting a static background model (per-pixel median
over training frames).  A fixed camera is a stated assumption of the paper,
and background-differencing is the classical analogue of the "objectness"
signal a pretrained detection backbone provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.video.stream import Frame


# Base feature channels produced per grid cell, in order.  When the backbone
# is configured with ``include_context=True`` a second copy of these channels,
# averaged over a 3x3 cell neighbourhood, is appended (giving the heads a
# notion of object extent, the way deeper conv layers grow receptive fields).
FEATURE_NAMES = (
    "red",
    "green",
    "blue",
    "intensity_std",
    "edge_energy",
    "background_diff_luma",
    "background_diff_color",
)


@dataclass(frozen=True)
class BackboneConfig:
    """Configuration of a feature backbone."""

    grid_size: int = 56
    pool_factor: int = 1
    use_background_model: bool = True
    include_context: bool = True
    name: str = "backbone"

    def __post_init__(self) -> None:
        if self.grid_size <= 0:
            raise ValueError(f"grid_size must be positive: {self.grid_size}")
        if self.pool_factor <= 0:
            raise ValueError(f"pool_factor must be positive: {self.pool_factor}")
        if self.grid_size % self.pool_factor != 0:
            raise ValueError(
                f"grid_size {self.grid_size} must be divisible by pool_factor {self.pool_factor}"
            )


def _block_reduce_mean(array: np.ndarray, out_size: int) -> np.ndarray:
    """Average-pool a square ``(H, W)`` or ``(H, W, C)`` array to ``out_size``."""
    height = array.shape[0]
    if height % out_size != 0:
        # Resize by nearest-neighbour first so the block size divides evenly.
        scale = max(int(np.ceil(height / out_size)), 1)
        target = out_size * scale
        indices = np.clip(
            (np.arange(target) * height / target).astype(int), 0, height - 1
        )
        array = array[indices][:, indices]
        height = target
    block = height // out_size
    if array.ndim == 2:
        reshaped = array.reshape(out_size, block, out_size, block)
        return reshaped.mean(axis=(1, 3))
    reshaped = array.reshape(out_size, block, out_size, block, array.shape[2])
    return reshaped.mean(axis=(1, 3))


def _block_reduce_std(array: np.ndarray, out_size: int) -> np.ndarray:
    """Per-block standard deviation of a square ``(H, W)`` array."""
    mean = _block_reduce_mean(array, out_size)
    mean_sq = _block_reduce_mean(array**2, out_size)
    variance = np.clip(mean_sq - mean**2, 0.0, None)
    return np.sqrt(variance)


def _neighbourhood_mean(features: np.ndarray, radius: int = 1) -> np.ndarray:
    """Average each cell's features over a ``(2r+1) x (2r+1)`` cell neighbourhood."""
    padded = np.pad(
        features, ((radius, radius), (radius, radius), (0, 0)), mode="edge"
    )
    size = 2 * radius + 1
    accumulated = np.zeros_like(features, dtype=np.float64)
    for dy in range(size):
        for dx in range(size):
            accumulated += padded[
                dy : dy + features.shape[0], dx : dx + features.shape[1], :
            ]
    return accumulated / (size * size)


def _edge_energy(gray: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude (a fixed 3x3 convolution pair)."""
    padded = np.pad(gray, 1, mode="edge")
    gx = (
        padded[:-2, 2:] + 2 * padded[1:-1, 2:] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[1:-1, :-2] - padded[2:, :-2]
    )
    gy = (
        padded[2:, :-2] + 2 * padded[2:, 1:-1] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[:-2, 1:-1] - padded[:-2, 2:]
    )
    return np.sqrt(gx**2 + gy**2)


class FeatureBackbone:
    """Maps rendered frames to ``(grid, grid, F)`` per-cell feature arrays."""

    def __init__(self, config: BackboneConfig | None = None) -> None:
        self._config = config or BackboneConfig()
        self._background: np.ndarray | None = None

    @property
    def config(self) -> BackboneConfig:
        return self._config

    @property
    def name(self) -> str:
        return self._config.name

    @property
    def num_features(self) -> int:
        base = len(FEATURE_NAMES)
        return base * 2 if self._config.include_context else base

    @property
    def grid_size(self) -> int:
        return self._config.grid_size

    # ------------------------------------------------------------------
    # Background model
    # ------------------------------------------------------------------
    def fit_background(self, frames: Iterable[Frame], max_frames: int = 60) -> None:
        """Estimate the static background as the per-pixel median of sample frames."""
        images = []
        for index, frame in enumerate(frames):
            if index >= max_frames:
                break
            images.append(frame.image.astype(np.float32))
        if not images:
            raise ValueError("fit_background needs at least one frame")
        self._background = np.median(np.stack(images, axis=0), axis=0)

    @property
    def has_background(self) -> bool:
        return self._background is not None

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    def extract(self, image: np.ndarray) -> np.ndarray:
        """Per-cell features of one rendered frame.

        ``image`` is an ``(H, W, 3)`` uint8 array; the result has shape
        ``(grid_size, grid_size, num_features)`` and dtype float64.
        """
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) image, got {image.shape}")
        config = self._config
        pooled_size = config.grid_size // config.pool_factor
        pixels = image.astype(np.float64) / 255.0
        gray = pixels.mean(axis=2)

        rgb = _block_reduce_mean(pixels, pooled_size)
        intensity_std = _block_reduce_std(gray, pooled_size)
        edge = _block_reduce_mean(_edge_energy(gray), pooled_size)

        if config.use_background_model and self._background is not None:
            background = self._background / 255.0
            diff = pixels - background
            diff_luma = _block_reduce_mean(np.abs(diff).mean(axis=2), pooled_size)
            diff_color = _block_reduce_mean(
                np.abs(diff - diff.mean(axis=2, keepdims=True)).mean(axis=2), pooled_size
            )
        else:
            diff_luma = np.zeros((pooled_size, pooled_size))
            diff_color = np.zeros((pooled_size, pooled_size))

        features = np.stack(
            [
                rgb[..., 0],
                rgb[..., 1],
                rgb[..., 2],
                intensity_std,
                edge,
                diff_luma,
                diff_color,
            ],
            axis=-1,
        )
        if config.include_context:
            features = np.concatenate([features, _neighbourhood_mean(features)], axis=-1)
        if config.pool_factor > 1:
            features = np.repeat(
                np.repeat(features, config.pool_factor, axis=0), config.pool_factor, axis=1
            )
        return features

    def extract_frame(self, frame: Frame) -> np.ndarray:
        """Convenience wrapper taking a :class:`~repro.video.stream.Frame`."""
        return self.extract(frame.image)


def classification_backbone(grid_size: int = 56, pool_factor: int = 2) -> FeatureBackbone:
    """The IC-family backbone: spatially coarser, classification-style features."""
    return FeatureBackbone(
        BackboneConfig(
            grid_size=grid_size,
            pool_factor=pool_factor,
            use_background_model=True,
            name="vgg19_conv5",
        )
    )


def detection_backbone(grid_size: int = 56) -> FeatureBackbone:
    """The OD-family backbone: spatially sharp, detection-style features."""
    return FeatureBackbone(
        BackboneConfig(
            grid_size=grid_size,
            pool_factor=1,
            use_background_model=True,
            name="darknet19_conv8",
        )
    )
