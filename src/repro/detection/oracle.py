"""Reference detector simulator (the paper's Mask R-CNN).

In the paper Mask R-CNN plays two roles: it *defines* the ground truth (all
training labels and all query accuracy numbers are measured against its
output) and it is the expensive verification step in the query executor.  The
simulator mirrors that: it reads the scene ground truth and perturbs it with
a calibrated error model (missed detections for small or heavily occluded
objects, bounding-box jitter, occasional class confusion), charging the
paper's 200 ms/frame latency to the simulated clock.

With the default error model the simulator is *almost* perfect — as Mask
R-CNN effectively is, relative to the much weaker filters — but the error
model is explicit and configurable so experiments can study sensitivity to
annotation noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cost import MASK_RCNN_MS, SimulatedClock
from repro.detection.base import Detection, Detector, FrameDetections
from repro.spatial.geometry import Box
from repro.video.objects import ObjectState
from repro.video.stream import Frame


@dataclass(frozen=True)
class DetectorErrorModel:
    """Error characteristics of a simulated detector.

    * ``miss_rate`` — base probability of missing any object;
    * ``small_object_miss_rate`` — additional miss probability for objects
      smaller than ``small_object_area`` (in logical-frame pixels);
    * ``box_jitter`` — standard deviation of the relative perturbation applied
      to box centers and sizes;
    * ``confusion_rate`` — probability of reporting a wrong class;
    * ``false_positive_rate`` — expected number of spurious detections per
      frame.
    """

    miss_rate: float = 0.0
    small_object_miss_rate: float = 0.0
    small_object_area: float = 250.0
    box_jitter: float = 0.0
    confusion_rate: float = 0.0
    false_positive_rate: float = 0.0
    score_mean: float = 0.95
    score_std: float = 0.03

    def __post_init__(self) -> None:
        for name in ("miss_rate", "small_object_miss_rate", "confusion_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        if self.box_jitter < 0 or self.false_positive_rate < 0:
            raise ValueError("box_jitter and false_positive_rate must be non-negative")


class ReferenceDetector(Detector):
    """The 'Mask R-CNN' stand-in: near-perfect, slow, and the source of truth."""

    name = "mask_rcnn"

    def __init__(
        self,
        class_names: tuple[str, ...] | list[str] | None = None,
        error_model: DetectorErrorModel | None = None,
        latency_ms: float = MASK_RCNN_MS,
        clock: SimulatedClock | None = None,
        seed: int = 0,
    ) -> None:
        self.class_names = tuple(class_names) if class_names else ()
        self.error_model = error_model or DetectorErrorModel(
            miss_rate=0.01,
            small_object_miss_rate=0.05,
            box_jitter=0.02,
            confusion_rate=0.0,
            false_positive_rate=0.0,
        )
        self.latency_ms = latency_ms
        self.clock = clock
        self._seed = seed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rng_for_frame(self, frame_index: int) -> np.random.Generator:
        # Deterministic per-frame randomness: the same frame always yields the
        # same detections, as a real (deterministic) network would.
        return np.random.default_rng((self._seed, frame_index))

    def _perturbed_box(
        self, state: ObjectState, rng: np.random.Generator, frame_w: int, frame_h: int
    ) -> Box | None:
        jitter = self.error_model.box_jitter
        box = state.box
        if jitter > 0:
            width = box.width * float(1.0 + rng.normal(0.0, jitter))
            height = box.height * float(1.0 + rng.normal(0.0, jitter))
            cx = box.center.x + float(rng.normal(0.0, jitter * box.width))
            cy = box.center.y + float(rng.normal(0.0, jitter * box.height))
            width = max(width, 2.0)
            height = max(height, 2.0)
            box = Box.from_center(cx, cy, width, height)
        return box.clipped(frame_w, frame_h)

    def _detect_class(self, state: ObjectState, rng: np.random.Generator) -> str:
        if self.error_model.confusion_rate > 0 and self.class_names:
            if rng.uniform() < self.error_model.confusion_rate:
                others = [c for c in self.class_names if c != state.class_name]
                if others:
                    return str(rng.choice(others))
        return state.class_name

    def _score(self, rng: np.random.Generator) -> float:
        score = rng.normal(self.error_model.score_mean, self.error_model.score_std)
        return float(np.clip(score, 0.05, 1.0))

    # ------------------------------------------------------------------
    # Detector interface
    # ------------------------------------------------------------------
    def detect(self, frame: Frame) -> FrameDetections:
        if self.clock is not None:
            self.clock.charge(self.name, self.latency_ms)
        rng = self._rng_for_frame(frame.index)
        ground_truth = frame.ground_truth
        detections: list[Detection] = []
        for state in ground_truth.objects:
            miss_probability = self.error_model.miss_rate
            if state.box.area < self.error_model.small_object_area:
                miss_probability += self.error_model.small_object_miss_rate
            if rng.uniform() < miss_probability:
                continue
            box = self._perturbed_box(
                state, rng, ground_truth.frame_width, ground_truth.frame_height
            )
            if box is None:
                continue
            detections.append(
                Detection(
                    class_name=self._detect_class(state, rng),
                    box=box,
                    score=self._score(rng),
                    color_name=state.color_name,
                    track_id=state.track_id,
                )
            )
        # Spurious detections.
        expected_fp = self.error_model.false_positive_rate
        if expected_fp > 0:
            num_fp = int(rng.poisson(expected_fp))
            for _ in range(num_fp):
                if not self.class_names:
                    break
                width = float(rng.uniform(10, 60))
                height = float(rng.uniform(10, 60))
                cx = float(rng.uniform(width, ground_truth.frame_width - width))
                cy = float(rng.uniform(height, ground_truth.frame_height - height))
                detections.append(
                    Detection(
                        class_name=str(rng.choice(list(self.class_names))),
                        box=Box.from_center(cx, cy, width, height),
                        score=float(rng.uniform(0.3, 0.7)),
                    )
                )
        return FrameDetections(
            frame_index=frame.index,
            detections=tuple(detections),
            latency_ms=self.latency_ms,
            detector_name=self.name,
        )
