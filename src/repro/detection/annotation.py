"""Dataset annotation: producing filter training labels with the reference detector.

The paper does not use the datasets' original labels — it annotates every
training frame with Mask R-CNN and trains the filters against those
annotations ("In order to maintain the consistency of our models, we annotate
the three data sets using the Mask R-CNN Detector").  This module reproduces
that pipeline: run the reference detector over a stream, and for every frame
record the per-class counts and the per-class ``g x g`` location grids
obtained by down-scaling the detector's bounding boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.detection.base import Detector, FrameDetections
from repro.spatial.grid import Grid
from repro.video.stream import VideoStream


@dataclass(frozen=True)
class AnnotatedFrame:
    """Labels of one frame: per-class counts and per-class location grids."""

    frame_index: int
    counts: dict[str, int]
    location_grids: dict[str, np.ndarray]  # class -> (g, g) bool array

    @property
    def total_count(self) -> int:
        return sum(self.counts.values())

    def count_of(self, class_name: str) -> int:
        return self.counts.get(class_name, 0)

    def grid_of(self, class_name: str) -> np.ndarray:
        grids = self.location_grids
        if class_name in grids:
            return grids[class_name]
        # A class that never occurred still has a well-defined (empty) grid.
        any_grid = next(iter(grids.values()), None)
        if any_grid is None:
            raise KeyError(f"no location grids recorded, cannot infer shape for {class_name!r}")
        return np.zeros_like(any_grid)


@dataclass
class AnnotationSet:
    """Annotations for a set of frames of one stream."""

    stream_name: str
    class_names: tuple[str, ...]
    grid: Grid
    frames: list[AnnotatedFrame]

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)

    def counts_matrix(self) -> np.ndarray:
        """``(num_frames, num_classes)`` matrix of per-class counts."""
        matrix = np.zeros((len(self.frames), len(self.class_names)), dtype=float)
        for row, frame in enumerate(self.frames):
            for col, class_name in enumerate(self.class_names):
                matrix[row, col] = frame.count_of(class_name)
        return matrix

    def total_counts(self) -> np.ndarray:
        """``(num_frames,)`` vector of total counts."""
        return np.array([frame.total_count for frame in self.frames], dtype=float)

    def location_tensor(self, class_name: str) -> np.ndarray:
        """``(num_frames, g, g)`` boolean tensor of location grids for one class."""
        return np.stack([frame.grid_of(class_name) for frame in self.frames], axis=0)

    def class_frequencies(self) -> dict[str, float]:
        """Fraction of frames containing each class (the paper's per-class loss weights)."""
        totals = {name: 0 for name in self.class_names}
        for frame in self.frames:
            for name in self.class_names:
                if frame.count_of(name) > 0:
                    totals[name] += 1
        n = max(len(self.frames), 1)
        return {name: totals[name] / n for name in self.class_names}


def annotate_frame(
    detections: FrameDetections, class_names: Sequence[str], grid: Grid
) -> AnnotatedFrame:
    """Turn one frame's detections into count and location labels."""
    counts = {name: detections.count_of(name) for name in class_names}
    grids = {
        name: detections.location_mask(grid, name).values.copy() for name in class_names
    }
    return AnnotatedFrame(
        frame_index=detections.frame_index, counts=counts, location_grids=grids
    )


def annotate_stream(
    stream: VideoStream,
    detector: Detector,
    class_names: Sequence[str],
    grid: Grid,
    frame_indices: Iterable[int] | None = None,
) -> AnnotationSet:
    """Annotate (a subset of) a stream with ``detector``.

    ``frame_indices`` defaults to every frame of the stream; pass a subset to
    annotate sparsely (useful for quick experiments).
    """
    indices = list(frame_indices) if frame_indices is not None else list(range(len(stream)))
    frames: list[AnnotatedFrame] = []
    for index in indices:
        detections = detector.detect(stream.frame(index))
        frames.append(annotate_frame(detections, class_names, grid))
    return AnnotationSet(
        stream_name=stream.name,
        class_names=tuple(class_names),
        grid=grid,
        frames=frames,
    )
