"""Fast detector simulator (the paper's YOLOv2).

The paper uses the full YOLOv2 network as a comparison point: ~15 ms/frame,
good localisation (3–5 % better than the OD-CLF filters) but no counting head
and noticeably worse recall on small objects than Mask R-CNN.  The simulator
reproduces that profile with a more aggressive error model and the 15 ms
latency figure.
"""

from __future__ import annotations

from repro.cost import YOLO_FULL_MS, SimulatedClock
from repro.detection.base import Detector, FrameDetections
from repro.detection.oracle import DetectorErrorModel, ReferenceDetector
from repro.video.stream import Frame


class FastDetector(Detector):
    """The 'full YOLOv2' stand-in: faster, noisier than the reference detector."""

    name = "yolo_v2"

    def __init__(
        self,
        class_names: tuple[str, ...] | list[str] | None = None,
        error_model: DetectorErrorModel | None = None,
        latency_ms: float = YOLO_FULL_MS,
        clock: SimulatedClock | None = None,
        seed: int = 1,
    ) -> None:
        self.latency_ms = latency_ms
        self.clock = clock
        # Delegate the detection mechanics to the reference implementation
        # with a weaker error model; only latency and identity differ.
        self._inner = ReferenceDetector(
            class_names=class_names,
            error_model=error_model
            or DetectorErrorModel(
                miss_rate=0.04,
                small_object_miss_rate=0.18,
                small_object_area=400.0,
                box_jitter=0.06,
                confusion_rate=0.01,
                false_positive_rate=0.05,
                score_mean=0.85,
                score_std=0.08,
            ),
            latency_ms=latency_ms,
            clock=None,
            seed=seed,
        )

    def detect(self, frame: Frame) -> FrameDetections:
        if self.clock is not None:
            self.clock.charge(self.name, self.latency_ms)
        inner = self._inner.detect(frame)
        return FrameDetections(
            frame_index=inner.frame_index,
            detections=inner.detections,
            latency_ms=self.latency_ms,
            detector_name=self.name,
        )
