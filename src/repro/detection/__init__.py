"""Object-detection substrate.

The paper relies on two external detectors:

* **Mask R-CNN** — the accurate, slow (~200 ms/frame) detector that (a)
  produces the ground-truth annotations used to train the filters and (b)
  verifies candidate frames during query execution;
* **YOLOv2** — a faster (~15 ms/frame) full detector used as a comparison
  point and as the backbone whose early layers feed the OD filters.

Neither is available here, so this package provides simulators with the same
interface, calibrated error models and the paper's latency figures (charged
to a simulated clock), plus the frozen convolutional feature backbones whose
outputs the filter branch heads consume.
"""

from repro.detection.base import Detection, Detector, FrameDetections
from repro.detection.oracle import DetectorErrorModel, ReferenceDetector
from repro.detection.yolo import FastDetector
from repro.detection.backbone import (
    BackboneConfig,
    FeatureBackbone,
    classification_backbone,
    detection_backbone,
)
from repro.detection.annotation import AnnotatedFrame, AnnotationSet, annotate_stream

__all__ = [
    "Detection",
    "Detector",
    "FrameDetections",
    "DetectorErrorModel",
    "ReferenceDetector",
    "FastDetector",
    "BackboneConfig",
    "FeatureBackbone",
    "classification_backbone",
    "detection_backbone",
    "AnnotatedFrame",
    "AnnotationSet",
    "annotate_stream",
]
