"""Fault injection, retry/backoff, quarantine and supervision records.

See :mod:`repro.faults.injector` for the full vocabulary.  The worker
supervisor itself lives in :mod:`repro.query.parallel` (it owns the
backends); this package holds everything both sides of a fault share.
"""

from repro.faults.injector import (
    FAULT_HOOK_SITES,
    FAULT_SITES,
    FaultError,
    FaultExhausted,
    FaultInjector,
    FaultLog,
    FaultReport,
    InjectedFault,
    QuarantineRecord,
    RetryPolicy,
    clear_fault_hooks,
    current_injector,
    current_report,
    install,
    maybe_install_from_env,
    parse_fault_spec,
    uninstall,
)

__all__ = [
    "FAULT_HOOK_SITES",
    "FAULT_SITES",
    "FaultError",
    "FaultExhausted",
    "FaultInjector",
    "FaultLog",
    "FaultReport",
    "InjectedFault",
    "QuarantineRecord",
    "RetryPolicy",
    "clear_fault_hooks",
    "current_injector",
    "current_report",
    "install",
    "maybe_install_from_env",
    "parse_fault_spec",
    "uninstall",
]
