"""Deterministic fault injection and the retry/quarantine vocabulary.

The fault-tolerance layer has two halves that meet in this module:

* **Injection** — :class:`FaultInjector` raises seeded, schedule-driven
  faults at eight well-known sites (decode, filter, detector, worker
  crash/stall, queue stall, emitter, shard crash).  It installs itself
  into the hook modules listed in :data:`FAULT_HOOK_SITES` exactly the
  way the runtime sanitizers do: each module holds a module-level
  ``_FAULT_INJECTOR = None`` global and every use sits behind an
  ``is not None`` guard, so the uninstalled cost is one global load per
  site (INV009 in ``tools/lint_invariants.py`` enforces the pattern).

* **Recovery bookkeeping** — :class:`RetryPolicy` bounds retries with
  exponential backoff charged to a :class:`~repro.cost.SimulatedClock`
  (never wall-clock, so retried runs stay bit-deterministic), and
  :class:`FaultReport` / :class:`QuarantineRecord` account for every
  injected fault, retry, respawn, re-dispatch and quarantined frame.

Faults are deterministic by construction: an explicit schedule maps
``(site, key)`` to an injection count, and optional per-site rates are
decided by hashing ``(seed, site, key, occurrence)`` — never by a
global RNG whose state would depend on call interleaving.
"""

from __future__ import annotations

import importlib
import os
import sys
import threading
from collections import Counter
from dataclasses import dataclass
from hashlib import sha256
from typing import Callable, Mapping, TypeVar

from repro.cost import RETRY_BACKOFF_COMPONENT, SimulatedClock

T = TypeVar("T")

#: Every site the injector knows how to fault.
FAULT_SITES = (
    "decode",
    "filter",
    "detector",
    "worker_crash",
    "worker_stall",
    "queue_stall",
    "emitter",
    "shard_crash",
)

#: ``(module, attribute)`` pairs holding the zero-overhead hook globals.
#: :func:`install` sets each attribute to the injector; :func:`uninstall`
#: restores ``None``.  Mirrors ``repro.analysis.sanitizers.HOOK_SITES``.
FAULT_HOOK_SITES = (
    ("repro.video.stream", "_FAULT_INJECTOR"),
    ("repro.query.parallel", "_FAULT_INJECTOR"),
    ("repro.query.session", "_FAULT_INJECTOR"),
    ("repro.service.service", "_FAULT_INJECTOR"),
    ("repro.service.ingest", "_FAULT_INJECTOR"),
    ("repro.service.emitters", "_FAULT_INJECTOR"),
)


class FaultError(RuntimeError):
    """A single injected (or detected) fault at one site.

    Picklable by construction: ``args`` mirrors the constructor, so the
    process backend can surface worker-side faults to the parent.
    """

    def __init__(self, site: str, key: object, detail: str = "") -> None:
        super().__init__(site, key, detail)
        self.site = site
        self.key = key
        self.detail = detail

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f": {self.detail}" if self.detail else ""
        return f"injected fault at {self.site}@{self.key}{suffix}"


class FaultExhausted(FaultError):
    """A fault that survived every retry the policy allowed."""

    def __init__(
        self, site: str, key: object, attempts: int, detail: str = ""
    ) -> None:
        RuntimeError.__init__(self, site, key, attempts, detail)
        self.site = site
        self.key = key
        self.attempts = attempts
        self.detail = detail

    def __reduce__(self):
        return (FaultExhausted, (self.site, self.key, self.attempts, self.detail))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f": {self.detail}" if self.detail else ""
        return (
            f"fault at {self.site}@{self.key} exhausted "
            f"{self.attempts} attempts{suffix}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff on the simulated clock.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    initial attempt plus two retries.  Backoff for the *n*-th failed
    attempt is ``backoff_ms * backoff_factor ** (n - 1)`` milliseconds,
    charged to the supplied clock under ``component`` — deterministic
    cost, zero wall-clock sleep.
    """

    max_attempts: int = 3
    backoff_ms: float = 1.0
    backoff_factor: float = 2.0
    component: str = RETRY_BACKOFF_COMPONENT

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_ms < 0.0:
            raise ValueError("backoff_ms must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_for(self, attempt: int) -> float:
        """Backoff in ms after the ``attempt``-th failure (1-based)."""
        return self.backoff_ms * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector actually fired."""

    site: str
    key: object
    occurrence: int


@dataclass(frozen=True)
class QuarantineRecord:
    """Frames set aside after retries (or supervision) gave up."""

    site: str
    key: object
    frames: tuple[int, ...]
    error: str


@dataclass(frozen=True)
class FaultReport:
    """Immutable accounting of every fault and every recovery action."""

    injected: tuple[InjectedFault, ...] = ()
    retries: int = 0
    recovered: int = 0
    exhausted: int = 0
    respawns: int = 0
    redispatches: int = 0
    backoff_ms: float = 0.0
    quarantined: tuple[QuarantineRecord, ...] = ()

    @property
    def injected_count(self) -> int:
        return len(self.injected)

    def by_site(self) -> dict[str, int]:
        """Injected-fault counts keyed by site name."""
        return dict(Counter(fault.site for fault in self.injected))


class FaultLog:
    """Thread-safe mutable accumulator behind :class:`FaultReport`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._injected: list[InjectedFault] = []
        self._retries = 0
        self._recovered = 0
        self._exhausted = 0
        self._respawns = 0
        self._redispatches = 0
        self._backoff_ms = 0.0

    def note_injected(self, fault: InjectedFault) -> None:
        with self._lock:
            self._injected.append(fault)

    def note_retry(self) -> None:
        with self._lock:
            self._retries += 1

    def note_recovered(self) -> None:
        with self._lock:
            self._recovered += 1

    def note_exhausted(self) -> None:
        with self._lock:
            self._exhausted += 1

    def note_respawn(self) -> None:
        with self._lock:
            self._respawns += 1

    def note_redispatch(self) -> None:
        with self._lock:
            self._redispatches += 1

    def note_backoff(self, milliseconds: float) -> None:
        with self._lock:
            self._backoff_ms += milliseconds

    def freeze(
        self, quarantined: tuple[QuarantineRecord, ...] = ()
    ) -> FaultReport:
        with self._lock:
            return FaultReport(
                injected=tuple(self._injected),
                retries=self._retries,
                recovered=self._recovered,
                exhausted=self._exhausted,
                respawns=self._respawns,
                redispatches=self._redispatches,
                backoff_ms=self._backoff_ms,
                quarantined=tuple(quarantined),
            )


def _hash01(seed: int, site: str, key: object, occurrence: int) -> float:
    """Deterministic uniform-[0,1) draw for rate-based injection."""
    digest = sha256(f"{seed}:{site}:{key}:{occurrence}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultInjector:
    """Seeded, schedule-driven fault injection with retry accounting.

    ``schedule`` maps ``(site, key)`` to how many times that exact site
    should fault (each retry attempt consumes one count, so a schedule
    of ``max_attempts`` at one key produces a poison chunk).  ``rates``
    maps a site to a per-attempt probability decided by hashing
    ``(seed, site, key, occurrence)`` — deterministic for a fixed seed
    regardless of thread interleaving.

    The injector is also a context manager: ``with injector:`` installs
    it into every hook module and uninstalls on exit.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        schedule: Mapping[tuple[str, object], int] | None = None,
        rates: Mapping[str, float] | None = None,
        stall_seconds: float = 0.25,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.seed = int(seed)
        self._schedule: dict[tuple[str, object], int] = dict(schedule or {})
        self._rates: dict[str, float] = dict(rates or {})
        for (site, _key), count in self._schedule.items():
            if site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {site!r}")
            if count < 1:
                raise ValueError(f"schedule count for {site!r} must be >= 1")
        for site, rate in self._rates.items():
            if site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {site!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {site!r} must be in [0, 1]")
        if stall_seconds < 0.0:
            raise ValueError("stall_seconds must be >= 0")
        self.stall_seconds = float(stall_seconds)
        self.retry = retry if retry is not None else RetryPolicy()
        #: Fallback clock for backoff at sites without one (frame decode).
        self.clock = SimulatedClock()
        self.log = FaultLog()
        self._lock = threading.Lock()
        self._consumed: dict[tuple[str, object], int] = {}
        self._sequences: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Core decision + raise primitives
    # ------------------------------------------------------------------
    def should_fault(self, site: str, key: object) -> bool:
        """Decide (and consume) one injection opportunity at a site."""
        with self._lock:
            occurrence = self._consumed.get((site, key), 0)
            scheduled = self._schedule.get((site, key), 0)
            fire = occurrence < scheduled
            if not fire:
                rate = self._rates.get(site, 0.0)
                fire = rate > 0.0 and _hash01(self.seed, site, key, occurrence) < rate
            if fire:
                self._consumed[(site, key)] = occurrence + 1
        if fire:
            self.log.note_injected(InjectedFault(site, key, occurrence + 1))
        return fire

    def maybe_raise(self, site: str, key: object) -> None:
        if self.should_fault(site, key):
            raise FaultError(site, key)

    def _next_key(self, site: str) -> int:
        """Sequence counter for sites without a natural key."""
        with self._lock:
            value = self._sequences.get(site, 0)
            self._sequences[site] = value + 1
        return value

    # ------------------------------------------------------------------
    # Site-specific entry points (called from the guarded hooks)
    # ------------------------------------------------------------------
    def filter_event(self, first_index: int) -> None:
        """Fault site at the top of ``run_filter_chunk`` (keyed by the
        chunk's first frame index, identical inline and in workers)."""
        self.maybe_raise("filter", first_index)

    def detector_event(self, frame_index: int) -> None:
        self.maybe_raise("detector", frame_index)

    def worker_directive(self, chunk_id: int) -> tuple[str, float] | None:
        """Parent-side crash/stall decision for one dispatched chunk.

        Decided before the task ships so fork/spawn children never
        consult (and diverge) their inherited schedule copies.
        """
        if self.should_fault("worker_crash", chunk_id):
            return ("crash", 0.0)
        if self.should_fault("worker_stall", chunk_id):
            return ("stall", self.stall_seconds)
        return None

    def queue_stall(self) -> bool:
        """Whether this ingestion-queue ``get`` should time out empty."""
        return self.should_fault("queue_stall", self._next_key("queue_stall"))

    def emitter_event(self) -> None:
        """Raise inside ``deliver``'s per-emitter try (keyed by a
        per-injector delivery sequence number)."""
        self.maybe_raise("emitter", self._next_key("emitter"))

    def shard_event(self, stream: str, chunk_number: int) -> None:
        """Simulated shard-worker crash while processing one chunk."""
        self.maybe_raise("shard_crash", f"{stream}:{chunk_number}")

    # ------------------------------------------------------------------
    # Retry loop
    # ------------------------------------------------------------------
    def with_retry(
        self,
        site: str,
        key: object,
        clock: SimulatedClock | None,
        thunk: Callable[[], T],
    ) -> T:
        """Run ``thunk`` under the retry policy for one fault site.

        Injected :class:`FaultError`\\ s (from the pre-attempt draw *or*
        raised by a nested hook inside ``thunk``) are retried with
        exponential backoff charged to ``clock`` (the injector's own
        clock when ``None``).  Exhaustion raises :class:`FaultExhausted`;
        genuine non-fault exceptions propagate untouched on the first
        throw — retrying non-deterministic real failures is the
        caller's policy decision, not this loop's.
        """
        retry = self.retry
        attempt = 0
        while True:
            attempt += 1
            try:
                self.maybe_raise(site, key)
                result = thunk()
            except FaultExhausted:
                raise
            except FaultError as error:
                self.log.note_retry()
                if attempt >= retry.max_attempts:
                    self.log.note_exhausted()
                    raise FaultExhausted(
                        error.site, error.key, attempt, error.detail
                    ) from error
                backoff = retry.backoff_for(attempt)
                target = clock if clock is not None else self.clock
                target.charge(retry.component, backoff)
                self.log.note_backoff(backoff)
                continue
            if attempt > 1:
                self.log.note_recovered()
            return result

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def unfired(self) -> tuple[tuple[str, object, int], ...]:
        """Scheduled faults that never fired: ``(site, key, remaining)``.

        The chaos soak asserts this is empty — every scheduled fault
        must be accounted for by the run it was aimed at.
        """
        remaining = []
        with self._lock:
            for (site, key), count in sorted(
                self._schedule.items(), key=lambda item: (item[0][0], str(item[0][1]))
            ):
                consumed = self._consumed.get((site, key), 0)
                if consumed < count:
                    remaining.append((site, key, count - consumed))
        return tuple(remaining)

    def report(
        self, quarantined: tuple[QuarantineRecord, ...] = ()
    ) -> FaultReport:
        return self.log.freeze(quarantined)

    # ------------------------------------------------------------------
    # Hook installation (mirrors repro.analysis.sanitizers)
    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        install(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        uninstall(self)


_HOOK_LOCK = threading.Lock()
_CURRENT: FaultInjector | None = None


def install(injector: FaultInjector) -> None:
    """Install ``injector`` into every hook module.

    Refuses to stack: exactly one injector may be live at a time (the
    hook globals hold a single reference each).
    """
    global _CURRENT
    with _HOOK_LOCK:
        if _CURRENT is not None:
            raise RuntimeError(
                "a FaultInjector is already installed; uninstall it first"
            )
        for module_name, attribute in FAULT_HOOK_SITES:
            module = importlib.import_module(module_name)
            setattr(module, attribute, injector)
        _CURRENT = injector


def uninstall(injector: FaultInjector | None = None) -> None:
    """Remove the installed injector (idempotent).

    Passing a specific ``injector`` uninstalls only if it is the one
    currently live — a stale handle from an earlier session is a no-op.
    """
    global _CURRENT
    with _HOOK_LOCK:
        if _CURRENT is None:
            return
        if injector is not None and injector is not _CURRENT:
            return
        for module_name, attribute in FAULT_HOOK_SITES:
            module = importlib.import_module(module_name)
            setattr(module, attribute, None)
        _CURRENT = None


def clear_fault_hooks() -> None:
    """Drop any inherited injector in a pool worker (child-side reset).

    A forked worker process inherits ``_CURRENT`` and every hook module's
    global as *copies* whose schedules the parent keeps consuming
    independently — letting the child consult them would re-fire faults
    the parent already delivered or retried.  Worker-targeted faults are
    decided parent-side (:meth:`FaultInjector.worker_directive`) and
    shipped with the task, so a worker needs no injector at all.  Runs
    from the process-pool initializer; only touches modules the child has
    actually imported.
    """
    global _CURRENT
    with _HOOK_LOCK:
        _CURRENT = None
        for module_name, attribute in FAULT_HOOK_SITES:
            module = sys.modules.get(module_name)
            if module is not None:
                setattr(module, attribute, None)


def current_injector() -> FaultInjector | None:
    return _CURRENT


def current_report(
    quarantined: tuple[QuarantineRecord, ...] = ()
) -> FaultReport | None:
    """The installed injector's report, or a quarantine-only report.

    Returns ``None`` when no injector is live and nothing was
    quarantined, so fault-free runs carry ``faults=None`` and stay
    bit-identical to pre-fault-layer results.
    """
    injector = current_injector()
    if injector is not None:
        return injector.report(tuple(quarantined))
    if quarantined:
        return FaultReport(quarantined=tuple(quarantined))
    return None


# ----------------------------------------------------------------------
# REPRO_FAULTS environment knob
# ----------------------------------------------------------------------
def parse_fault_spec(spec: str) -> FaultInjector:
    """Build an injector from a compact spec string.

    Comma-separated tokens::

        seed=7             injector seed (rate draws)
        stall=0.5          stall duration in seconds
        retries=4          RetryPolicy.max_attempts
        backoff=2.5        RetryPolicy.backoff_ms
        decode@12          one decode fault at frame 12
        filter@8x3         three filter faults at chunk-first-index 8
        worker_crash@2     crash the worker handling chunk 2
        shard_crash@cam:1  shard fault at stream "cam", chunk 1
        emitter%0.05       5% per-delivery emitter raise rate
    """
    seed = 0
    stall_seconds = 0.25
    max_attempts: int | None = None
    backoff_ms: float | None = None
    schedule: dict[tuple[str, object], int] = {}
    rates: dict[str, float] = {}
    for raw in spec.replace(";", ",").split(","):
        token = raw.strip()
        if not token:
            continue
        if "=" in token:
            name, _, value = token.partition("=")
            name = name.strip()
            if name == "seed":
                seed = int(value)
            elif name == "stall":
                stall_seconds = float(value)
            elif name == "retries":
                max_attempts = int(value)
            elif name == "backoff":
                backoff_ms = float(value)
            else:
                raise ValueError(f"unknown fault-spec option {name!r}")
        elif "%" in token:
            site, _, rate = token.partition("%")
            rates[site.strip()] = float(rate)
        elif "@" in token:
            site, _, key_text = token.partition("@")
            site = site.strip()
            count = 1
            head, x, tail = key_text.rpartition("x")
            if x and tail.isdigit() and head:
                key_text, count = head, int(tail)
            key: object = int(key_text) if key_text.lstrip("-").isdigit() else key_text
            schedule[(site, key)] = schedule.get((site, key), 0) + count
        else:
            raise ValueError(f"unparseable fault-spec token {token!r}")
    policy = RetryPolicy(
        max_attempts=max_attempts if max_attempts is not None else 3,
        backoff_ms=backoff_ms if backoff_ms is not None else 1.0,
    )
    return FaultInjector(
        seed=seed,
        schedule=schedule,
        rates=rates,
        stall_seconds=stall_seconds,
        retry=policy,
    )


def maybe_install_from_env() -> FaultInjector | None:
    """Install an injector described by ``$REPRO_FAULTS``, if any.

    No-op (returning ``None``) when the variable is unset/empty or when
    an injector is already live — a service embedded inside an explicit
    injection session must not fight it.
    """
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    with _HOOK_LOCK:
        already = _CURRENT is not None
    if already:
        return None
    injector = parse_fault_spec(spec)
    install(injector)
    return injector
