"""Neural-network layers with explicit forward / backward passes.

All layers operate on NCHW arrays (or ``(N, features)`` for dense layers).
Each layer stores whatever it needs from the forward pass to compute
gradients in the backward pass; parameters and their gradients are exposed
through ``params()`` / ``grads()`` so optimisers can update them in place.

Every layer honors its ``training`` flag: in training mode (the default)
``forward`` caches the state ``backward`` needs; in eval mode
(``training=False``, set via ``Sequential.set_training``) no backward caches
are allocated at all — no ReLU masks, no stored sigmoid outputs, no max-pool
argmax, no retained im2col columns — and ``backward`` raises immediately.
Eval mode also honors the input dtype end to end: float32 inputs stay
float32 through every layer (parameters are cast on the fly, a negligible
cost next to the matmuls they feed), which roughly halves the memory
traffic of an inference pass.  ``Conv2D`` additionally reuses one
preallocated im2col buffer across eval-mode calls instead of reallocating
the (large) column matrix every forward.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.nn.initializers import he_normal, xavier_uniform, zeros_init


class Layer(abc.ABC):
    """Base class for all layers."""

    #: whether the layer is in training mode; eval mode (``False``) skips all
    #: backward caches and forbids :meth:`backward`
    training: bool = True

    @abc.abstractmethod
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the layer output; in training mode, cache what backward needs."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``, accumulating parameter grads."""

    def _require_training(self) -> None:
        """Raise a clear error when backward is attempted in eval mode."""
        if not self.training:
            raise RuntimeError(
                f"{type(self).__name__}.backward called in eval mode: forward "
                "passes with training=False keep no caches; call "
                "set_training(True) and re-run forward before backward"
            )

    def params(self) -> dict[str, np.ndarray]:
        """Trainable parameters keyed by name (empty for stateless layers)."""
        return {}

    def grads(self) -> dict[str, np.ndarray]:
        """Gradients matching :meth:`params` keys."""
        return {}

    def zero_grad(self) -> None:
        for grad in self.grads().values():
            grad.fill(0.0)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training:
            self._mask = None
            return np.maximum(inputs, 0)
        self._mask = inputs > 0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_training()
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU (the activation used by the OD branch network, Table I)."""

    def __init__(self, negative_slope: float = 0.1) -> None:
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be non-negative: {negative_slope}")
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training:
            self._mask = None
            return np.where(
                inputs > 0, inputs, inputs.dtype.type(self.negative_slope) * inputs
            )
        self._mask = inputs > 0
        return np.where(self._mask, inputs, self.negative_slope * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_training()
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Sigmoid(Layer):
    """Logistic sigmoid (used for grid-occupancy outputs)."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        # Numerically stable sigmoid, preserving a floating input dtype so a
        # float32 inference pass stays float32 (integer inputs promote to
        # float64 as before).
        dtype = inputs.dtype if np.issubdtype(inputs.dtype, np.floating) else np.float64
        out = np.empty(inputs.shape, dtype=dtype)
        positive = inputs >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-inputs[positive]))
        exp_x = np.exp(inputs[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._output = out if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_training()
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape if self.training else None
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_training()
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


# ----------------------------------------------------------------------
# Dense
# ----------------------------------------------------------------------
class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature dimensions must be positive: {in_features}, {out_features}"
            )
        rng = np.random.default_rng(seed)
        self.weight = xavier_uniform((in_features, out_features), in_features, out_features, rng)
        self.bias = zeros_init((out_features,))
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 2:
            raise ValueError(f"Dense expects (N, features), got shape {inputs.shape}")
        if not self.training:
            self._inputs = None
            # Cast the (small) parameters to the activation dtype instead of
            # letting the matmul promote the (large) activations to float64.
            # Only floating activations qualify — casting float weights to an
            # integer dtype would truncate them to garbage.
            dtype = (
                inputs.dtype
                if np.issubdtype(inputs.dtype, np.floating)
                else self.weight.dtype
            )
            weight = self.weight.astype(dtype, copy=False)
            bias = self.bias.astype(dtype, copy=False)
            return inputs @ weight + bias
        self._inputs = inputs
        return inputs @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_training()
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight += self._inputs.T @ grad_output
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}


# ----------------------------------------------------------------------
# Convolution via im2col
# ----------------------------------------------------------------------
def _im2col(
    inputs: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    buffers: dict[str, np.ndarray] | None = None,
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into ``(N * out_h * out_w, C * kernel * kernel)``.

    ``buffers`` (owned by the calling layer) lets repeated calls with the
    same geometry and dtype reuse the two large intermediates — the strided
    gather array and the flattened column matrix — instead of reallocating
    them every forward; inference over a stream hits the same shape on every
    call, so after the first frame the unfold allocates nothing.
    """
    n, channels, height, width = inputs.shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty for input {inputs.shape}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    padded = np.pad(
        inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )

    def _buffer(key: str, shape: tuple[int, ...]) -> np.ndarray:
        if buffers is None:
            return np.empty(shape, dtype=inputs.dtype)
        existing = buffers.get(key)
        if existing is None or existing.shape != shape or existing.dtype != inputs.dtype:
            existing = np.empty(shape, dtype=inputs.dtype)
            buffers[key] = existing
        return existing

    cols = _buffer("gather", (n, channels, kernel, kernel, out_h, out_w))
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = padded[:, :, ky:y_max:stride, kx:x_max:stride]
    transposed = cols.transpose(0, 4, 5, 1, 2, 3)
    flat = _buffer("flat", (n * out_h * out_w, channels * kernel * kernel))
    np.copyto(flat.reshape(n, out_h, out_w, channels, kernel, kernel), transposed)
    return flat, out_h, out_w


def _col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col` (accumulating overlapping regions)."""
    n, channels, height, width = input_shape
    cols = cols.reshape(n, out_h, out_w, channels, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


class Conv2D(Layer):
    """2-D convolution with square kernels, implemented with im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        seed: int = 0,
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("conv parameters must be positive")
        if padding < 0:
            raise ValueError(f"padding must be non-negative: {padding}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = he_normal((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng)
        self.bias = zeros_init((out_channels,))
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cols: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None
        # Eval-mode im2col scratch, reused across calls (see _im2col).
        self._infer_buffers: dict[str, np.ndarray] = {}

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expects (N, {self.in_channels}, H, W), got {inputs.shape}"
            )
        n = inputs.shape[0]
        if not self.training:
            self._cols = None
            self._input_shape = None
            self._out_hw = None
            # See Dense.forward: keep float weights out of integer dtypes.
            dtype = (
                inputs.dtype
                if np.issubdtype(inputs.dtype, np.floating)
                else self.weight.dtype
            )
            cols, out_h, out_w = _im2col(
                inputs.astype(dtype, copy=False),
                self.kernel_size,
                self.stride,
                self.padding,
                buffers=self._infer_buffers,
            )
            weight_matrix = self.weight.reshape(self.out_channels, -1).astype(
                dtype, copy=False
            )
            bias = self.bias.astype(dtype, copy=False)
            output = cols @ weight_matrix.T + bias
            return output.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        cols, out_h, out_w = _im2col(inputs, self.kernel_size, self.stride, self.padding)
        weight_matrix = self.weight.reshape(self.out_channels, -1)
        output = cols @ weight_matrix.T + self.bias
        output = output.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        self._cols = cols
        self._input_shape = inputs.shape  # type: ignore[assignment]
        self._out_hw = (out_h, out_w)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_training()
        if self._cols is None or self._input_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        out_h, out_w = self._out_hw
        n = grad_output.shape[0]
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        weight_matrix = self.weight.reshape(self.out_channels, -1)
        self.grad_weight += (grad_flat.T @ self._cols).reshape(self.weight.shape)
        self.grad_bias += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ weight_matrix
        return _col2im(
            grad_cols,
            self._input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            out_h,
            out_w,
        )

    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
class MaxPool2D(Layer):
    """Max pooling with square windows (window == stride)."""

    def __init__(self, pool_size: int = 2) -> None:
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive: {pool_size}")
        self.pool_size = pool_size
        self._inputs_shape: tuple[int, ...] | None = None
        self._argmax: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ValueError(f"MaxPool2D expects NCHW input, got {inputs.shape}")
        n, channels, height, width = inputs.shape
        p = self.pool_size
        if height % p != 0 or width % p != 0:
            raise ValueError(
                f"input spatial dims {height}x{width} not divisible by pool size {p}"
            )
        out_h, out_w = height // p, width // p
        reshaped = inputs.reshape(n, channels, out_h, p, out_w, p)
        if not self.training:
            # Eval skips the argmax entirely — it is only needed to route
            # gradients, and costs as much as the max itself.
            self._argmax = None
            self._inputs_shape = None
            return reshaped.max(axis=(3, 5))
        windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(n, channels, out_h, out_w, p * p)
        self._argmax = windows.argmax(axis=-1)
        self._inputs_shape = inputs.shape
        return windows.max(axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_training()
        if self._argmax is None or self._inputs_shape is None:
            raise RuntimeError("backward called before forward")
        n, channels, height, width = self._inputs_shape
        p = self.pool_size
        out_h, out_w = height // p, width // p
        grad_windows = np.zeros((n, channels, out_h, out_w, p * p), dtype=grad_output.dtype)
        flat_index = self._argmax.reshape(-1)
        grad_windows.reshape(-1, p * p)[np.arange(flat_index.size), flat_index] = grad_output.reshape(-1)
        grad_input = (
            grad_windows.reshape(n, channels, out_h, out_w, p, p)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, channels, height, width)
        )
        return grad_input


class GlobalAveragePooling2D(Layer):
    """Average each feature map to a single value: ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ValueError(f"GAP expects NCHW input, got {inputs.shape}")
        self._input_shape = inputs.shape if self.training else None
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_training()
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, channels, height, width = self._input_shape
        scale = 1.0 / (height * width)
        return (
            np.repeat(grad_output[:, :, None, None], height, axis=2).repeat(width, axis=3) * scale
        )
