"""Optimisers.

The paper trains IC filters with Adam (learning rate 1e-4, exponential decay
5e-4) and OD filters with SGD (momentum 0.9, weight decay 5e-4, learning rate
1e-4).  Both are provided here; they update the parameter arrays of a network
in place given the accumulated gradients.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

import numpy as np


ParameterGroup = Sequence[tuple[Mapping[str, np.ndarray], Mapping[str, np.ndarray]]]


class Optimizer(abc.ABC):
    """Base optimiser over ``(params, grads)`` pairs, one pair per layer."""

    def __init__(self, learning_rate: float, lr_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive: {learning_rate}")
        if lr_decay < 0:
            raise ValueError(f"lr_decay must be non-negative: {lr_decay}")
        self.initial_learning_rate = learning_rate
        self.lr_decay = lr_decay
        self.step_count = 0

    @property
    def learning_rate(self) -> float:
        """Exponentially decayed learning rate at the current step."""
        return self.initial_learning_rate * np.exp(-self.lr_decay * self.step_count)

    def step(self, groups: ParameterGroup) -> None:
        """Apply one update to every parameter in every group."""
        self.step_count += 1
        for layer_index, (params, grads) in enumerate(groups):
            for name, param in params.items():
                grad = grads[name]
                self._update(f"{layer_index}.{name}", param, grad)

    @abc.abstractmethod
    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Update one parameter array in place."""


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and (decoupled) weight decay."""

    def __init__(
        self,
        learning_rate: float = 1e-4,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        lr_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, lr_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1): {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative: {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        effective_grad = grad + self.weight_decay * param
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(param)
        velocity = self.momentum * velocity - self.learning_rate * effective_grad
        self._velocity[key] = velocity
        param += velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), as used by the paper for IC filters."""

    def __init__(
        self,
        learning_rate: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
        lr_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, lr_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1): {beta1}, {beta2}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive: {epsilon}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._first_moment: dict[str, np.ndarray] = {}
        self._second_moment: dict[str, np.ndarray] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        effective_grad = grad
        if self.weight_decay > 0:
            effective_grad = grad + self.weight_decay * param
        m = self._first_moment.get(key)
        v = self._second_moment.get(key)
        if m is None:
            m = np.zeros_like(param)
        if v is None:
            v = np.zeros_like(param)
        m = self.beta1 * m + (1.0 - self.beta1) * effective_grad
        v = self.beta2 * v + (1.0 - self.beta2) * effective_grad**2
        self._first_moment[key] = m
        self._second_moment[key] = v
        m_hat = m / (1.0 - self.beta1**self.step_count)
        v_hat = v / (1.0 - self.beta2**self.step_count)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
