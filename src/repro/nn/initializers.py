"""Weight initialisers."""

from __future__ import annotations

import numpy as np


def he_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU-family activations."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive: {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Xavier/Glorot uniform initialisation, suited to linear / sigmoid outputs."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be positive: {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)
