"""Loss functions.

The paper trains its filters with a weighted multi-task loss (equation 2 for
IC filters, equation 3 for the OD branch): a ``SmoothL1`` term on per-class
counts plus an ``MSE`` (IC) or masked squared-error (OD) term on the class
location grid.  The losses here return ``(value, gradient)`` pairs so they
plug directly into the layer backward chain.
"""

from __future__ import annotations

import abc

import numpy as np


class Loss(abc.ABC):
    """Base class: ``forward`` returns the scalar loss, ``backward`` its gradient."""

    @abc.abstractmethod
    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Scalar loss value (averaged over the batch)."""

    @abc.abstractmethod
    def backward(self) -> np.ndarray:
        """Gradient of the loss with respect to the predictions."""

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class MSELoss(Loss):
    """Mean squared error, averaged over all elements."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


class SmoothL1Loss(Loss):
    """Huber / SmoothL1 loss as used for count regression in the paper.

    ``loss = 0.5 x^2 / beta`` for ``|x| < beta`` else ``|x| - 0.5 beta``.
    """

    def __init__(self, beta: float = 1.0) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive: {beta}")
        self.beta = beta
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        diff = predictions - targets
        self._diff = diff
        abs_diff = np.abs(diff)
        quadratic = 0.5 * diff**2 / self.beta
        linear = abs_diff - 0.5 * self.beta
        return float(np.mean(np.where(abs_diff < self.beta, quadratic, linear)))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        diff = self._diff
        grad = np.where(np.abs(diff) < self.beta, diff / self.beta, np.sign(diff))
        return grad / diff.size


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross entropy over the last axis; targets are class indices."""

    def __init__(self) -> None:
        self._probabilities: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.ndim != 2:
            raise ValueError(f"expected (N, classes) logits, got {predictions.shape}")
        if targets.ndim != 1 or targets.shape[0] != predictions.shape[0]:
            raise ValueError(
                f"targets must be (N,) class indices matching logits {predictions.shape}"
            )
        shifted = predictions - predictions.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probabilities = exp / exp.sum(axis=1, keepdims=True)
        self._probabilities = probabilities
        self._targets = targets.astype(int)
        n = predictions.shape[0]
        picked = probabilities[np.arange(n), self._targets]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

    def backward(self) -> np.ndarray:
        if self._probabilities is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n = self._probabilities.shape[0]
        grad = self._probabilities.copy()
        grad[np.arange(n), self._targets] -= 1.0
        return grad / n
