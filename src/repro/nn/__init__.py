"""A small, from-scratch neural-network framework on numpy.

The paper implements its filters as branch networks grafted onto the early
convolution layers of VGG19 / YOLOv2 in PyTorch.  Neither PyTorch nor
pretrained weights are available in this environment, so this package
provides the minimum deep-learning substrate the filters need:

* layers: ``Conv2D`` (im2col), ``MaxPool2D``, ``GlobalAveragePooling2D``,
  ``Dense``, ``ReLU``, ``LeakyReLU``, ``Flatten``;
* losses: ``MSELoss``, ``SmoothL1Loss`` (the paper's count loss),
  ``SoftmaxCrossEntropy``, and the multi-task count+location losses used by
  the IC and OD branches;
* optimisers: ``SGD`` (momentum + weight decay) and ``Adam`` (the paper's
  optimiser for IC filters), both with exponential learning-rate decay;
* ``Sequential`` / ``MultiHeadNetwork`` containers with weight save / load
  and a finite-difference gradient checker used by the test suite.

Data layout is NCHW throughout (batch, channels, height, width).
"""

from repro.nn.initializers import he_normal, xavier_uniform, zeros_init
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePooling2D,
    Layer,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
)
from repro.nn.losses import (
    Loss,
    MSELoss,
    SmoothL1Loss,
    SoftmaxCrossEntropy,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.network import MultiHeadNetwork, Sequential, gradient_check

__all__ = [
    "he_normal",
    "xavier_uniform",
    "zeros_init",
    "Layer",
    "Conv2D",
    "MaxPool2D",
    "GlobalAveragePooling2D",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Flatten",
    "Loss",
    "MSELoss",
    "SmoothL1Loss",
    "SoftmaxCrossEntropy",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
    "MultiHeadNetwork",
    "gradient_check",
]
