"""Network containers: Sequential trunks and multi-head branch networks.

The paper's filters are *branch networks*: a shared convolutional trunk (the
first few layers of a classification or detection backbone) feeding several
output heads (a per-class count vector and a per-class location grid).
:class:`MultiHeadNetwork` models exactly that; :class:`Sequential` is the
building block for trunks and heads.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.nn.layers import Layer

# Runtime numeric-sanitizer hook, installed by repro.analysis.sanitizers
# while a sanitized scan runs.  ``None`` means off, and every use is guarded
# with ``is not None`` so the uninstrumented forward loop is unchanged
# (INV007).
_LAYER_SANITIZER: Any = None


def _weights_path(path: str | Path) -> Path:
    """Normalise a weights path to the ``.npz`` suffix.

    ``np.savez`` silently appends ``.npz`` when the suffix is missing, but
    ``np.load`` does not — so a bare ``save("weights"); load("weights")``
    round-trip used to raise ``FileNotFoundError``.  Both directions now
    resolve to the same ``<path>.npz`` file.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


class Sequential:
    """A simple chain of layers with a combined forward / backward pass."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers = list(layers)
        #: mirrors the layers' mode; toggle via :meth:`set_training`
        self.training = True

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        if _LAYER_SANITIZER is not None:
            for position, layer in enumerate(self.layers):
                output = layer.forward(output)
                _LAYER_SANITIZER.check_layer_output(self, position, layer, output)
            return output
        for layer in self.layers:
            output = layer.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    def parameter_groups(self) -> list[tuple[dict[str, np.ndarray], dict[str, np.ndarray]]]:
        """``(params, grads)`` pairs for the optimiser, one per parametric layer."""
        return [
            (layer.params(), layer.grads())
            for layer in self.layers
            if layer.params()
        ]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def set_training(self, training: bool) -> None:
        """Switch every layer between training and eval mode.

        Eval mode (``False``) is the inference fast path: layers keep no
        backward caches, honor the input dtype (float32 stays float32), and
        ``backward`` raises until training mode is restored.
        """
        self.training = training
        for layer in self.layers:
            layer.training = training

    def num_parameters(self) -> int:
        return sum(
            param.size for layer in self.layers for param in layer.params().values()
        )

    # ------------------------------------------------------------------
    # Weight (de)serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, param in layer.params().items():
                state[f"layer{index}.{name}"] = param.copy()
        return state

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        for index, layer in enumerate(self.layers):
            for name, param in layer.params().items():
                key = f"layer{index}.{name}"
                if key not in state:
                    raise KeyError(f"missing parameter {key} in state dict")
                value = np.asarray(state[key])
                if value.shape != param.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: {value.shape} vs {param.shape}"
                    )
                param[...] = value

    def save(self, path: str | Path) -> None:
        np.savez(_weights_path(path), **self.state_dict())

    @staticmethod
    def load_into(network: "Sequential", path: str | Path) -> None:
        with np.load(_weights_path(path)) as data:
            network.load_state_dict({key: data[key] for key in data.files})


class MultiHeadNetwork:
    """A shared trunk feeding multiple named heads.

    ``forward`` returns a dict of head outputs; ``backward`` takes a dict of
    gradients (one per head, missing heads contribute zero) and propagates the
    sum through the trunk — exactly the structure needed for the paper's
    multi-task count + location training.
    """

    def __init__(self, trunk: Sequential, heads: Mapping[str, Sequential]) -> None:
        if not heads:
            raise ValueError("a multi-head network needs at least one head")
        self.trunk = trunk
        self.heads = dict(heads)
        self.training = True
        self._trunk_output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> dict[str, np.ndarray]:
        trunk_output = self.trunk.forward(inputs)
        self._trunk_output = trunk_output if self.training else None
        return {name: head.forward(trunk_output) for name, head in self.heads.items()}

    def backward(self, head_grads: Mapping[str, np.ndarray]) -> np.ndarray:
        if not self.training:
            raise RuntimeError(
                "MultiHeadNetwork.backward called in eval mode: forward passes "
                "with set_training(False) keep no caches; call "
                "set_training(True) and re-run forward before backward"
            )
        if self._trunk_output is None:
            raise RuntimeError("backward called before forward")
        unknown = set(head_grads) - set(self.heads)
        if unknown:
            raise KeyError(f"gradients provided for unknown heads: {sorted(unknown)}")
        trunk_grad = np.zeros_like(self._trunk_output)
        for name, grad in head_grads.items():
            trunk_grad = trunk_grad + self.heads[name].backward(grad)
        return self.trunk.backward(trunk_grad)

    def __call__(self, inputs: np.ndarray) -> dict[str, np.ndarray]:
        return self.forward(inputs)

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    def parameter_groups(
        self, include_trunk: bool = True
    ) -> list[tuple[dict[str, np.ndarray], dict[str, np.ndarray]]]:
        """Optimiser groups; ``include_trunk=False`` freezes the shared trunk.

        Freezing the trunk mirrors the paper's IC training schedule, where the
        fully-connected weights are fixed while localisation error is
        back-propagated only into the feature layers (and vice versa).
        """
        groups: list[tuple[dict[str, np.ndarray], dict[str, np.ndarray]]] = []
        if include_trunk:
            groups.extend(self.trunk.parameter_groups())
        for head in self.heads.values():
            groups.extend(head.parameter_groups())
        return groups

    def zero_grad(self) -> None:
        self.trunk.zero_grad()
        for head in self.heads.values():
            head.zero_grad()

    def set_training(self, training: bool) -> None:
        """Switch the trunk and every head between training and eval mode."""
        self.training = training
        self.trunk.set_training(training)
        for head in self.heads.values():
            head.set_training(training)

    def num_parameters(self) -> int:
        return self.trunk.num_parameters() + sum(
            head.num_parameters() for head in self.heads.values()
        )

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {f"trunk.{k}": v for k, v in self.trunk.state_dict().items()}
        for name, head in self.heads.items():
            state.update({f"head.{name}.{k}": v for k, v in head.state_dict().items()})
        return state

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        trunk_state = {
            key[len("trunk.") :]: value
            for key, value in state.items()
            if key.startswith("trunk.")
        }
        self.trunk.load_state_dict(trunk_state)
        for name, head in self.heads.items():
            prefix = f"head.{name}."
            head_state = {
                key[len(prefix) :]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            head.load_state_dict(head_state)

    def save(self, path: str | Path) -> None:
        np.savez(_weights_path(path), **self.state_dict())

    def load(self, path: str | Path) -> None:
        with np.load(_weights_path(path)) as data:
            self.load_state_dict({key: data[key] for key in data.files})


def gradient_check(
    forward_fn: Callable[[np.ndarray], float],
    grad_fn: Callable[[np.ndarray], np.ndarray],
    inputs: np.ndarray,
    epsilon: float = 1e-5,
    num_checks: int = 20,
    seed: int = 0,
) -> float:
    """Finite-difference gradient check.

    Compares the analytic gradient ``grad_fn(inputs)`` against central finite
    differences of ``forward_fn`` at ``num_checks`` random positions, and
    returns the maximum relative error.  Used by the test suite to verify
    every layer's backward pass.
    """
    rng = np.random.default_rng(seed)
    analytic = grad_fn(inputs)
    if analytic.shape != inputs.shape:
        raise ValueError(
            f"analytic gradient shape {analytic.shape} != inputs shape {inputs.shape}"
        )
    max_rel_error = 0.0
    flat_size = inputs.size
    positions = rng.choice(flat_size, size=min(num_checks, flat_size), replace=False)
    for position in positions:
        index = np.unravel_index(position, inputs.shape)
        original = inputs[index]
        inputs[index] = original + epsilon
        loss_plus = forward_fn(inputs)
        inputs[index] = original - epsilon
        loss_minus = forward_fn(inputs)
        inputs[index] = original
        numeric = (loss_plus - loss_minus) / (2 * epsilon)
        denominator = max(abs(numeric) + abs(analytic[index]), 1e-8)
        rel_error = abs(numeric - analytic[index]) / denominator
        max_rel_error = max(max_rel_error, rel_error)
    return max_rel_error
