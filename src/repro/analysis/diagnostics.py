"""Diagnostic model of the static analyzer.

Every check in :mod:`repro.analysis` reports its findings as
:class:`Diagnostic` records with a *stable* code, so tests, tooling and
callers can match on behaviour rather than message text.  Codes are grouped
by layer:

* ``QA0xx`` — query-level (AST) semantic findings,
* ``PL0xx`` — plan-level (cascade) findings,
* ``CC0xx`` — concurrency / pickle pre-flight findings,
* ``NN0xx`` — network shape/dtype abstract-interpretation findings,
* ``RC0xx`` — runtime race / determinism sanitizer findings,
* ``NU0xx`` — runtime numeric sanitizer findings.

A :class:`Span` ties a diagnostic back to the offending clause of the query
text the parser saw (character offsets into the normalized source), so
rendered diagnostics can quote the clause instead of pointing at a Python
stack frame.  Diagnostics are collected into an :class:`AnalysisReport`,
whose ``strict`` consumers call :meth:`AnalysisReport.raise_for_errors` to
turn error-severity findings into an :class:`AnalysisError`.

This module is deliberately *near-leaf*: it imports only
:mod:`repro.query.ast` (for :class:`Span`, which the parser attaches to AST
nodes), so every layer above the AST — planner, executor, window machinery —
can depend on it without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.query.ast import Span


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make execution wrong, impossible, or provably useless
    (a contradictory query, an unpicklable check destined for a process
    worker); ``WARNING`` findings waste work or drop data silently (a
    subsumed predicate, a tail-dropping window); ``INFO`` records decisions
    the analyzer took on the caller's behalf (a plan short-circuited to an
    empty scan).
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


#: Registry of every stable diagnostic code: code -> (default severity, title).
#: The table in README.md is generated from this mapping — keep them in sync.
DIAGNOSTIC_CODES: dict[str, tuple[Severity, str]] = {
    "QA001": (Severity.ERROR, "contradictory count constraints (provably empty)"),
    "QA002": (Severity.WARNING, "count predicate subsumed by the other constraints"),
    "QA003": (Severity.ERROR, "unknown object class"),
    "QA004": (Severity.ERROR, "unknown color name"),
    "QA005": (Severity.WARNING, "window larger than the stream"),
    "QA006": (Severity.WARNING, "hopping window drops frames (tail remainder or inter-window gap)"),
    "QA007": (Severity.ERROR, "region predicate over a region outside the frame"),
    "QA008": (Severity.ERROR, "region predicate demands more objects than the counts allow"),
    "QA009": (Severity.ERROR, "predicate needs objects a count constraint rules out"),
    "QA010": (Severity.WARNING, "duplicate predicate"),
    "PL001": (Severity.WARNING, "duplicate cascade step"),
    "PL002": (Severity.WARNING, "trivially-true (dead) cascade step"),
    "PL003": (Severity.INFO, "plan short-circuited: query is provably empty"),
    "CC001": (Severity.ERROR, "cascade step failed the pickle pre-flight"),
    "CC002": (Severity.ERROR, "check is a lambda / closure / local callable"),
    "CC003": (Severity.WARNING, "check carries mutable state"),
    "CC004": (Severity.WARNING, "check mutates attribute state when called"),
    "NN001": (Severity.ERROR, "inter-layer shape mismatch"),
    "NN002": (Severity.ERROR, "layer geometry invalid (non-positive or indivisible spatial dims)"),
    "NN003": (Severity.ERROR, "eval-dtype drift (breaks the float32 inference fast path)"),
    "NN004": (Severity.WARNING, "dead or unreachable layer"),
    "NN005": (Severity.INFO, "opaque layer: shape and dtype assumed preserved"),
    "RC001": (Severity.ERROR, "unsynchronized concurrent access to shared state"),
    "RC002": (Severity.ERROR, "worker-private state entered by two threads concurrently"),
    "RC003": (Severity.ERROR, "simulated clock raced by concurrent charges"),
    "RC004": (Severity.ERROR, "parallel and sequential chunk results diverged"),
    "NU001": (Severity.ERROR, "NaN in layer output"),
    "NU002": (Severity.ERROR, "non-finite (overflowed) layer output"),
    "NU003": (Severity.ERROR, "non-finite cost accumulation"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    severity: Severity
    message: str
    span: Span | None = None

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unknown diagnostic code: {self.code!r}")

    @property
    def title(self) -> str:
        """The code's registry title (stable across message wording changes)."""
        return DIAGNOSTIC_CODES[self.code][1]

    def render(self, source: str | None = None) -> str:
        """One- or two-line human-readable form, quoting the clause if known."""
        line = f"{self.code} {self.severity.value}: {self.message}"
        if self.span is not None and source:
            line += (
                f"\n  at [{self.span.start}:{self.span.end}]: "
                f"{self.span.excerpt(source)!r}"
            )
        return line


class AnalysisError(ValueError):
    """Raised by ``strict=True`` linting when error-severity findings exist.

    Subclasses :class:`ValueError` so existing callers that guard planner /
    backend misuse with ``except ValueError`` keep working.  ``diagnostics``
    carries every finding of the failed analysis (not only the errors), so
    the caller can render the full report.
    """

    def __init__(self, message: str, diagnostics: tuple[Diagnostic, ...] = ()) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one analysis pass: diagnostics plus derived verdicts.

    ``provably_empty`` is set by the semantic analyzer when the query cannot
    match any frame (the planner turns that into an empty-scan short
    circuit); ``source`` is the query text spans refer to, carried along so
    :meth:`render` can quote clauses.
    """

    diagnostics: tuple[Diagnostic, ...] = ()
    source: str | None = None
    provably_empty: bool = False

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def codes(self) -> tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings and infos are allowed)."""
        return not self.errors

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def merged_with(self, other: "AnalysisReport") -> "AnalysisReport":
        """Both reports' diagnostics; emptiness if either proved it."""
        return AnalysisReport(
            diagnostics=self.diagnostics + other.diagnostics,
            source=self.source or other.source,
            provably_empty=self.provably_empty or other.provably_empty,
        )

    def render(self) -> str:
        """The full report, one finding per paragraph (deterministic)."""
        if not self.diagnostics:
            return "no findings"
        return "\n".join(d.render(self.source) for d in self.diagnostics)

    def emit_warnings(self, stacklevel: int = 3) -> None:
        """Surface every finding as an :class:`AnalysisWarning` (non-strict mode)."""
        import warnings

        for diagnostic in self.diagnostics:
            warnings.warn(
                diagnostic.render(self.source),
                AnalysisWarning,
                stacklevel=stacklevel,
            )

    def raise_for_errors(self, context: str = "static analysis") -> None:
        """Raise :class:`AnalysisError` when any error-severity finding exists."""
        errors = self.errors
        if not errors:
            return
        headline = "; ".join(f"{d.code}: {d.message}" for d in errors)
        raise AnalysisError(
            f"{context} found {len(errors)} error(s): {headline}",
            diagnostics=self.diagnostics,
        )


def diag(code: str, message: str, span: Span | None = None) -> Diagnostic:
    """A diagnostic with the code's registry severity (the common case)."""
    severity, _title = DIAGNOSTIC_CODES[code]
    return Diagnostic(code=code, severity=severity, message=message, span=span)


class AnalysisWarning(UserWarning):
    """Category used when non-strict linting surfaces findings via :mod:`warnings`."""


class WindowTailDropWarning(UserWarning):
    """Runtime counterpart of QA006, emitted by ``HoppingWindow.windows_over``.

    Raised as a :mod:`warnings` category (not a diagnostic) because the drop
    happens inside an iterator deep in the execution path, where no report
    object exists to attach to; the static analyzer emits the equivalent
    QA006 diagnostic ahead of time when the stream length is known.
    """

    code = "QA006"


__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "AnalysisWarning",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "Severity",
    "Span",
    "WindowTailDropWarning",
    "diag",
]
