"""Semantic analysis of a query AST (the ``QA0xx`` diagnostics).

``lint_query`` runs every AST-level check the analyzer knows and returns an
:class:`~repro.analysis.diagnostics.AnalysisReport`.  The checks only use
facts available *before* any frame is decoded: the predicates themselves,
optionally the stream's class vocabulary, frame geometry and length, and the
query's window clause.  The headline result is ``provably_empty`` — set only
from sound logical contradictions (interval emptiness, impossible region
demands, zero-forced classes), never from vocabulary mismatches, so a stale
class list can produce an error diagnostic but never silently discard
frames.

Context arguments are all optional: with none given, only the pure
predicate-logic checks run; passing ``class_names`` enables QA003,
``frame_width``/``frame_height`` enable QA007, ``num_frames`` enables the
window checks QA005/QA006.  :class:`AnalysisContext` bundles them so callers
deep in the engine (planner, executor) can thread one object through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Span, diag
from repro.analysis.intervals import analyze_counts, subsumed_predicates
from repro.query.ast import (
    ColorPredicate,
    ComparisonOperator,
    CountPredicate,
    Query,
    RegionPredicate,
    SpatialPredicate,
    WindowSpec,
)
from repro.spatial.geometry import Box
from repro.video.objects import NAMED_COLORS


@dataclass(frozen=True)
class AnalysisContext:
    """Stream facts the semantic checks may use (all optional).

    ``class_names`` is the detector vocabulary (enables unknown-class
    checks); ``frame_width``/``frame_height`` the frame geometry (region
    containment); ``num_frames`` the stream length (window sanity).
    """

    class_names: tuple[str, ...] | None = None
    frame_width: float | None = None
    frame_height: float | None = None
    num_frames: int | None = None

    @classmethod
    def for_stream(cls, stream) -> "AnalysisContext":
        """Context extracted from a video stream (duck-typed, best effort)."""
        scene = getattr(stream, "scene", None)
        config = getattr(scene, "config", None)
        class_names = getattr(stream, "class_names", None)
        if not class_names:
            # VideoStream carries no vocabulary of its own; the scene's class
            # mix lists every class that can ever appear in its frames.
            mix = getattr(config, "class_mix", None) or ()
            class_names = [
                entry.class_name for entry in mix if getattr(entry, "class_name", None)
            ]
        return cls(
            class_names=tuple(class_names) if class_names else None,
            frame_width=getattr(config, "frame_width", None),
            frame_height=getattr(config, "frame_height", None),
            num_frames=len(stream) if hasattr(stream, "__len__") else None,
        )


def _span(node) -> Span | None:
    return getattr(node, "span", None)


def _required_count(operator: ComparisonOperator, value: int) -> int:
    """The minimum object count a predicate *demands* (0 if satisfiable empty)."""
    if operator in (ComparisonOperator.EQUAL, ComparisonOperator.AT_LEAST):
        return value
    if operator is ComparisonOperator.GREATER:
        return value + 1
    return 0  # AT_MOST / LESS hold vacuously at count zero


def _check_counts(query: Query, diagnostics: list[Diagnostic]) -> bool:
    """QA001 (contradiction) and QA002 (subsumption); returns emptiness."""
    counts = query.count_predicates
    analysis = analyze_counts(counts)
    for target in analysis.empty_targets:
        label = target or "objects"
        interval = analysis.by_target[target]
        offenders = [p for p in counts if p.class_name == target]
        diagnostics.append(
            diag(
                "QA001",
                f"count constraints on {label!r} are contradictory "
                f"(empty interval {interval.describe()}): "
                + " AND ".join(p.describe() for p in offenders),
                span=_span(offenders[0]) if offenders else None,
            )
        )
    if analysis.cross_empty:
        total_hi = analysis.interval_for(None).hi
        lower_sum = sum(
            interval.lo
            for target, interval in analysis.by_target.items()
            if target is not None
        )
        diagnostics.append(
            diag(
                "QA001",
                f"per-class lower bounds sum to {lower_sum} but the total "
                f"count is capped at {total_hi}",
                span=_span(next((p for p in counts if p.class_name is None), None)),
            )
        )
    if not analysis.is_empty:
        for predicate in subsumed_predicates(counts):
            diagnostics.append(
                diag(
                    "QA002",
                    f"{predicate.describe()} is implied by the other count "
                    "constraints and can be dropped",
                    span=_span(predicate),
                )
            )
    return analysis.is_empty


def _check_vocabulary(
    query: Query, context: AnalysisContext, diagnostics: list[Diagnostic]
) -> None:
    """QA003 (unknown class) and QA004 (unknown color)."""
    if context.class_names is not None:
        known = set(context.class_names)
        for class_name in query.referenced_classes:
            if class_name not in known:
                offender = next(
                    (
                        p
                        for p in query.predicates
                        if class_name in _predicate_classes(p)
                    ),
                    None,
                )
                diagnostics.append(
                    diag(
                        "QA003",
                        f"class {class_name!r} is not in the stream vocabulary "
                        f"{sorted(known)}",
                        span=_span(offender),
                    )
                )
    for predicate in query.color_predicates:
        if predicate.color not in NAMED_COLORS:
            diagnostics.append(
                diag(
                    "QA004",
                    f"color {predicate.color!r} is not a known color name "
                    f"(known: {sorted(NAMED_COLORS)})",
                    span=_span(predicate),
                )
            )


def _predicate_classes(predicate) -> tuple[str, ...]:
    if isinstance(predicate, CountPredicate):
        return (predicate.class_name,) if predicate.class_name else ()
    if isinstance(predicate, SpatialPredicate):
        return (predicate.subject_class, predicate.reference_class)
    if isinstance(predicate, (RegionPredicate, ColorPredicate)):
        return (predicate.class_name,)
    return ()


def window_diagnostics(
    window: WindowSpec | None, num_frames: int | None
) -> list[Diagnostic]:
    """QA005 / QA006 for a window clause (also used by the window machinery).

    QA006 fires in two situations: the hop leaves an inter-window gap
    (``advance > size``, detectable with no stream length at all), or the
    stream length is known and the final full window stops short of the last
    frame, silently dropping the tail remainder.
    """
    if window is None:
        return []
    diagnostics: list[Diagnostic] = []
    if num_frames is not None and window.size > num_frames:
        diagnostics.append(
            diag(
                "QA005",
                f"window size {window.size} exceeds the stream length "
                f"{num_frames}; no full window ever completes",
            )
        )
    if window.advance > window.size:
        diagnostics.append(
            diag(
                "QA006",
                f"advance {window.advance} > size {window.size} leaves "
                f"{window.advance - window.size} frames between consecutive "
                "windows unobserved",
            )
        )
    elif num_frames is not None and window.size <= num_frames:
        num_full = (num_frames - window.size) // window.advance + 1
        covered_end = (num_full - 1) * window.advance + window.size
        if covered_end < num_frames:
            diagnostics.append(
                diag(
                    "QA006",
                    f"the final {num_frames - covered_end} frames never fill a "
                    f"window of size {window.size} advancing by {window.advance} "
                    "and are dropped",
                )
            )
    return diagnostics


def _check_regions(
    query: Query, context: AnalysisContext, diagnostics: list[Diagnostic]
) -> bool:
    """QA007 (region outside frame) and QA008 (demand exceeds count cap)."""
    empty = False
    analysis = analyze_counts(query.count_predicates)
    for predicate in query.region_predicates:
        required = _required_count(predicate.operator, predicate.value)
        if (
            context.frame_width is not None
            and context.frame_height is not None
        ):
            frame_box = Box(0, 0, context.frame_width, context.frame_height)
            if frame_box.intersection(predicate.region.box) is None:
                diagnostics.append(
                    diag(
                        "QA007",
                        f"region {predicate.region.name!r} "
                        f"{predicate.region.box} lies entirely outside the "
                        f"{context.frame_width}x{context.frame_height} frame",
                        span=_span(predicate),
                    )
                )
                if predicate.inside and required > 0:
                    empty = True
                continue
        class_hi = analysis.interval_for(predicate.class_name).hi
        total_hi = analysis.interval_for(None).hi
        cap = class_hi if class_hi is not None else total_hi
        if predicate.inside and cap is not None and required > cap:
            diagnostics.append(
                diag(
                    "QA008",
                    f"{predicate.describe()} needs at least {required} "
                    f"{predicate.class_name}(s) but the count constraints cap "
                    f"them at {cap}",
                    span=_span(predicate),
                )
            )
            empty = True
    return empty


def _check_zero_forced(query: Query, diagnostics: list[Diagnostic]) -> bool:
    """QA009: a predicate needs an object of a class the counts force to zero."""
    analysis = analyze_counts(query.count_predicates)
    if analysis.is_empty:
        return False  # QA001 already covers it; avoid cascading noise
    zero_forced = {
        target
        for target, interval in analysis.by_target.items()
        if target is not None and interval.hi == 0
    }
    if analysis.interval_for(None).hi == 0:
        zero_forced.add(None)
    if not zero_forced:
        return False
    empty = False
    for predicate in query.predicates:
        if isinstance(predicate, CountPredicate):
            continue
        needy: tuple[str, ...]
        if isinstance(predicate, SpatialPredicate):
            needy = (predicate.subject_class, predicate.reference_class)
        elif isinstance(predicate, RegionPredicate):
            required = _required_count(predicate.operator, predicate.value)
            needy = (predicate.class_name,) if predicate.inside and required > 0 else ()
        elif isinstance(predicate, ColorPredicate):
            needy = (predicate.class_name,)
        else:  # pragma: no cover - unknown predicate kinds are skipped
            needy = ()
        hit = [c for c in needy if c in zero_forced or None in zero_forced]
        if hit:
            blocked = hit[0] if hit[0] in zero_forced else "any object"
            diagnostics.append(
                diag(
                    "QA009",
                    f"{predicate.describe()} needs a {hit[0]} but the count "
                    f"constraints force {blocked!r} to zero",
                    span=_span(predicate),
                )
            )
            empty = True
    return empty


def _check_duplicates(query: Query, diagnostics: list[Diagnostic]) -> None:
    """QA010: literally identical predicates repeated in the conjunction."""
    seen: dict = {}
    for predicate in query.predicates:
        if predicate in seen:
            diagnostics.append(
                diag(
                    "QA010",
                    f"predicate {predicate.describe()} appears more than once",
                    span=_span(predicate),
                )
            )
        else:
            seen[predicate] = True


def lint_query(
    query: Query,
    context: AnalysisContext | None = None,
    *,
    strict: bool = False,
) -> AnalysisReport:
    """Run every semantic check on ``query`` and return the report.

    With ``strict=True``, error-severity findings raise
    :class:`~repro.analysis.diagnostics.AnalysisError` (warnings never
    raise).  ``context`` supplies optional stream facts; omit it to run only
    the pure predicate-logic checks.
    """
    context = context or AnalysisContext()
    diagnostics: list[Diagnostic] = []
    empty = _check_counts(query, diagnostics)
    _check_vocabulary(query, context, diagnostics)
    empty |= _check_regions(query, context, diagnostics)
    empty |= _check_zero_forced(query, diagnostics)
    _check_duplicates(query, diagnostics)
    diagnostics.extend(window_diagnostics(query.window, context.num_frames))
    report = AnalysisReport(
        diagnostics=tuple(diagnostics),
        source=getattr(query, "source", None),
        provably_empty=empty,
    )
    if strict:
        report.raise_for_errors(context=f"query {query.name!r}")
    return report


__all__ = ["AnalysisContext", "lint_query", "window_diagnostics"]
