"""Static analysis of queries, plans and cascades (runs before any frame).

Three layers, three diagnostic families:

* :func:`lint_query` — semantic checks on the AST (``QA0xx``): count
  interval contradictions and subsumption, vocabulary and region sanity,
  window configuration;
* :func:`lint_plan` / :func:`optimize_cascade` — checks on the compiled
  cascade (``PL0xx``): duplicate and dead steps, provably-empty short
  circuit;
* :func:`audit_cascade` — concurrency / pickle pre-flight (``CC0xx``) run
  before the process backend spawns workers;
* :func:`lint_network` — shape/dtype abstract interpretation over a neural
  filter's layer stack (``NN0xx``), run at filter construction and again by
  :func:`lint_plan`;
* :class:`SanitizerSession` — opt-in *runtime* sanitizers for the parallel
  engine (``RC0xx`` races and nondeterminism, ``NU0xx`` numerics), wired
  through ``ParallelConfig(sanitize=...)``.

All entry points return an :class:`AnalysisReport` of structured
:class:`Diagnostic` records with stable codes, and accept ``strict=True`` to
raise :class:`AnalysisError` (a ``ValueError``) on error-severity findings.
"""

from repro.analysis.concurrency import audit_cascade, audit_check
from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    AnalysisError,
    AnalysisReport,
    AnalysisWarning,
    Diagnostic,
    Severity,
    Span,
    WindowTailDropWarning,
    diag,
)
from repro.analysis.intervals import (
    CountAnalysis,
    Interval,
    analyze_counts,
    combined_interval,
    interval_of,
    subsumed_predicates,
)
from repro.analysis.plan import lint_plan, optimize_cascade, short_circuit_diagnostic
from repro.analysis.sanitizers import (
    SANITIZE_MODES,
    SanitizerSession,
    active_session,
    chunk_digest,
    parse_sanitize_spec,
    sanitized_scan,
)
from repro.analysis.semantic import AnalysisContext, lint_query, window_diagnostics
from repro.analysis.shapes import TensorSpec, describe_layer, input_spec, lint_network

__all__ = [
    "AnalysisContext",
    "AnalysisError",
    "AnalysisReport",
    "AnalysisWarning",
    "CountAnalysis",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "Interval",
    "SANITIZE_MODES",
    "SanitizerSession",
    "Severity",
    "Span",
    "TensorSpec",
    "WindowTailDropWarning",
    "active_session",
    "analyze_counts",
    "audit_cascade",
    "audit_check",
    "chunk_digest",
    "combined_interval",
    "describe_layer",
    "diag",
    "input_spec",
    "interval_of",
    "lint_network",
    "lint_plan",
    "lint_query",
    "optimize_cascade",
    "parse_sanitize_spec",
    "sanitized_scan",
    "short_circuit_diagnostic",
    "subsumed_predicates",
    "window_diagnostics",
]
