"""Static shape/dtype abstract interpreter over ``repro.nn`` layer stacks.

The interpreter propagates a symbolic :class:`TensorSpec` — shape dims that
are concrete ints or symbols like ``"N"``, a numpy dtype, and a
``non_negative`` flag — through a :class:`~repro.nn.network.Sequential` or
:class:`~repro.nn.network.MultiHeadNetwork` without running a single numpy
op.  Each built-in layer has a *transfer function* mirroring exactly what
its ``forward`` would do in the requested mode (``"eval"`` by default, since
that is what the inference fast path runs):

* **NN001** (error) — a layer cannot consume its predecessor's output
  (wrong rank, wrong channel/feature count, or a head output that does not
  match the filter's declared expectation).  The message always names the
  producing/consuming layer pair with a ``trunk[i] Conv2D(...)`` trace.
* **NN002** (error) — valid rank but impossible geometry: a convolution
  whose stride/padding collapses the spatial dims to zero, or a max-pool
  whose window does not divide them.  These are the configurations that
  raise raw ``ValueError`` s from :func:`repro.nn.layers._im2col` mid-scan.
* **NN003** (error) — eval-dtype drift: a layer output dtype that differs
  from its input dtype (e.g. integer activations silently promoting to
  float64 at the first parametric layer), which breaks the float32
  inference fast path's end-to-end dtype guarantee.  Custom layers may
  declare a ``output_dtype`` attribute; a declared dtype that differs from
  the incoming activation dtype is the same drift.
* **NN004** (warning) — dead or unreachable layers: a ReLU/LeakyReLU fed
  provably non-negative activations (sigmoid or ReLU output), a
  ``Flatten`` of an already-flat tensor, or every layer after the point
  where propagation failed.
* **NN005** (info) — a layer type the interpreter does not know; shape and
  dtype are assumed preserved so analysis can continue.

``lint_network`` is called by ``NeuralBranchFilter`` construction and by
plan-level linting (:func:`repro.analysis.plan.lint_plan`), so a malformed
network is rejected when the filter is built or when ``plan()`` runs — not
as a numpy broadcasting error in the middle of a scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence, Union

import numpy as np

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, diag
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePooling2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
)
from repro.nn.network import MultiHeadNetwork, Sequential

#: A symbolic dimension: a concrete extent or a symbol such as ``"N"``.
Dim = Union[int, str]


def _fmt_shape(shape: Sequence[Dim]) -> str:
    return "(" + ", ".join(str(dim) for dim in shape) + ")"


@dataclass(frozen=True)
class TensorSpec:
    """Abstract value flowing between layers: shape, dtype, sign knowledge.

    ``shape`` mixes concrete ints with symbols (the batch dim is symbolic in
    every realistic call); ``non_negative`` records that every element is
    provably ``>= 0`` (the output of a ReLU or sigmoid), which is what makes
    a following ReLU provably dead.
    """

    shape: tuple[Dim, ...]
    dtype: np.dtype[Any]
    non_negative: bool = False

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def describe(self) -> str:
        return f"{_fmt_shape(self.shape)} {self.dtype.name}"


def input_spec(
    image_size: int,
    channels: int = 3,
    dtype: Any = np.float64,
    batch: Dim = "N",
    non_negative: bool = True,
) -> TensorSpec:
    """The NCHW input spec of an image network.

    ``non_negative`` defaults to ``True`` because filter inputs are pixels
    scaled to ``[0, 1]`` (see ``NeuralBranchFilter._prepare_input``).
    """
    return TensorSpec(
        shape=(batch, channels, image_size, image_size),
        dtype=np.dtype(dtype),
        non_negative=non_negative,
    )


def describe_layer(layer: object) -> str:
    """Compact one-token description used in diagnostic layer traces."""
    if isinstance(layer, Conv2D):
        return (
            f"Conv2D({layer.in_channels}->{layer.out_channels}, "
            f"k={layer.kernel_size}, s={layer.stride}, p={layer.padding})"
        )
    if isinstance(layer, Dense):
        in_features, out_features = layer.weight.shape
        return f"Dense({in_features}->{out_features})"
    if isinstance(layer, MaxPool2D):
        return f"MaxPool2D(p={layer.pool_size})"
    if isinstance(layer, LeakyReLU):
        return f"LeakyReLU({layer.negative_slope})"
    return type(layer).__name__


def _promoted(spec: TensorSpec, mode: str) -> np.dtype[Any]:
    """Output dtype of a float64-parameter layer (Conv2D / Dense / GAP)."""
    if mode == "eval":
        if np.issubdtype(spec.dtype, np.floating):
            return spec.dtype
        return np.dtype(np.float64)
    return np.promote_types(spec.dtype, np.float64)


def _drift(
    out: list[Diagnostic], label: str, source: str, spec: TensorSpec, result: np.dtype[Any]
) -> None:
    if result != spec.dtype:
        out.append(
            diag(
                "NN003",
                f"{label} promotes the {spec.dtype.name} activations produced by "
                f"{source} to {result.name}; the inference fast path needs the "
                f"activation dtype preserved end to end (declare a floating "
                f"inference dtype)",
            )
        )


def _transfer(
    layer: object,
    spec: TensorSpec,
    label: str,
    source: str,
    mode: str,
    out: list[Diagnostic],
) -> TensorSpec | None:
    """Abstract forward of one layer; ``None`` aborts the chain (shape error)."""
    if isinstance(layer, Conv2D):
        if spec.ndim != 4 or not _dims_match(spec.shape[1], layer.in_channels):
            out.append(
                diag(
                    "NN001",
                    f"{label} expects (N, {layer.in_channels}, H, W) but "
                    f"{source} produces {spec.describe()}",
                )
            )
            return None
        height, width = spec.shape[2], spec.shape[3]
        out_h = _conv_extent(height, layer.kernel_size, layer.stride, layer.padding)
        out_w = _conv_extent(width, layer.kernel_size, layer.stride, layer.padding)
        if (isinstance(out_h, int) and out_h <= 0) or (isinstance(out_w, int) and out_w <= 0):
            out.append(
                diag(
                    "NN002",
                    f"{label} collapses the {height}x{width} spatial dims produced "
                    f"by {source} to {out_h}x{out_w}",
                )
            )
            return None
        dtype = _promoted(spec, mode)
        _drift(out, label, source, spec, dtype)
        return TensorSpec((spec.shape[0], layer.out_channels, out_h, out_w), dtype)
    if isinstance(layer, Dense):
        in_features = int(layer.weight.shape[0])
        out_features = int(layer.weight.shape[1])
        if spec.ndim != 2 or not _dims_match(spec.shape[1], in_features):
            out.append(
                diag(
                    "NN001",
                    f"{label} expects (N, {in_features}) but {source} produces "
                    f"{spec.describe()}",
                )
            )
            return None
        dtype = _promoted(spec, mode)
        _drift(out, label, source, spec, dtype)
        return TensorSpec((spec.shape[0], out_features), dtype)
    if isinstance(layer, MaxPool2D):
        if spec.ndim != 4:
            out.append(
                diag(
                    "NN001",
                    f"{label} expects NCHW input but {source} produces {spec.describe()}",
                )
            )
            return None
        height, width = spec.shape[2], spec.shape[3]
        pool = layer.pool_size
        if (isinstance(height, int) and height % pool != 0) or (
            isinstance(width, int) and width % pool != 0
        ):
            out.append(
                diag(
                    "NN002",
                    f"{label} cannot pool the {height}x{width} spatial dims produced "
                    f"by {source}: not divisible by pool size {pool}",
                )
            )
            return None
        out_h = height // pool if isinstance(height, int) else height
        out_w = width // pool if isinstance(width, int) else width
        return TensorSpec(
            (spec.shape[0], spec.shape[1], out_h, out_w),
            spec.dtype,
            non_negative=spec.non_negative,
        )
    if isinstance(layer, GlobalAveragePooling2D):
        if spec.ndim != 4:
            out.append(
                diag(
                    "NN001",
                    f"{label} expects NCHW input but {source} produces {spec.describe()}",
                )
            )
            return None
        dtype = _promoted(spec, mode)
        _drift(out, label, source, spec, dtype)
        return TensorSpec((spec.shape[0], spec.shape[1]), dtype, non_negative=spec.non_negative)
    if isinstance(layer, Flatten):
        if spec.ndim < 2:
            out.append(
                diag(
                    "NN001",
                    f"{label} expects a batched input but {source} produces "
                    f"{spec.describe()}",
                )
            )
            return None
        if spec.ndim == 2:
            out.append(
                diag(
                    "NN004",
                    f"{label} is a no-op: {source} already produces the flat "
                    f"{spec.describe()}",
                )
            )
            return spec
        return TensorSpec(
            (spec.shape[0], _product(spec.shape[1:])),
            spec.dtype,
            non_negative=spec.non_negative,
        )
    if isinstance(layer, ReLU):
        if spec.non_negative:
            out.append(
                diag(
                    "NN004",
                    f"{label} is dead: {source} already produces provably "
                    f"non-negative activations",
                )
            )
        return TensorSpec(spec.shape, spec.dtype, non_negative=True)
    if isinstance(layer, LeakyReLU):
        if spec.non_negative:
            out.append(
                diag(
                    "NN004",
                    f"{label} is dead: {source} already produces provably "
                    f"non-negative activations (leaky slope only touches x < 0)",
                )
            )
        return TensorSpec(spec.shape, spec.dtype, non_negative=spec.non_negative)
    if isinstance(layer, Sigmoid):
        dtype = (
            spec.dtype if np.issubdtype(spec.dtype, np.floating) else np.dtype(np.float64)
        )
        _drift(out, label, source, spec, dtype)
        return TensorSpec(spec.shape, dtype, non_negative=True)
    if type(layer).__name__ == "_GridReshape":
        num_classes = int(getattr(layer, "num_classes"))
        grid_size = int(getattr(layer, "grid_size"))
        features = num_classes * grid_size * grid_size
        if spec.ndim != 2 or not _dims_match(spec.shape[1], features):
            out.append(
                diag(
                    "NN001",
                    f"{label} expects (N, {features}) but {source} produces "
                    f"{spec.describe()}",
                )
            )
            return None
        return TensorSpec(
            (spec.shape[0], num_classes, grid_size, grid_size),
            spec.dtype,
            non_negative=spec.non_negative,
        )
    declared = getattr(layer, "output_dtype", None)
    if declared is not None:
        dtype = np.dtype(declared)
        _drift(out, label, source, spec, dtype)
        return TensorSpec(spec.shape, dtype)
    out.append(
        diag(
            "NN005",
            f"{label} is opaque to the shape interpreter; assuming it preserves "
            f"{spec.describe()}",
        )
    )
    return TensorSpec(spec.shape, spec.dtype)


def _conv_extent(extent: Dim, kernel: int, stride: int, padding: int) -> Dim:
    if not isinstance(extent, int):
        return extent
    return (extent + 2 * padding - kernel) // stride + 1


def _product(dims: Sequence[Dim]) -> Dim:
    product = 1
    for dim in dims:
        if not isinstance(dim, int):
            return "*"
        product *= dim
    return product


def _dims_match(actual: Dim, expected: Dim) -> bool:
    if isinstance(actual, int) and isinstance(expected, int):
        return actual == expected
    return True


def _shapes_match(actual: Sequence[Dim], expected: Sequence[Dim]) -> bool:
    if len(actual) != len(expected):
        return False
    return all(_dims_match(a, e) for a, e in zip(actual, expected))


def _propagate(
    layers: Sequence[object],
    spec: TensorSpec,
    path: str,
    source: str,
    mode: str,
    out: list[Diagnostic],
) -> TensorSpec | None:
    """Run the abstract interpreter over one layer chain."""
    current: TensorSpec | None = spec
    for position, layer in enumerate(layers):
        label = f"{path}[{position}] {describe_layer(layer)}"
        assert current is not None
        current = _transfer(layer, current, label, source, mode, out)
        if current is None:
            remainder = [
                f"{path}[{index}] {describe_layer(rest)}"
                for index, rest in enumerate(layers[position + 1 :], start=position + 1)
            ]
            if remainder:
                out.append(
                    diag(
                        "NN004",
                        f"unreachable layers after {label}: {', '.join(remainder)}",
                    )
                )
            return None
        source = label
    return current


def lint_network(
    network: Sequential | MultiHeadNetwork,
    spec: TensorSpec,
    *,
    mode: str = "eval",
    strict: bool = False,
    expected_outputs: Mapping[str, tuple[Dim, ...]] | None = None,
) -> AnalysisReport:
    """Abstract-interpret ``network`` from ``spec`` and report NN0xx findings.

    ``expected_outputs`` maps head names (or ``"output"`` for a bare
    :class:`Sequential`) to the shape the caller requires; a reachable final
    shape that does not match is an NN001 naming the head and expectation.
    ``strict=True`` raises :class:`~repro.analysis.diagnostics.AnalysisError`
    on any error-severity finding.
    """
    if mode not in ("eval", "train"):
        raise ValueError(f"mode must be 'eval' or 'train': {mode!r}")
    expected_outputs = dict(expected_outputs or {})
    findings: list[Diagnostic] = []
    finals: dict[str, TensorSpec | None] = {}
    origin = "the network input"
    if isinstance(network, MultiHeadNetwork):
        trunk_spec = _propagate(network.trunk.layers, spec, "trunk", origin, mode, findings)
        if trunk_spec is None:
            heads = ", ".join(sorted(network.heads))
            findings.append(
                diag(
                    "NN004",
                    f"heads {heads} are unreachable: trunk propagation failed",
                )
            )
        else:
            trunk_source = "the trunk output"
            for name, head in network.heads.items():
                finals[name] = _propagate(
                    head.layers, trunk_spec, f"head.{name}", trunk_source, mode, findings
                )
    elif isinstance(network, Sequential):
        finals["output"] = _propagate(network.layers, spec, "net", origin, mode, findings)
    else:
        raise TypeError(f"cannot lint a {type(network).__name__}: not a network container")
    for name, expected in expected_outputs.items():
        final = finals.get(name)
        if final is None:
            continue
        if not _shapes_match(final.shape, expected):
            findings.append(
                diag(
                    "NN001",
                    f"{name} output {final.describe()} does not match the expected "
                    f"{_fmt_shape(expected)}",
                )
            )
    report = AnalysisReport(diagnostics=tuple(findings))
    if strict:
        report.raise_for_errors(context="network shape analysis")
    return report


__all__ = [
    "Dim",
    "TensorSpec",
    "describe_layer",
    "input_spec",
    "lint_network",
]
