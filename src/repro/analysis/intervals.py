"""Interval analysis over count predicates.

A conjunction of count predicates on the same target (one class, or the
total) constrains the true count to an integer interval: ``COUNT(car) >= 2``
means ``[2, inf)``, ``COUNT(car) < 5`` means ``[0, 4]``, and their
conjunction ``[2, 4]``.  The analyzer intersects every predicate's interval
per target and reads three facts straight off the result:

* **emptiness** — ``lo > hi`` means no frame can satisfy the conjunction
  (``COUNT(car) > 5 AND COUNT(car) < 3``), the query is provably empty;
* **subsumption** — a predicate whose removal leaves the target's interval
  unchanged adds no information (``COUNT(car) >= 1`` next to
  ``COUNT(car) >= 3``);
* **zero-forcing** — ``hi == 0`` means the class cannot appear at all, which
  contradicts any other predicate that needs at least one such object.

A cross-target check ties the per-class intervals to the total: every frame
has ``total >= sum(per-class counts)``, so if the per-class lower bounds add
up to more than the total's upper bound, the query is empty even though each
individual interval is fine (``COUNT(car) >= 3 AND COUNT(*) <= 2``).

Counts are non-negative, so every interval lives in ``[0, inf)``; ``hi`` of
``None`` encodes the unbounded upper end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import ComparisonOperator, CountPredicate


@dataclass(frozen=True)
class Interval:
    """An integer interval ``[lo, hi]``; ``hi=None`` means unbounded above."""

    lo: int = 0
    hi: int | None = None

    @property
    def is_empty(self) -> bool:
        return self.hi is not None and self.lo > self.hi

    def intersect(self, other: "Interval") -> "Interval":
        lo = max(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        return Interval(lo=lo, hi=hi)

    def describe(self) -> str:
        upper = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {upper}]"


#: The interval of counts a single predicate admits (counts are >= 0, so
#: lower bounds clamp at zero; ``LESS 0`` / ``GREATER`` produce the strict
#: integer neighbours).
def interval_of(predicate: CountPredicate) -> Interval:
    operator, value = predicate.operator, predicate.value
    if operator is ComparisonOperator.EQUAL:
        return Interval(lo=value, hi=value)
    if operator is ComparisonOperator.AT_LEAST:
        return Interval(lo=value, hi=None)
    if operator is ComparisonOperator.AT_MOST:
        return Interval(lo=0, hi=value)
    if operator is ComparisonOperator.GREATER:
        return Interval(lo=value + 1, hi=None)
    if operator is ComparisonOperator.LESS:
        return Interval(lo=0, hi=value - 1)
    raise ValueError(f"unknown operator {operator}")  # pragma: no cover


def combined_interval(predicates: list[CountPredicate]) -> Interval:
    """Intersection of every predicate's interval (full ``[0, inf)`` if none)."""
    result = Interval()
    for predicate in predicates:
        result = result.intersect(interval_of(predicate))
    return result


@dataclass(frozen=True)
class CountAnalysis:
    """Per-target count intervals of a query's count-predicate conjunction.

    ``by_target`` maps the count target (a class name, or ``None`` for the
    total) to the intersected interval of every count predicate on it.
    ``cross_empty`` flags the sum-of-lower-bounds-vs-total contradiction,
    which no single target's interval shows.
    """

    by_target: dict[str | None, Interval]
    cross_empty: bool

    def interval_for(self, target: str | None) -> Interval:
        """The target's interval; unconstrained targets get full ``[0, inf)``."""
        return self.by_target.get(target, Interval())

    @property
    def empty_targets(self) -> list[str | None]:
        return [t for t, interval in self.by_target.items() if interval.is_empty]

    @property
    def is_empty(self) -> bool:
        """Whether the count conjunction alone proves the query matches nothing."""
        return self.cross_empty or bool(self.empty_targets)


def analyze_counts(predicates: list[CountPredicate]) -> CountAnalysis:
    """Intersect the predicates' intervals per target and run the cross check."""
    by_target: dict[str | None, Interval] = {}
    for predicate in predicates:
        current = by_target.get(predicate.class_name, Interval())
        by_target[predicate.class_name] = current.intersect(interval_of(predicate))

    total = by_target.get(None, Interval())
    class_lo_sum = sum(
        interval.lo for target, interval in by_target.items() if target is not None
    )
    cross_empty = total.hi is not None and class_lo_sum > total.hi
    return CountAnalysis(by_target=by_target, cross_empty=cross_empty)


def subsumed_predicates(predicates: list[CountPredicate]) -> list[CountPredicate]:
    """Count predicates whose removal leaves every target's interval unchanged.

    Checked one at a time against the rest (not jointly): of two mutually
    redundant predicates (``COUNT(car) >= 2`` twice), each is individually
    subsumed by the other, and the caller reports both — dropping *all*
    reported predicates at once is not sound, dropping any one of them is.
    """
    redundant: list[CountPredicate] = []
    for index, predicate in enumerate(predicates):
        peers = [p for i, p in enumerate(predicates) if i != index and p.class_name == predicate.class_name]
        with_p = combined_interval(peers + [predicate])
        without_p = combined_interval(peers)
        if with_p == without_p and not with_p.is_empty:
            redundant.append(predicate)
    return redundant


__all__ = [
    "CountAnalysis",
    "Interval",
    "analyze_counts",
    "combined_interval",
    "interval_of",
    "subsumed_predicates",
]
