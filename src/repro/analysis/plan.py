"""Plan-level checks over a compiled filter cascade (the ``PL0xx`` diagnostics).

The planner compiles a query into a :class:`FilterCascade` of conjunctive
steps; these checks inspect the *compiled* artefact, where two kinds of
waste show up that the AST never exposes:

* **duplicate steps** (PL001) — two steps with the same semantic key (name,
  filter identity, signature) decide the same thing; the second adds a check
  invocation per surviving frame for no information;
* **dead steps** (PL002) — a count check whose tolerance swallows all of its
  predicates' demands passes *every* possible prediction (counts are
  non-negative, so ``COUNT(car) >= 1`` at tolerance 1 can never reject), so
  the filter is evaluated for nothing.

``optimize_cascade`` removes both, with two safety rails: elimination never
empties a cascade that had live steps (``primary_filter`` consumers such as
aggregate estimation need at least one filter to anchor on), and only
planner-built steps (those carrying a ``signature``) are ever considered —
hand-built lambda steps are opaque and always kept.  Because cascade steps
are conjunctive and a removed step either repeats a kept one or passes
everything, the optimized cascade passes exactly the same frames.

This module deliberately avoids a module-level import of
:mod:`repro.query.planner` (which imports :mod:`repro.analysis` in turn);
step internals are reached by duck-typing and a function-local import.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, diag
from repro.query.ast import ComparisonOperator


def _step_key(step: Any) -> tuple | None:
    """The semantic identity of a planner-built step (``None`` if hand-built)."""
    signature = getattr(step, "signature", None)
    if signature is None:
        return None
    return (step.name, step.frame_filter.identity, signature)


def _predicate_is_trivial(predicate: Any, tolerance: int) -> bool:
    """Whether the tolerant check of this count predicate passes every count.

    Mirrors ``_comparison_possible`` in the planner at ``predicted = 0`` (the
    worst case for lower-bound operators, since predictions are
    non-negative): ``>= value`` widens to ``predicted >= value - tolerance``,
    trivially true when ``value <= tolerance``; ``> value`` widens to
    ``predicted > value - tolerance``, trivially true when
    ``value < tolerance``.  Upper-bound and equality operators always reject
    some sufficiently large prediction, so they are never trivial.
    """
    operator, value = predicate.operator, predicate.value
    if operator is ComparisonOperator.AT_LEAST:
        return value <= tolerance
    if operator is ComparisonOperator.GREATER:
        return value < tolerance
    return False


def _step_is_dead(step: Any) -> bool:
    """Whether the step's check passes every possible prediction."""
    from repro.query.planner import CountCheck  # local: planner imports us

    check = getattr(step, "check", None)
    if not isinstance(check, CountCheck):
        return False  # location checks can always reject (empty masks)
    return all(
        _predicate_is_trivial(predicate, check.tolerance)
        for predicate in check.predicates
    )


def _lint_step_networks(cascade: Any, diagnostics: list[Diagnostic]) -> None:
    """Run the NN0xx shape interpreter over every neural filter in the plan.

    A filter exposing ``network`` + ``image_size`` (i.e.
    :class:`~repro.filters.neural.NeuralBranchFilter` or anything
    shape-compatible) gets its layer stack abstract-interpreted with the
    filter's declared inference dtype, so a malformed network is rejected at
    ``plan()`` time with a layer trace — not mid-scan.  Each distinct
    network is linted once.
    """
    from repro.analysis.shapes import input_spec, lint_network
    from repro.nn.network import MultiHeadNetwork, Sequential

    seen: set[int] = set()
    for step in cascade.steps:
        frame_filter = getattr(step, "frame_filter", None)
        network = getattr(frame_filter, "network", None)
        image_size = getattr(frame_filter, "image_size", None)
        if network is None or image_size is None or id(network) in seen:
            continue
        if not isinstance(network, (Sequential, MultiHeadNetwork)):
            continue
        seen.add(id(network))
        dtype = getattr(frame_filter, "inference_dtype", None)
        spec = input_spec(int(image_size), dtype=dtype if dtype is not None else "float64")
        name = getattr(frame_filter, "name", type(frame_filter).__name__)
        # The filter's declared classes/grid pin the head shapes it will
        # index into (lint_network skips expectations for absent heads).
        expected: dict[str, tuple] = {}
        class_names = getattr(frame_filter, "class_names", None)
        grid = getattr(frame_filter, "grid", None)
        if class_names is not None:
            expected["counts"] = ("N", len(class_names))
            if grid is not None:
                expected["grid"] = ("N", len(class_names), grid.rows, grid.cols)
        for finding in lint_network(network, spec, expected_outputs=expected):
            diagnostics.append(
                replace(finding, message=f"filter {name!r}: {finding.message}")
            )


def lint_plan(cascade: Any, *, strict: bool = False) -> AnalysisReport:
    """Report duplicate (PL001), dead (PL002) and malformed-network (NN0xx) steps."""
    diagnostics: list[Diagnostic] = []
    seen: set[tuple] = set()
    for position, step in enumerate(cascade.steps):
        key = _step_key(step)
        if key is not None and key in seen:
            diagnostics.append(
                diag(
                    "PL001",
                    f"step {position} ({step.name}) duplicates an earlier step "
                    "with the same filter and signature",
                )
            )
        elif key is not None:
            seen.add(key)
        if _step_is_dead(step):
            diagnostics.append(
                diag(
                    "PL002",
                    f"step {position} ({step.name}) is trivially true: its "
                    "count demands are within the tolerance, so it can never "
                    "reject a frame",
                )
            )
    _lint_step_networks(cascade, diagnostics)
    report = AnalysisReport(diagnostics=tuple(diagnostics))
    if strict:
        report.raise_for_errors(context="plan analysis")
    return report


def optimize_cascade(cascade: Any) -> tuple[Any, AnalysisReport]:
    """Drop duplicate and dead steps; returns ``(new_cascade, report)``.

    The input cascade is not modified.  Elimination is conservative: at
    least one step always survives a cascade that had any (dead steps are
    kept, last-first, if removing them all would empty the cascade), so the
    cascade's ``primary_filter`` stays defined for aggregate estimation.
    """
    report = lint_plan(cascade)
    if not report.diagnostics:
        return cascade, report

    kept = []
    seen: set[tuple] = set()
    for step in cascade.steps:
        key = _step_key(step)
        if key is not None and key in seen:
            continue
        if key is not None:
            seen.add(key)
        kept.append(step)
    live = [step for step in kept if not _step_is_dead(step)]
    if not live and kept:
        live = kept[:1]  # keep one anchor step rather than empty the cascade
    return replace(cascade, steps=live), report


def short_circuit_diagnostic(query_name: str) -> Diagnostic:
    """The PL003 record the planner attaches when a query is provably empty."""
    return diag(
        "PL003",
        f"query {query_name!r} is provably empty; the plan short-circuits to "
        "an empty scan (no frames rendered or filtered)",
    )


__all__ = ["lint_plan", "optimize_cascade", "short_circuit_diagnostic"]
