"""Concurrency / pickle pre-flight for process-backend execution (``CC0xx``).

The process backend ships whole cascades — filters, steps, check callables —
to worker processes by pickling them once per worker.  A lambda check or a
check class defined inside a function body fails that pickling *after* the
pool has spawned, surfacing as an opaque mid-run error; a check that carries
mutable state pickles fine but silently forks that state per worker, so any
mutation (a cache, a counter) diverges between workers and the sequential
path.

``audit_cascade`` catches all of this before a single worker exists:

* **CC002** (error) — the check is a lambda, a closure over local state, or
  defined at function-local scope (``<locals>`` in its qualname); such
  callables can never be pickled by reference.
* **CC001** (error) — the step actually fails ``pickle.dumps`` (the dynamic
  backstop for anything the static rules miss).
* **CC003** (warning) — the check is a non-frozen dataclass or holds mutable
  containers; each worker gets an independent copy, so mutations do not
  propagate.
* **CC004** (warning) — the check's ``__call__`` assigns to ``self``
  attributes (found with a stdlib :mod:`ast` walk over its source), i.e. it
  *will* mutate per-worker state when invoked.

Static rules run first so the diagnostics can say *why* a step is unsafe,
not just that ``pickle`` refused it.
"""

from __future__ import annotations

import ast
import inspect
import pickle
import textwrap
from dataclasses import fields, is_dataclass
from typing import Any

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, diag

_MUTABLE_TYPES = (list, dict, set, bytearray)


def _is_local_callable(check: Any) -> str | None:
    """A CC002 reason when the callable cannot be pickled by reference."""
    if inspect.isfunction(check):
        if check.__name__ == "<lambda>":
            return "it is a lambda"
        if check.__closure__:
            names = getattr(check.__code__, "co_freevars", ())
            return f"it closes over local variables {list(names)}"
        if "<locals>" in check.__qualname__:
            return "it is defined inside a function body"
        return None
    cls = type(check)
    if "<locals>" in cls.__qualname__:
        return f"its class {cls.__name__!r} is defined inside a function body"
    return None


def _mutable_state_reason(check: Any) -> str | None:
    """A CC003 reason when the check instance carries mutable state."""
    cls = type(check)
    if inspect.isfunction(check):
        return None
    if is_dataclass(check):
        if not cls.__dataclass_params__.frozen:
            return f"{cls.__name__} is a non-frozen dataclass"
        mutable = [
            f.name
            for f in fields(check)
            if isinstance(getattr(check, f.name, None), _MUTABLE_TYPES)
        ]
        if mutable:
            return f"{cls.__name__} holds mutable containers in {mutable}"
        return None
    state = getattr(check, "__dict__", None)
    if state:
        return f"{cls.__name__} carries instance attributes {sorted(state)}"
    return None


def _call_mutates_self(check: Any) -> list[str]:
    """Names of ``self`` attributes ``__call__`` assigns to (CC004), via ast."""
    cls = type(check)
    call = getattr(cls, "__call__", None)
    if call is None or inspect.isfunction(check):
        return []
    try:
        source = inspect.getsource(call)
    except (OSError, TypeError):
        return []
    try:
        # dedent, not cleandoc: cleandoc strips the *body* indentation of a
        # method relative to its ``def`` line, which never parses.
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError:  # pragma: no cover - unparsable decorated source
        return []
    assigned: list[str] = []
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and node.target:
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in assigned
            ):
                assigned.append(target.attr)
    return assigned


def audit_check(check: Any, label: str) -> list[Diagnostic]:
    """Static findings for one check callable (no pickling attempted)."""
    diagnostics: list[Diagnostic] = []
    local_reason = _is_local_callable(check)
    if local_reason is not None:
        diagnostics.append(
            diag(
                "CC002",
                f"{label}: the check cannot be pickled by reference — "
                f"{local_reason}; use a module-level frozen dataclass instead",
            )
        )
    mutable_reason = _mutable_state_reason(check)
    if mutable_reason is not None:
        diagnostics.append(
            diag(
                "CC003",
                f"{label}: {mutable_reason}; each worker gets an independent "
                "copy, so mutations will not be shared",
            )
        )
    mutated = _call_mutates_self(check)
    if mutated:
        diagnostics.append(
            diag(
                "CC004",
                f"{label}: __call__ assigns to self.{mutated[0]} — per-worker "
                "state will diverge from sequential execution",
            )
        )
    return diagnostics


def audit_cascade(cascade: Any, *, strict: bool = False) -> AnalysisReport:
    """Pre-flight every step of ``cascade`` for process-backend shipping.

    Static rules first (CC002/CC003/CC004 with actionable reasons), then the
    dynamic ``pickle.dumps`` backstop (CC001) on each step whose check passed
    the static reference-pickling rule — a step already flagged CC002 would
    only produce a redundant, less readable CC001.  With ``strict=True``,
    error findings raise :class:`~repro.analysis.diagnostics.AnalysisError`
    (a :class:`ValueError`) before any worker is spawned.
    """
    diagnostics: list[Diagnostic] = []
    for position, step in enumerate(cascade.steps):
        label = f"step {position} ({step.name})"
        step_diagnostics = audit_check(step.check, label)
        diagnostics.extend(step_diagnostics)
        if any(d.code == "CC002" for d in step_diagnostics):
            continue
        try:
            pickle.dumps(step)
        except Exception as error:
            diagnostics.append(
                diag(
                    "CC001",
                    f"{label} failed the pickle pre-flight: "
                    f"{type(error).__name__}: {error}",
                )
            )
    report = AnalysisReport(diagnostics=tuple(diagnostics))
    if strict:
        report.raise_for_errors(context="concurrency pre-flight")
    return report


__all__ = ["audit_cascade", "audit_check"]
