"""Opt-in runtime sanitizers for the parallel execution engine.

Three cooperating sanitizers, selected through
``ParallelConfig(sanitize=...)`` and active only while a
:class:`SanitizerSession` is installed (every hook in the hot paths is a
module-level global that is ``None`` by default, so the instrumentation
costs one global load when off — the invariant lint's INV007 enforces
exactly that pattern):

* **Race detector** (``"race"``, RC0xx) — a lockset/ownership checker over
  the engine's shared state.  Instrumented critical sections declare the
  locks they hold (:meth:`SanitizerSession.cache_access` for the
  :class:`~repro.video.stream.VideoStream` frame LRU), worker tasks open an
  *ownership window* over their private cascade clones
  (:meth:`SanitizerSession.worker_window`), and every
  :class:`~repro.cost.SimulatedClock` charge/absorb/reuse runs inside a
  clock access (:meth:`SanitizerSession.clock_access`).  Two overlapping
  accesses to the same resource from different threads with disjoint
  declared locksets — or one clock charged inside two concurrently open
  worker windows — is a race, reported with both threads' captured stacks:
  RC001 for shared state (the LRU), RC002 for worker-private clones, RC003
  for clocks.
* **Numeric sanitizer** (``"numeric"``, NU0xx) — hooks every
  :class:`~repro.nn.network.Sequential` layer output for NaN (NU001) and
  Inf/overflow (NU002), naming the offending layer and the chunk being
  processed, and every cost accumulation for a non-finite charge or total
  (NU003).
* **Determinism checker** (``"determinism"``, RC004) — digests each merged
  chunk's per-query alive sets during the parallel scan, then re-runs the
  same chunks sequentially on a clock-detached deep copy of the cascades
  and reports the first divergent chunk.  Cascade steps are conjunctive, so
  the digest is invariant under adaptive step reordering; any divergence is
  real nondeterminism (state leaking between workers, an order-dependent
  check, a thread-dependent filter).

``strict`` sessions (the default through ``ParallelConfig``) raise
:class:`~repro.analysis.diagnostics.AnalysisError` at the first
error-severity finding — inside whichever thread tripped it, which
propagates through the worker future to the merge loop and aborts the scan.
Non-strict sessions collect everything into an
:class:`~repro.analysis.diagnostics.AnalysisReport` exposed on the
execution's stats.
"""

from __future__ import annotations

import copy
import hashlib
import importlib
import math
import threading
import traceback
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, diag

#: The sanitizer modes ``ParallelConfig(sanitize=...)`` understands.
SANITIZE_MODES = ("race", "numeric", "determinism")

#: ``(module, attribute)`` hook sites; each module declares the attribute as
#: ``None`` and guards every use with ``is not None`` (INV007).
HOOK_SITES = (
    ("repro.cost", "_CLOCK_SANITIZER"),
    ("repro.video.stream", "_FRAME_CACHE_SANITIZER"),
    ("repro.nn.network", "_LAYER_SANITIZER"),
    ("repro.query.parallel", "_WORKER_SANITIZER"),
)


def parse_sanitize_spec(spec: str | Iterable[str] | None) -> frozenset[str]:
    """Normalise a ``sanitize=`` value to the set of enabled modes.

    Accepts ``None`` (empty), ``"all"``, a single mode name, a comma- or
    plus-separated string, or an iterable of mode names.
    """
    if spec is None:
        return frozenset()
    if isinstance(spec, str):
        tokens = [token.strip() for token in spec.replace("+", ",").split(",")]
        tokens = [token for token in tokens if token]
    else:
        tokens = [str(token).strip() for token in spec]
    modes: set[str] = set()
    for token in tokens:
        if token == "all":
            modes.update(SANITIZE_MODES)
        elif token in SANITIZE_MODES:
            modes.add(token)
        else:
            raise ValueError(
                f"unknown sanitizer {token!r}: expected one of "
                f"{', '.join(SANITIZE_MODES)} or 'all'"
            )
    return frozenset(modes)


def _capture_stack(skip: int = 3, limit: int = 12) -> str:
    """A compact one-line stack trace of the calling thread (innermost last)."""
    frames = traceback.extract_stack(limit=limit + skip)[:-skip]
    shown = frames[-4:]
    return " -> ".join(
        f"{frame.name}@{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}"
        for frame in shown
    )


def chunk_digest(alive: Sequence[Sequence[int]]) -> str:
    """Stable digest of one chunk's per-query alive sets."""
    normalized = tuple(tuple(int(index) for index in row) for row in alive)
    return hashlib.sha256(repr(normalized).encode("utf-8")).hexdigest()[:16]


class _OpenAccess:
    """One in-flight instrumented critical section."""

    __slots__ = ("resource", "thread_id", "thread_name", "locks", "stack", "touched")

    def __init__(self, resource: tuple[Any, ...], locks: frozenset[int]) -> None:
        current = threading.current_thread()
        self.resource = resource
        self.thread_id = current.ident
        self.thread_name = current.name
        self.locks = locks
        self.stack = _capture_stack(skip=4)
        #: clock resources charged inside this window (worker windows only),
        #: mapped to the stack of the first charge
        self.touched: dict[tuple[Any, ...], str] = {}


class SanitizerSession:
    """One activation of the runtime sanitizers (installs / removes the hooks)."""

    def __init__(self, modes: Iterable[str] | str | None, strict: bool = True) -> None:
        self.modes = parse_sanitize_spec(modes)
        if not self.modes:
            raise ValueError("a sanitizer session needs at least one mode")
        self.strict = strict
        self._mu = threading.Lock()
        self._findings: list[Diagnostic] = []
        self._seen: set[tuple[str, tuple[Any, ...]]] = set()
        self._inflight: dict[tuple[Any, ...], list[_OpenAccess]] = {}
        self._windows: list[_OpenAccess] = []
        self._local = threading.local()
        self._chunk_digests: dict[int, str] = {}
        self._installed = False

    # ------------------------------------------------------------------
    # Mode queries
    # ------------------------------------------------------------------
    @property
    def race(self) -> bool:
        return "race" in self.modes

    @property
    def numeric(self) -> bool:
        return "numeric" in self.modes

    @property
    def determinism(self) -> bool:
        return "determinism" in self.modes

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------
    def record(self, finding: Diagnostic, key: tuple[Any, ...] = ()) -> None:
        """Record one finding (deduped per resource); strict sessions raise."""
        with self._mu:
            dedup = (finding.code, key)
            if key and dedup in self._seen:
                return
            self._seen.add(dedup)
            self._findings.append(finding)
        if self.strict and finding.severity.value == "error":
            raise _strict_error(finding)

    def report(self) -> AnalysisReport:
        with self._mu:
            return AnalysisReport(diagnostics=tuple(self._findings))

    # ------------------------------------------------------------------
    # Race detector
    # ------------------------------------------------------------------
    def _open(
        self, resource: tuple[Any, ...], locks: frozenset[int], code: str, what: str
    ) -> _OpenAccess:
        access = _OpenAccess(resource, locks)
        conflict: _OpenAccess | None = None
        with self._mu:
            peers = self._inflight.setdefault(resource, [])
            for peer in peers:
                if peer.thread_id != access.thread_id and not (peer.locks & access.locks):
                    conflict = peer
                    break
            peers.append(access)
            if code == "RC002":
                self._windows.append(access)
        if conflict is not None:
            self.record(
                diag(
                    code,
                    f"{what} accessed concurrently by {access.thread_name} "
                    f"[{access.stack}] and {conflict.thread_name} "
                    f"[{conflict.stack}] with no common lock held",
                ),
                key=resource,
            )
        return access

    def _close(self, access: _OpenAccess) -> None:
        with self._mu:
            peers = self._inflight.get(access.resource, [])
            if access in peers:
                peers.remove(access)
            if not peers:
                self._inflight.pop(access.resource, None)
            if access in self._windows:
                self._windows.remove(access)

    @contextmanager
    def cache_access(
        self, owner: object, guarded_by: frozenset[int], what: str = "frame LRU cache"
    ) -> Iterator[None]:
        """A critical section over shared state, declaring the locks it holds (RC001)."""
        if not self.race:
            yield
            return
        resource = ("shared", id(owner))
        access = self._open(resource, guarded_by, "RC001", f"{what} of {type(owner).__name__}")
        try:
            yield
        finally:
            self._close(access)

    @contextmanager
    def worker_window(self, chunk_id: int, resource_key: Any) -> Iterator[None]:
        """The ownership window of one worker task over its private clones (RC002).

        Also publishes ``chunk_id`` thread-locally so numeric findings can
        name the chunk being processed, and collects the clocks charged
        within the window for cross-window race detection (RC003).
        """
        previous = getattr(self._local, "chunk_id", None)
        self._local.chunk_id = chunk_id
        access: _OpenAccess | None = None
        if self.race:
            access = self._open(
                ("worker", resource_key),
                frozenset(),
                "RC002",
                f"worker-private cascade clones (chunk {chunk_id})",
            )
        try:
            yield
        finally:
            self._local.chunk_id = previous
            if access is not None:
                self._close(access)

    @contextmanager
    def clock_access(
        self, clock: object, op: str, component: str, milliseconds: float
    ) -> Iterator[None]:
        """One clock mutation: overlap/window race check (RC003) + NU003 check."""
        resource = ("clock", id(clock))
        access: _OpenAccess | None = None
        if self.race:
            access = self._open(
                resource, frozenset(), "RC003", f"SimulatedClock.{op} on clock"
            )
            window = self._window_of_current_thread()
            conflict_stack: str | None = None
            conflict_name: str | None = None
            with self._mu:
                for other in self._windows:
                    if other.thread_id != access.thread_id and resource in other.touched:
                        conflict_stack = other.touched[resource]
                        conflict_name = other.thread_name
                        break
                if window is not None and resource not in window.touched:
                    window.touched[resource] = access.stack
            if conflict_stack is not None:
                self.record(
                    diag(
                        "RC003",
                        f"one SimulatedClock charged from two concurrent worker "
                        f"tasks: {access.thread_name} [{access.stack}] and "
                        f"{conflict_name} [{conflict_stack}] — per-worker clocks "
                        f"must be private (is a filter shared across clones?)",
                    ),
                    key=resource,
                )
        try:
            yield
        finally:
            if access is not None:
                self._close(access)
            if self.numeric:
                total = getattr(clock, "elapsed_ms", 0.0)
                if not math.isfinite(milliseconds) or not math.isfinite(total):
                    self.record(
                        diag(
                            "NU003",
                            f"non-finite cost accumulation: {op}({component!r}, "
                            f"{milliseconds}) leaves the clock total at {total}"
                            f"{self._chunk_suffix()}",
                        ),
                        key=("nu3", id(clock), component),
                    )

    def _window_of_current_thread(self) -> _OpenAccess | None:
        me = threading.current_thread().ident
        with self._mu:
            for window in self._windows:
                if window.thread_id == me:
                    return window
        return None

    # ------------------------------------------------------------------
    # Numeric sanitizer
    # ------------------------------------------------------------------
    def _chunk_suffix(self) -> str:
        chunk_id = getattr(self._local, "chunk_id", None)
        return f" (chunk {chunk_id})" if chunk_id is not None else ""

    def check_layer_output(
        self, network: object, position: int, layer: object, output: Any
    ) -> None:
        """NaN/Inf check on one layer's output (NU001 / NU002)."""
        if not self.numeric or not isinstance(output, np.ndarray):
            return
        if not np.issubdtype(output.dtype, np.floating):
            return
        finite = np.isfinite(output)
        if finite.all():
            return
        from repro.analysis.shapes import describe_layer

        label = f"layer {position} {describe_layer(layer)}"
        if np.isnan(output).any():
            self.record(
                diag(
                    "NU001",
                    f"NaN in the output of {label}{self._chunk_suffix()}",
                ),
                key=("nu1", id(network), position),
            )
        if np.isinf(output).any():
            self.record(
                diag(
                    "NU002",
                    f"non-finite (overflowed) values in the output of {label}"
                    f"{self._chunk_suffix()}",
                ),
                key=("nu2", id(network), position),
            )

    # ------------------------------------------------------------------
    # Determinism checker
    # ------------------------------------------------------------------
    def observe_chunk(self, chunk_id: int, outcome: Any) -> None:
        """Digest one merged chunk's alive sets during the parallel scan."""
        if not self.determinism:
            return
        with self._mu:
            self._chunk_digests[chunk_id] = chunk_digest(outcome.alive)

    def verify_determinism(
        self,
        stream: Any,
        chunks: Sequence[Sequence[int]],
        query_cascades: Sequence[Any],
        assignments: Sequence[Sequence[int]],
        member_sets: Sequence[set[int]] | None,
    ) -> None:
        """Re-run the scan's chunks sequentially and diff the digests (RC004).

        The reference run uses a clock-detached deep copy of the cascades and
        identity step orders; cascade steps are conjunctive, so a digest
        mismatch means the parallel run's survivors genuinely diverged.
        """
        if not self.determinism:
            return
        from repro.query.parallel import run_filter_chunk

        reference = copy.deepcopy(list(query_cascades))
        for cascade in reference:
            for frame_filter in cascade.filters:
                frame_filter.clock = None
        identity_orders = [
            tuple(range(len(cascade.steps))) for cascade in reference
        ]
        for chunk_id, chunk in enumerate(chunks):
            frames = [stream.frame(index) for index in chunk]
            if member_sets is not None:
                covered: Sequence[Sequence[bool]] | None = [
                    [index in members for index in chunk] for members in member_sets
                ]
            else:
                covered = None
            alive, _, _, _, _ = run_filter_chunk(
                reference, assignments, covered, identity_orders, frames
            )
            expected = chunk_digest(alive)
            with self._mu:
                observed = self._chunk_digests.get(chunk_id)
            if observed != expected:
                self.record(
                    diag(
                        "RC004",
                        f"parallel and sequential results diverged at chunk "
                        f"{chunk_id} (frames {chunk[0]}..{chunk[-1]}): parallel "
                        f"digest {observed} vs sequential {expected} — the first "
                        f"divergent chunk of the scan",
                    ),
                    key=("rc4", chunk_id),
                )
                return

    # ------------------------------------------------------------------
    # Hook installation
    # ------------------------------------------------------------------
    def activate(self) -> "SanitizerSession":
        """Install this session into every hook site (one active session at a time)."""
        global _ACTIVE_SESSION
        with _ACTIVATION_LOCK:
            if _ACTIVE_SESSION is not None:
                raise RuntimeError(
                    "a sanitizer session is already active; sanitized scans "
                    "cannot nest or run concurrently in one process"
                )
            for module_name, attribute in HOOK_SITES:
                module = importlib.import_module(module_name)
                setattr(module, attribute, self)
            self._installed = True
            _ACTIVE_SESSION = self
        return self

    def deactivate(self) -> None:
        """Remove the hooks (idempotent)."""
        global _ACTIVE_SESSION
        with _ACTIVATION_LOCK:
            if not self._installed:
                return
            for module_name, attribute in HOOK_SITES:
                module = importlib.import_module(module_name)
                setattr(module, attribute, None)
            self._installed = False
            if _ACTIVE_SESSION is self:
                _ACTIVE_SESSION = None


_ACTIVATION_LOCK = threading.Lock()
_ACTIVE_SESSION: SanitizerSession | None = None


def active_session() -> SanitizerSession | None:
    """The currently installed session, if any (used by the executor)."""
    return _ACTIVE_SESSION


def _strict_error(finding: Diagnostic) -> Exception:
    """An :class:`AnalysisError` carrying one sanitizer finding."""
    from repro.analysis.diagnostics import AnalysisError

    return AnalysisError(
        f"sanitizer found 1 error(s): {finding.code}: {finding.message}",
        diagnostics=(finding,),
    )


@contextmanager
def sanitized_scan(
    sanitize: str | Iterable[str] | None, strict: bool = True
) -> Iterator[SanitizerSession | None]:
    """Activate a session for one scan (``None`` spec = no instrumentation)."""
    modes = parse_sanitize_spec(sanitize)
    if not modes:
        yield None
        return
    session = SanitizerSession(modes, strict=strict).activate()
    try:
        yield session
    finally:
        session.deactivate()


__all__ = [
    "HOOK_SITES",
    "SANITIZE_MODES",
    "SanitizerSession",
    "active_session",
    "chunk_digest",
    "parse_sanitize_spec",
    "sanitized_scan",
]
