"""Figures 8–11 — per-class count (CCF) accuracy across datasets.

For every dataset and every object class, reports the exact / ±1 / ±2
accuracy of the IC-CCF and OD-CCF per-class count estimates.  The paper's
observations: the two families are comparable, IC has a slight edge on exact
counts, and the less popular classes (fewer objects per frame) are *easier*
to count even though they have fewer training examples.
"""

from __future__ import annotations

from repro.experiments.context import DATASET_NAMES, ExperimentConfig, get_context
from repro.filters import evaluate_count_filter


def run(
    config: ExperimentConfig | None = None,
    dataset_names: tuple[str, ...] = DATASET_NAMES,
) -> list[dict[str, object]]:
    """One row per (dataset, filter, class) with per-class count accuracy."""
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        context = get_context(name, config)
        annotations = context.test_annotations
        stream = context.dataset.test
        for label, frame_filter in (("IC-CCF", context.ic_filter), ("OD-CCF", context.od_filter)):
            report = evaluate_count_filter(
                frame_filter, stream, annotations, dataset_name=name
            )
            for class_name in context.class_names:
                rows.append(
                    {
                        "dataset": name,
                        "filter": label,
                        "class": class_name,
                        "exact": round(report.per_class_exact.get(class_name, 0.0), 3),
                        "within_1": round(report.per_class_within_1.get(class_name, 0.0), 3),
                        "within_2": round(report.per_class_within_2.get(class_name, 0.0), 3),
                    }
                )
    return rows


def format_rows(rows: list[dict[str, object]]) -> str:
    lines = [f"{'dataset':<10}{'filter':<10}{'class':<10}{'exact':>8}{'±1':>8}{'±2':>8}"]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10}{row['filter']:<10}{row['class']:<10}"
            f"{row['exact']:>8}{row['within_1']:>8}{row['within_2']:>8}"
        )
    return "\n".join(lines)
