"""Section IV-A constraint-accuracy check: "car left of a bus" without training for it.

The paper reports that evaluating a spatial constraint between two object
classes directly from the OD filter's location grids reaches 99 % accuracy
against a manually annotated data set, without training a dedicated
classifier for that constraint.  Here the "manual annotation" is the
reference detector's exact evaluation of the constraint; the experiment
measures how often the filter-based check agrees with it on the Detrac test
split.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentConfig, get_context
from repro.query.ast import SpatialPredicate
from repro.query.evaluation import predicate_holds
from repro.query.planner import _spatial_possible
from repro.spatial.relations import Direction


def run(
    config: ExperimentConfig | None = None,
    dataset_name: str = "detrac",
    subject_class: str = "car",
    reference_class: str = "bus",
    dilation: int = 1,
) -> dict[str, object]:
    """Agreement between the OD-CLF constraint check and the exact evaluation."""
    context = get_context(dataset_name, config)
    predicate = SpatialPredicate(subject_class, reference_class, Direction.LEFT_OF)
    detector = context.reference_detector(seed_offset=700)
    stream = context.dataset.test

    agreements = 0
    positives_truth = 0
    positives_filter = 0
    total = 0
    for frame_index in context.config.test_indices:
        frame = stream.frame(frame_index)
        detections = detector.detect(frame)
        truth = predicate_holds(predicate, detections)
        prediction = context.od_filter.predict(frame)
        estimate = _spatial_possible(predicate, prediction, dilation)
        total += 1
        agreements += int(truth == estimate)
        positives_truth += int(truth)
        positives_filter += int(estimate)

    accuracy = agreements / total if total else 0.0
    return {
        "dataset": dataset_name,
        "constraint": f"{subject_class} left_of {reference_class}",
        "frames": total,
        "accuracy": round(accuracy, 3),
        "paper_accuracy": 0.99,
        "true_positive_rate_truth": round(positives_truth / total, 3) if total else 0.0,
        "true_positive_rate_filter": round(positives_filter / total, 3) if total else 0.0,
    }
