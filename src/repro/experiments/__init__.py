"""Experiment harness: one runner per table / figure of the paper.

Each module exposes a ``run(...)`` function that returns plain dictionaries /
rows in the shape the paper reports, so benchmarks and scripts can print them
directly.  The shared :class:`ExperimentContext` builds datasets and trains
filters once per (dataset, size) combination and caches them for the process
lifetime, which keeps the full experiment sweep tractable on a laptop CPU.
"""

from repro.experiments.context import ExperimentConfig, ExperimentContext, get_context
from repro.experiments import (
    ablation,
    constraint_check,
    fig7,
    fig11,
    fig15,
    table2,
    table3,
    table4,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "get_context",
    "table2",
    "fig7",
    "fig11",
    "fig15",
    "table3",
    "table4",
    "ablation",
    "constraint_check",
]
