"""Figures 12–15 — per-class localisation (CLF) F1 across datasets.

For every dataset and object class, reports the localisation F1 of the
IC-CLF and OD-CLF grid predictions at Manhattan-distance tolerance 0, 1 and
2.  The paper's observations, which this reproduction preserves:

* OD filters localise markedly better than IC filters (their backbone keeps
  full spatial resolution);
* tolerance 1 / 2 recovers most of the residual error (spatial constraints
  survive slight mis-localisation);
* rare classes have lower localisation F1 (fewer training examples).
"""

from __future__ import annotations

from repro.experiments.context import DATASET_NAMES, ExperimentConfig, get_context
from repro.filters import evaluate_localization


def run(
    config: ExperimentConfig | None = None,
    dataset_names: tuple[str, ...] = DATASET_NAMES,
) -> list[dict[str, object]]:
    """One row per (dataset, filter, class) with F1 at the three tolerances."""
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        context = get_context(name, config)
        annotations = context.test_annotations
        stream = context.dataset.test
        for label, frame_filter in (("IC-CLF", context.ic_filter), ("OD-CLF", context.od_filter)):
            report = evaluate_localization(
                frame_filter, stream, annotations, dataset_name=name
            )
            for class_name in context.class_names:
                rows.append(
                    {
                        "dataset": name,
                        "filter": label,
                        "class": class_name,
                        "f1": round(report.per_class_f1.get(class_name, 0.0), 3),
                        "f1_manhattan_1": round(
                            report.per_class_f1_manhattan_1.get(class_name, 0.0), 3
                        ),
                        "f1_manhattan_2": round(
                            report.per_class_f1_manhattan_2.get(class_name, 0.0), 3
                        ),
                        "micro_f1": round(report.micro_f1, 3),
                    }
                )
    return rows


def format_rows(rows: list[dict[str, object]]) -> str:
    lines = [f"{'dataset':<10}{'filter':<10}{'class':<10}{'f1':>8}{'f1@1':>8}{'f1@2':>8}"]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10}{row['filter']:<10}{row['class']:<10}"
            f"{row['f1']:>8}{row['f1_manhattan_1']:>8}{row['f1_manhattan_2']:>8}"
        )
    return "\n".join(lines)
