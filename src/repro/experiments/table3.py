"""Table III — query execution times and filter combinations for q1–q7.

The paper evaluates seven queries (two on Coral, three on Jackson, two on
Detrac), reporting for each the most selective filter combination that keeps
accuracy at 100 % (93 % for q7) and the resulting execution time, against a
brute-force run that annotates every frame with Mask R-CNN.

This runner builds the same queries, plans the same filter combinations
(count tolerance / grid dilation per the paper's table), executes both the
filtered and the brute-force variant on the test split, and reports simulated
execution times (paper latency model), accuracy, and speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import ExperimentConfig, get_context
from repro.query import (
    ParallelConfig,
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    TemporalConfig,
    brute_force_execute,
)
from repro.query.ast import Query
from repro.spatial.regions import Quadrant, quadrant_region


@dataclass(frozen=True)
class QuerySpec:
    """One evaluation query: its definition plus the paper's filter combination."""

    name: str
    dataset: str
    build: "object"
    count_tolerance: int
    location_dilation: int
    paper_filter_combo: str
    paper_time_seconds: float | None
    paper_accuracy: float


def _quadrant(dataset_context, quadrant: Quadrant):
    profile = dataset_context.dataset.profile
    return quadrant_region(quadrant, profile.frame_width, profile.frame_height)


def build_query_specs() -> list[QuerySpec]:
    """The seven evaluation queries of Section IV-B."""

    def q1(context) -> Query:
        return QueryBuilder("q1").count("person").equals(2).build()

    def q2(context) -> Query:
        region = _quadrant(context, Quadrant.LOWER_LEFT)
        return (
            QueryBuilder("q2").in_region("person", region).exactly(2).build()
        )

    def q3(context) -> Query:
        return (
            QueryBuilder("q3").count("car").equals(1).count("person").equals(1).build()
        )

    def q4(context) -> Query:
        return (
            QueryBuilder("q4").count("car").at_least(1).count("person").at_least(1).build()
        )

    def q5(context) -> Query:
        return (
            QueryBuilder("q5")
            .count("car").equals(1)
            .count("person").equals(1)
            .spatial("car").left_of("person")
            .build()
        )

    def q6(context) -> Query:
        return (
            QueryBuilder("q6").count("car").equals(1).count("bus").equals(1).build()
        )

    def q7(context) -> Query:
        return (
            QueryBuilder("q7")
            .count("car").equals(1)
            .count("bus").equals(1)
            .spatial("car").left_of("bus")
            .build()
        )

    return [
        QuerySpec("q1", "coral", q1, 1, 0, "OD-CCF-1", 909.4, 1.0),
        QuerySpec("q2", "coral", q2, 1, 1, "OD-CCF-1/OD-CLF", 427.0, 1.0),
        QuerySpec("q3", "jackson", q3, 0, 0, "OD-CCF", 87.4, 1.0),
        QuerySpec("q4", "jackson", q4, 0, 0, "OD-CCF", 122.6, 1.0),
        QuerySpec("q5", "jackson", q5, 0, 1, "OD-CCF/OD-CLF-1", 67.6, 1.0),
        QuerySpec("q6", "detrac", q6, 1, 0, "OD-CCF-1", 367.6, 1.0),
        QuerySpec("q7", "detrac", q7, 1, 2, "OD-CCF-1/OD-CLF-2", 293.4, 0.93),
    ]


def _plan(context, spec: QuerySpec, query: Query):
    # The evaluation queries are fixed and hand-checked, so plan them
    # strictly: a typo'd class name or contradictory constraint in a spec is
    # a bug in this file, and should fail the run up front with a QA0xx
    # diagnostic rather than silently score an empty match set.
    from repro.analysis import AnalysisContext

    planner = QueryPlanner(
        context.filters,
        PlannerConfig(
            count_tolerance=spec.count_tolerance,
            location_dilation=spec.location_dilation,
        ),
    )
    return planner.plan(
        query,
        strict=True,
        context=AnalysisContext.for_stream(context.dataset.test),
    )


def _make_row(spec: QuerySpec, filtered, brute) -> dict[str, object]:
    accuracy = filtered.accuracy_against(brute.matched_frames)
    row = {
        "query": spec.name,
        "dataset": spec.dataset,
        "cascade": filtered.cascade_description,
        "paper_filter_combo": spec.paper_filter_combo,
        "matches": filtered.num_matches,
        "true_matches": brute.num_matches,
        "accuracy": round(accuracy["accuracy"], 3),
        "f1": round(accuracy["f1"], 3),
        "paper_accuracy": spec.paper_accuracy,
        "filtered_time_s": round(filtered.stats.simulated_seconds, 2),
        "brute_force_time_s": round(brute.stats.simulated_seconds, 2),
        "speedup": round(filtered.speedup_against(brute), 1),
        "filter_selectivity": round(filtered.stats.filter_selectivity, 4),
        "frames": filtered.stats.frames_scanned,
        "paper_time_s": spec.paper_time_seconds,
    }
    if filtered.temporal is not None:
        breakdown = filtered.stats.simulated_cost
        row["reuse_rate"] = round(filtered.temporal.reuse_rate, 3)
        row["reused_calls"] = breakdown.total_reused
        row["computed_calls"] = breakdown.total_calls
        row["reuse_mismatches"] = filtered.temporal.reuse_mismatches
    return row


def run(
    config: ExperimentConfig | None = None,
    query_names: tuple[str, ...] | None = None,
    shared: bool = False,
    temporal: TemporalConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> list[dict[str, object]]:
    """Execute q1–q7 (or a subset) and report one Table III row per query.

    With ``shared=True`` the queries of each dataset run through
    :meth:`~repro.query.executor.StreamingQueryExecutor.execute_many` — one
    scan per dataset serving all of its queries, with per-query stats
    attributed from the shared run (so the per-row numbers are the same as an
    independent run) plus ``shared_group_time_s`` / ``shared_savings``
    columns reporting what the concurrent workload actually cost.

    With a ``temporal`` config the filtered executions run through the
    temporal-coherence layer, and each row additionally reports the reuse
    rate, reused-vs-computed call counts and (in exact mode) how many reuses
    the verification caught drifting.  The brute-force baseline always runs
    non-temporal, so speedups fold the temporal savings in.

    A ``parallel`` config runs each filtered execution through the parallel
    pipelined engine (simulated costs and every row are unchanged — the
    engine is bit-identical to the sequential path — but wall clock drops on
    multi-core machines).  The brute-force baselines stay sequential.
    """
    specs = [
        spec
        for spec in build_query_specs()
        if query_names is None or spec.name in query_names
    ]
    rows: list[dict[str, object]] = []
    if shared:
        by_dataset: dict[str, list[QuerySpec]] = {}
        for spec in specs:
            by_dataset.setdefault(spec.dataset, []).append(spec)
        for dataset, group in by_dataset.items():
            context = get_context(dataset, config)
            queries = [spec.build(context) for spec in group]
            cascades = [
                _plan(context, spec, query) for spec, query in zip(group, queries)
            ]
            executor = StreamingQueryExecutor(context.reference_detector(seed_offset=300))
            multi = executor.execute_many(
                queries, context.dataset.test, cascades,
                temporal=temporal, parallel=parallel,
            )
            # The brute-force baseline shares its single full-detection pass
            # across the group as well (empty cascades = annotate every frame).
            brute_multi = StreamingQueryExecutor(
                context.reference_detector(seed_offset=300)
            ).execute_many(queries, context.dataset.test)
            group_time = round(multi.shared.cost.shared_ms / 1000.0, 2)
            group_savings = round(multi.shared.savings_ratio, 2)
            for spec, filtered, brute in zip(group, multi, brute_multi):
                row = _make_row(spec, filtered, brute)
                row["shared_group_time_s"] = group_time
                row["shared_savings"] = group_savings
                if multi.shared.temporal is not None:
                    row["shared_reuse_rate"] = round(multi.shared.temporal.reuse_rate, 3)
                    row["shared_reused_calls"] = multi.shared.cost.reused_calls
                rows.append(row)
        return rows
    for spec in specs:
        context = get_context(spec.dataset, config)
        query = spec.build(context)
        cascade = _plan(context, spec, query)
        executor = StreamingQueryExecutor(context.reference_detector(seed_offset=300))
        filtered = executor.execute(
            query, context.dataset.test, cascade, temporal=temporal, parallel=parallel
        )
        brute = brute_force_execute(
            query, context.dataset.test, context.reference_detector(seed_offset=300)
        )
        rows.append(_make_row(spec, filtered, brute))
    return rows


def format_rows(rows: list[dict[str, object]]) -> str:
    lines = [
        f"{'query':<6}{'dataset':<9}{'cascade':<22}{'acc':>6}{'time(s)':>9}"
        f"{'brute(s)':>10}{'speedup':>9}{'selectivity':>12}"
    ]
    for row in rows:
        lines.append(
            f"{row['query']:<6}{row['dataset']:<9}{row['cascade']:<22}{row['accuracy']:>6}"
            f"{row['filtered_time_s']:>9}{row['brute_force_time_s']:>10}"
            f"{row['speedup']:>9}{row['filter_selectivity']:>12}"
        )
    return "\n".join(lines)
