"""Table IV — aggregate monitoring queries and control-variate variance reduction.

Five aggregate queries (a1–a5) over the three datasets.  Each estimates the
fraction of frames satisfying a count / spatial predicate combination by
sampling frames; the approximate filters provide the control variates.  The
row reports the per-sample cost (filter + reference detector, using the
paper's latency model) and the variance-reduction factor of the (multiple)
control-variate estimator over plain sampling.

Estimation goes through the unified planner/executor path: each query is
planned into a filter cascade and handed to
:meth:`~repro.query.executor.StreamingQueryExecutor.execute_aggregate`, which
uses the cascade's primary filter as the control-variate source and batches
the filter side of every sample draw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aggregates import (
    AggregateQuerySpec,
    per_predicate_controls,
    query_indicator_control,
)
from repro.experiments.context import ExperimentConfig, get_context
from repro.query import QueryBuilder, QueryPlanner, StreamingQueryExecutor
from repro.query.ast import Query
from repro.spatial.regions import Quadrant, quadrant_region


@dataclass(frozen=True)
class AggregateSpec:
    """One Table IV query with the paper's reported variance reduction."""

    name: str
    dataset: str
    build: "object"
    multiple_controls: bool
    paper_variance_reduction: float
    paper_time_ms: float


def _quadrant(context, quadrant: Quadrant):
    profile = context.dataset.profile
    return quadrant_region(quadrant, profile.frame_width, profile.frame_height)


def build_aggregate_specs() -> list[AggregateSpec]:
    """The five aggregate queries of Section IV-C."""

    def a1(context) -> Query:
        region = _quadrant(context, Quadrant.LOWER_RIGHT)
        return QueryBuilder("a1").in_region("car", region).at_least(1).build()

    def a2(context) -> Query:
        return QueryBuilder("a2").spatial("car").left_of("person").build()

    def a3(context) -> Query:
        # The paper's a3 asks for frames with three objects, a car in the
        # lower-left and a bus in the upper-left quadrant.  On the synthetic
        # Detrac stream an exact total of three is almost never true, which
        # would make the estimate degenerate, so the count is relaxed to
        # "at least three objects" (the spatial structure is unchanged).
        lower_left = _quadrant(context, Quadrant.LOWER_LEFT)
        upper_left = _quadrant(context, Quadrant.UPPER_LEFT)
        return (
            QueryBuilder("a3")
            .total_count().at_least(3)
            .in_region("car", lower_left).at_least(1)
            .in_region("bus", upper_left).at_least(1)
            .build()
        )

    def a4(context) -> Query:
        return QueryBuilder("a4").spatial("car").left_of("bus").build()

    def a5(context) -> Query:
        # As with a3, the exact "three people" is relaxed to "at least three"
        # so the aggregate is non-degenerate on the synthetic Coral stream.
        lower_left = _quadrant(context, Quadrant.LOWER_LEFT)
        return (
            QueryBuilder("a5")
            .count("person").at_least(3)
            .in_region("person", lower_left).at_least(2)
            .build()
        )

    return [
        AggregateSpec("a1", "jackson", a1, False, 48.0, 201.6),
        AggregateSpec("a2", "jackson", a2, False, 12.0, 201.6),
        AggregateSpec("a3", "detrac", a3, True, 38.0, 202.2),
        AggregateSpec("a4", "detrac", a4, False, 230.0, 201.6),
        AggregateSpec("a5", "coral", a5, True, 89.0, 202.2),
    ]


def run(
    config: ExperimentConfig | None = None,
    sample_size: int = 60,
    repetitions: int = 20,
    query_names: tuple[str, ...] | None = None,
    seed: int = 11,
) -> list[dict[str, object]]:
    """Run a1–a5 (or a subset); one Table IV row per query.

    ``repetitions`` controls how many independent sampled estimations are
    averaged (the paper uses 100; the default here is smaller to keep the
    sweep fast — increase it for tighter numbers).
    """
    rows: list[dict[str, object]] = []
    for spec in build_aggregate_specs():
        if query_names is not None and spec.name not in query_names:
            continue
        context = get_context(spec.dataset, config)
        query = spec.build(context)
        if spec.multiple_controls:
            controls = per_predicate_controls(query, tolerance=0)
        else:
            controls = [query_indicator_control(query, tolerance=0)]
        aggregate = AggregateQuerySpec.from_query(query, controls)
        cascade = QueryPlanner({"od": context.od_filter}).plan(query)
        executor = StreamingQueryExecutor(context.reference_detector(seed_offset=500))
        result = executor.execute_aggregate(
            aggregate,
            context.dataset.test,
            cascade,
            sample_size=sample_size,
            repetitions=repetitions,
            seed=seed,
        )
        reports = result.reports
        plain_var = float(np.mean([r.plain.variance / r.num_samples for r in reports if r.num_samples]))
        cv_var = float(np.mean([r.control_variate.variance for r in reports]))
        if cv_var > 0:
            reduction = plain_var / cv_var
        else:
            # A zero CV variance with non-zero plain variance means the control
            # explained everything in every repetition; report a large finite
            # factor rather than infinity so downstream tables stay printable.
            reduction = 1.0 if plain_var <= 0 else 1000.0
        per_frame_ms = float(np.mean([r.per_frame_cost_ms for r in reports]))
        rows.append(
            {
                "query": spec.name,
                "dataset": spec.dataset,
                "cascade": result.cascade_description,
                "controls": "multiple" if spec.multiple_controls else "single",
                "plain_mean": round(float(np.mean([r.plain.mean for r in reports])), 4),
                "cv_mean": round(float(np.mean([r.control_variate.mean for r in reports])), 4),
                "per_frame_ms": round(per_frame_ms, 2),
                "paper_per_frame_ms": spec.paper_time_ms,
                "variance_reduction": round(reduction, 1),
                "paper_variance_reduction": spec.paper_variance_reduction,
                "correlation": round(
                    float(np.mean([r.control_variate.correlation for r in reports])), 3
                ),
                "samples": sample_size,
                "repetitions": repetitions,
            }
        )
    return rows


def format_rows(rows: list[dict[str, object]]) -> str:
    lines = [
        f"{'query':<6}{'dataset':<9}{'controls':<10}{'ms/frame':>10}{'var.red.':>10}"
        f"{'paper var.red.':>16}{'corr':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row['query']:<6}{row['dataset']:<9}{row['controls']:<10}{row['per_frame_ms']:>10}"
            f"{row['variance_reduction']:>10}{row['paper_variance_reduction']:>16}{row['correlation']:>8}"
        )
    return "\n".join(lines)
