"""Ablation studies for the design choices the paper discusses in the text.

1. **Branch depth / grid resolution trade-off** (Section IV-A): branching at
   a deeper layer improves counts slightly but shrinks the grid and hurts
   localisation.  Here the analogue is the backbone's spatial pooling factor:
   a coarser feature grid is cheaper and counts almost as well, but
   localisation F1 drops.

2. **Grid occupancy threshold** (the paper fixes 0.2): a validation sweep of
   thresholds versus localisation F1.

3. **Cascade tolerance** (the paper picks, per query, the most selective
   filter combination that preserves accuracy): accuracy versus speedup for
   one spatial query under increasingly permissive tolerances.
"""

from __future__ import annotations


from repro.detection.backbone import classification_backbone
from repro.experiments.context import ExperimentConfig, get_context
from repro.filters import calibrate_threshold, evaluate_count_filter, evaluate_localization
from repro.filters.ic import ICFilter
from repro.query import PlannerConfig, QueryBuilder, QueryPlanner, StreamingQueryExecutor, brute_force_execute


def run_branch_depth(
    config: ExperimentConfig | None = None,
    dataset_name: str = "jackson",
    pool_factors: tuple[int, ...] = (1, 2, 4),
) -> list[dict[str, object]]:
    """Count accuracy and localisation F1 as the feature grid gets coarser."""
    context = get_context(dataset_name, config)
    annotations = context.test_annotations
    rows: list[dict[str, object]] = []
    for pool_factor in pool_factors:
        trainer = context.trainer()
        backbone = classification_backbone(trainer.grid_size, pool_factor=pool_factor)
        grid_head, calibration = trainer._train_linear_branch(backbone)
        candidate = ICFilter(
            grid_head=grid_head,
            count_calibration=calibration,
            grid=trainer.grid,
            backbone=backbone,
            threshold=trainer.threshold,
        )
        counts = evaluate_count_filter(candidate, context.dataset.test, annotations)
        localization = evaluate_localization(candidate, context.dataset.test, annotations)
        rows.append(
            {
                "dataset": dataset_name,
                "pool_factor": pool_factor,
                "effective_grid": trainer.grid_size // pool_factor,
                "count_exact": round(counts.exact, 3),
                "count_within_1": round(counts.within_1, 3),
                "micro_f1": round(localization.micro_f1, 3),
                "micro_f1_manhattan_1": round(localization.micro_f1_manhattan_1, 3),
            }
        )
    return rows


def run_threshold_sweep(
    config: ExperimentConfig | None = None,
    dataset_name: str = "jackson",
    thresholds: tuple[float, ...] = (0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5),
) -> list[dict[str, object]]:
    """Localisation F1 as a function of the grid occupancy threshold."""
    context = get_context(dataset_name, config)
    calibration = calibrate_threshold(
        context.od_filter,
        context.dataset.test,
        context.test_annotations,
        thresholds=thresholds,
    )
    rows = [
        {
            "dataset": dataset_name,
            "threshold": row["threshold"],
            "micro_f1": round(row["micro_f1"], 3),
            "is_paper_default": abs(row["threshold"] - 0.2) < 1e-9,
        }
        for row in calibration.as_rows()
    ]
    rows.append(
        {
            "dataset": dataset_name,
            "threshold": calibration.best_threshold,
            "micro_f1": round(calibration.best_f1, 3),
            "is_paper_default": abs(calibration.best_threshold - 0.2) < 1e-9,
            "best": True,
        }
    )
    return rows


def run_cascade_tolerance(
    config: ExperimentConfig | None = None,
    dataset_name: str = "jackson",
) -> list[dict[str, object]]:
    """Accuracy vs speedup for a spatial query under different cascade tolerances."""
    context = get_context(dataset_name, config)
    query = (
        QueryBuilder("q5")
        .count("car").equals(1)
        .count("person").equals(1)
        .spatial("car").left_of("person")
        .build()
    )
    brute = brute_force_execute(
        query, context.dataset.test, context.reference_detector(seed_offset=300)
    )
    rows: list[dict[str, object]] = []
    for count_tolerance, location_dilation in ((0, 0), (0, 1), (1, 1), (1, 2), (2, 2)):
        planner = QueryPlanner(
            context.filters,
            PlannerConfig(count_tolerance=count_tolerance, location_dilation=location_dilation),
        )
        cascade = planner.plan(query)
        executor = StreamingQueryExecutor(context.reference_detector(seed_offset=300))
        result = executor.execute(query, context.dataset.test, cascade)
        accuracy = result.accuracy_against(brute.matched_frames)
        rows.append(
            {
                "dataset": dataset_name,
                "count_tolerance": count_tolerance,
                "location_dilation": location_dilation,
                "cascade": cascade.describe(),
                "accuracy": round(accuracy["accuracy"], 3),
                "speedup": round(result.speedup_against(brute), 1),
                "selectivity": round(result.stats.filter_selectivity, 4),
            }
        )
    return rows


def run(config: ExperimentConfig | None = None) -> dict[str, list[dict[str, object]]]:
    """All ablations, keyed by study name."""
    return {
        "branch_depth": run_branch_depth(config),
        "threshold_sweep": run_threshold_sweep(config),
        "cascade_tolerance": run_cascade_tolerance(config),
    }
