"""Table II — dataset characteristics.

Reproduces the dataset summary table: split sizes, objects per frame (mean
and standard deviation) and the class mix, side by side with the values the
paper reports for the real datasets.
"""

from __future__ import annotations

from repro.experiments.context import DATASET_NAMES, ExperimentConfig, get_context

# Values reported in the paper's Table II.
PAPER_TABLE2 = {
    "coral": {
        "train_size": 52_000,
        "test_size": 7_215,
        "objects_per_frame_mean": 8.7,
        "objects_per_frame_std": 5.1,
        "classes": {"person": 1.0},
    },
    "jackson": {
        "train_size": 14_094,
        "test_size": 3_000,
        "objects_per_frame_mean": 1.2,
        "objects_per_frame_std": 0.5,
        "classes": {"car": 0.8, "person": 0.2},
    },
    "detrac": {
        "train_size": 55_020,
        "test_size": 9_971,
        "objects_per_frame_mean": 15.8,
        "objects_per_frame_std": 9.8,
        "classes": {"car": 0.92, "bus": 0.06, "truck": 0.02},
    },
}


def run(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """One row per dataset: measured statistics next to the paper's values."""
    rows: list[dict[str, object]] = []
    for name in DATASET_NAMES:
        context = get_context(name, config)
        summary = context.dataset.summary()
        paper = PAPER_TABLE2[name]
        rows.append(
            {
                "dataset": name,
                "train_size": summary["train_size"],
                "test_size": summary["test_size"],
                "obj_per_frame_mean": round(float(summary["objects_per_frame_mean"]), 2),
                "obj_per_frame_std": round(float(summary["objects_per_frame_std"]), 2),
                "classes": summary["classes"],
                "paper_obj_per_frame_mean": paper["objects_per_frame_mean"],
                "paper_obj_per_frame_std": paper["objects_per_frame_std"],
                "paper_train_size": paper["train_size"],
                "paper_test_size": paper["test_size"],
            }
        )
    return rows


def format_rows(rows: list[dict[str, object]]) -> str:
    """Human-readable rendering of the Table II reproduction."""
    lines = [
        f"{'dataset':<10}{'train':>8}{'test':>8}{'obj/frame':>12}{'std':>8}"
        f"{'paper obj/frame':>18}{'paper std':>12}"
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10}{row['train_size']:>8}{row['test_size']:>8}"
            f"{row['obj_per_frame_mean']:>12}{row['obj_per_frame_std']:>8}"
            f"{row['paper_obj_per_frame_mean']:>18}{row['paper_obj_per_frame_std']:>12}"
        )
    return "\n".join(lines)
