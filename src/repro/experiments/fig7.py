"""Figure 7 — accuracy of object-count filters.

For each dataset, evaluates the three count filters the paper compares
(``OD-COF``, ``IC-CF``, ``OD-CF``) at the three tolerance bands (exact, ±1,
±2) on the annotated test split.

Expected shape (per the paper):

* accuracy rises steeply from exact to ±1 to ±2 for all filters;
* on the easy datasets (Coral, Jackson) the three filters are comparable;
* on Detrac (many objects per frame, high variance) ``OD-COF`` degrades while
  ``IC-CF`` and ``OD-CF`` remain competitive.
"""

from __future__ import annotations

from repro.experiments.context import DATASET_NAMES, ExperimentConfig, get_context
from repro.filters import evaluate_count_filter


def run(
    config: ExperimentConfig | None = None,
    dataset_names: tuple[str, ...] = DATASET_NAMES,
) -> list[dict[str, object]]:
    """One row per (dataset, filter): exact / ±1 / ±2 total-count accuracy."""
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        context = get_context(name, config)
        annotations = context.test_annotations
        stream = context.dataset.test
        candidates = [
            ("OD-COF", context.od_cof, True),
            ("IC-CF", context.ic_filter, False),
            ("OD-CF", context.od_filter, False),
        ]
        for label, frame_filter, total_only in candidates:
            report = evaluate_count_filter(
                frame_filter, stream, annotations, dataset_name=name, total_only=total_only
            )
            rows.append(
                {
                    "dataset": name,
                    "filter": label,
                    "exact": round(report.exact, 3),
                    "within_1": round(report.within_1, 3),
                    "within_2": round(report.within_2, 3),
                    "mae": round(report.mean_absolute_error, 3),
                    "frames": report.num_frames,
                }
            )
    return rows


def format_rows(rows: list[dict[str, object]]) -> str:
    lines = [f"{'dataset':<10}{'filter':<10}{'exact':>8}{'±1':>8}{'±2':>8}{'MAE':>8}"]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10}{row['filter']:<10}{row['exact']:>8}{row['within_1']:>8}"
            f"{row['within_2']:>8}{row['mae']:>8}"
        )
    return "\n".join(lines)
