"""Shared experiment context: datasets, trained filters and test annotations.

Training the three filters for one dataset takes ~10 s at the default
experiment scale; the context caches everything per (dataset, scale, seed) so
that the figure/table runners and the pytest benchmarks can share one set of
trained filters instead of re-training for every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.detection import ReferenceDetector, annotate_stream
from repro.detection.annotation import AnnotationSet
from repro.filters import FilterTrainer, ICFilter, ODCountClassifier, ODFilter
from repro.video import VideoDataset, build_coral, build_detrac, build_jackson

_BUILDERS = {
    "coral": build_coral,
    "jackson": build_jackson,
    "detrac": build_detrac,
}

DATASET_NAMES = tuple(_BUILDERS)


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs for the experiment sweep.

    The defaults are sized so that the entire table/figure sweep completes in
    a few minutes on CPU; increase the sizes (or pass ``paper_scale=True`` to
    the dataset builders directly) for a higher-fidelity run.
    """

    train_size: int = 420
    val_size: int = 80
    test_size: int = 240
    max_train_frames: int = 360
    test_stride: int = 2
    grid_size: int = 56
    seed: int = 7

    @property
    def test_indices(self) -> range:
        return range(0, self.test_size, self.test_stride)


class ExperimentContext:
    """Datasets, trained filters and test annotations for one dataset."""

    def __init__(self, dataset_name: str, config: ExperimentConfig) -> None:
        if dataset_name not in _BUILDERS:
            raise KeyError(
                f"unknown dataset {dataset_name!r}; expected one of {sorted(_BUILDERS)}"
            )
        self.dataset_name = dataset_name
        self.config = config
        self._dataset: VideoDataset | None = None
        self._filters: dict[str, object] | None = None
        self._test_annotations: AnnotationSet | None = None

    # ------------------------------------------------------------------
    # Lazily built pieces
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> VideoDataset:
        if self._dataset is None:
            self._dataset = _BUILDERS[self.dataset_name](
                train_size=self.config.train_size,
                val_size=self.config.val_size,
                test_size=self.config.test_size,
                seed=self.config.seed,
            )
        return self._dataset

    @property
    def class_names(self) -> tuple[str, ...]:
        return self.dataset.class_names

    def trainer(self) -> FilterTrainer:
        return FilterTrainer(
            dataset=self.dataset,
            grid_size=self.config.grid_size,
            max_train_frames=self.config.max_train_frames,
            seed=self.config.seed,
        )

    @property
    def filters(self) -> dict[str, object]:
        """Trained filters: ``{"ic": ICFilter, "od": ODFilter, "od_cof": ODCountClassifier}``."""
        if self._filters is None:
            self._filters = self.trainer().train_all()
        return self._filters

    @property
    def ic_filter(self) -> ICFilter:
        return self.filters["ic"]  # type: ignore[return-value]

    @property
    def od_filter(self) -> ODFilter:
        return self.filters["od"]  # type: ignore[return-value]

    @property
    def od_cof(self) -> ODCountClassifier:
        return self.filters["od_cof"]  # type: ignore[return-value]

    def reference_detector(self, seed_offset: int = 100) -> ReferenceDetector:
        """A fresh reference detector (the evaluation / verification detector)."""
        return ReferenceDetector(
            class_names=self.class_names, seed=self.config.seed + seed_offset
        )

    @property
    def test_annotations(self) -> AnnotationSet:
        """Reference-detector annotations of the (strided) test split."""
        if self._test_annotations is None:
            self._test_annotations = annotate_stream(
                self.dataset.test,
                self.reference_detector(),
                self.class_names,
                self.dataset.grid(self.config.grid_size),
                frame_indices=self.config.test_indices,
            )
        return self._test_annotations


@lru_cache(maxsize=8)
def _cached_context(dataset_name: str, config: ExperimentConfig) -> ExperimentContext:
    return ExperimentContext(dataset_name, config)


def get_context(
    dataset_name: str, config: ExperimentConfig | None = None
) -> ExperimentContext:
    """Process-wide cached experiment context for ``dataset_name``."""
    return _cached_context(dataset_name, config or ExperimentConfig())
