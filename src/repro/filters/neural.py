"""CNN branch-network filters on the from-scratch :mod:`repro.nn` framework.

This is the faithful re-implementation of the paper's branch architecture
(Figures 2 and 4): a small convolutional trunk standing in for the frozen
early backbone layers, a global-average-pooling + dense head producing the
per-class count vector, and a 1x1-convolution + sigmoid head producing the
per-class occupancy grid (the analogue of the class-activation map).  It is
trained end to end with the multi-task loss in
:func:`repro.filters.training.train_neural_filter`.

Numpy convolutions are orders of magnitude slower than the closed-form
linear-branch filters, so the neural filters are exercised by the test suite
and the ``train_branch_network`` example on small frame budgets, while the
large experiment sweeps use the linear branches (see DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cost import OD_BRANCH_MS, SimulatedClock
from repro.filters.base import BatchPrediction, FilterPrediction, FrameFilter
from repro.nn.layers import (
    Conv2D,
    Dense,
    GlobalAveragePooling2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
)
from repro.nn.network import MultiHeadNetwork, Sequential
from repro.spatial.grid import Grid
from repro.video.stream import Frame


class _GridReshape:
    """Adapter layer: ``(N, C*g*g)`` dense output -> ``(N, C, g, g)`` grid."""

    training = True

    def __init__(self, num_classes: int, grid_size: int) -> None:
        self.num_classes = num_classes
        self.grid_size = grid_size

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        n = inputs.shape[0]
        return inputs.reshape(n, self.num_classes, self.grid_size, self.grid_size)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n = grad_output.shape[0]
        return grad_output.reshape(n, -1)

    def params(self) -> dict[str, np.ndarray]:
        return {}

    def grads(self) -> dict[str, np.ndarray]:
        return {}

    def zero_grad(self) -> None:
        return None


def build_branch_network(
    num_classes: int,
    image_size: int = 56,
    grid_size: int = 14,
    base_channels: int = 8,
    seed: int = 0,
) -> MultiHeadNetwork:
    """Build the branch network: shared conv trunk + count head + grid head.

    The trunk downsamples the ``image_size`` input to ``grid_size`` with
    stride-2 pooling; the count head is GAP + dense (Figure 2 / Figure 5);
    the grid head is a 1x1 convolution producing one occupancy channel per
    class followed by a sigmoid (the regularised activation map of Figure 4).
    """
    if image_size % grid_size != 0:
        raise ValueError(
            f"image_size {image_size} must be divisible by grid_size {grid_size}"
        )
    downsample_factor = image_size // grid_size
    num_pools = int(np.log2(downsample_factor))
    if 2**num_pools != downsample_factor:
        raise ValueError(
            f"image_size / grid_size must be a power of two, got {downsample_factor}"
        )
    layers: list = []
    in_channels = 3
    out_channels = base_channels
    for index in range(max(num_pools, 1)):
        layers.append(
            Conv2D(in_channels, out_channels, kernel_size=3, padding=1, seed=seed + index)
        )
        layers.append(LeakyReLU(0.1))
        if index < num_pools:
            layers.append(MaxPool2D(2))
        in_channels = out_channels
        out_channels = min(out_channels * 2, 32)
    trunk = Sequential(layers)

    count_head = Sequential(
        [
            GlobalAveragePooling2D(),
            Dense(in_channels, num_classes, seed=seed + 100),
            ReLU(),
        ]
    )
    grid_head = Sequential(
        [
            Conv2D(in_channels, num_classes, kernel_size=1, seed=seed + 200),
            Sigmoid(),
        ]
    )
    return MultiHeadNetwork(trunk=trunk, heads={"counts": count_head, "grid": grid_head})


class NeuralBranchFilter(FrameFilter):
    """A trained branch network exposed through the standard filter interface."""

    def __init__(
        self,
        network: MultiHeadNetwork,
        class_names: Sequence[str],
        image_size: int,
        grid_size: int,
        frame_width: int,
        frame_height: int,
        family: str = "OD",
        latency_ms: float = OD_BRANCH_MS,
        threshold: float = 0.5,
        clock: SimulatedClock | None = None,
        inference_dtype: np.dtype | type = np.float32,
        lint: bool = True,
    ) -> None:
        super().__init__(clock=clock)
        self.network = network
        self.class_names = tuple(class_names)
        self.image_size = image_size
        #: activation dtype used when the network is in eval mode; training
        #: always runs float64 (gradient checks need the precision)
        self.inference_dtype = np.dtype(inference_dtype)
        self.grid = Grid(
            rows=grid_size,
            cols=grid_size,
            frame_width=frame_width,
            frame_height=frame_height,
        )
        self.family = family
        self.name = f"{family.lower()}_neural_branch"
        self.latency_ms = latency_ms
        self.threshold = threshold
        if lint:
            # Reject a malformed network here — with a layer trace — instead
            # of as a numpy broadcasting error in the middle of a scan.
            # ``lint=False`` is the escape hatch for tests that need a
            # deliberately broken filter to reach plan-time analysis.
            from repro.analysis.shapes import input_spec, lint_network

            report = lint_network(
                network,
                input_spec(image_size, dtype=self.inference_dtype),
                expected_outputs={
                    "counts": ("N", len(self.class_names)),
                    "grid": ("N", len(self.class_names), grid_size, grid_size),
                },
            )
            report.raise_for_errors(context=f"{self.name} network shape analysis")

    @property
    def _activation_dtype(self) -> np.dtype:
        """float64 while the network trains, ``inference_dtype`` in eval mode.

        In eval mode the layers preserve the input dtype end to end (see
        :mod:`repro.nn.layers`), so feeding float32 halves the memory
        traffic of every convolution without touching the stored float64
        weights.
        """
        if getattr(self.network, "training", True):
            return np.dtype(np.float64)
        return self.inference_dtype

    def _prepare_input(self, image: np.ndarray, dtype: np.dtype | None = None) -> np.ndarray:
        """Downsample ``(H, W, 3)`` pixels to the network's square input size.

        Height and width are reduced independently, so rectangular frames are
        handled correctly: block-mean pooling when both axes divide evenly by
        ``image_size``, nearest-neighbour sampling with per-axis indices
        otherwise.
        """
        height, width = image.shape[0], image.shape[1]
        size = self.image_size
        if dtype is None:
            dtype = self._activation_dtype
        pixels = image.astype(dtype) / dtype.type(255.0)
        if (height, width) != (size, size):
            if height % size == 0 and width % size == 0:
                row_block = height // size
                col_block = width // size
                pixels = pixels.reshape(size, row_block, size, col_block, 3).mean(
                    axis=(1, 3)
                )
            else:
                rows = np.clip(
                    (np.arange(size) * height / size).astype(int), 0, height - 1
                )
                cols = np.clip(
                    (np.arange(size) * width / size).astype(int), 0, width - 1
                )
                pixels = pixels[rows][:, cols]
        return pixels.transpose(2, 0, 1)[None, ...]

    def _prediction_for(
        self, frame: Frame, counts: np.ndarray, grid_scores: np.ndarray
    ) -> FilterPrediction:
        class_counts = {
            name: int(round(max(float(counts[index]), 0.0)))
            for index, name in enumerate(self.class_names)
        }
        class_scores = {
            name: float(max(counts[index], 0.0))
            for index, name in enumerate(self.class_names)
        }
        location_scores = {
            name: grid_scores[index] for index, name in enumerate(self.class_names)
        }
        return FilterPrediction(
            frame_index=frame.index,
            filter_name=self.name,
            grid=self.grid,
            class_counts=class_counts,
            class_scores=class_scores,
            location_scores=location_scores,
            threshold=self.threshold,
            latency_ms=self.latency_ms,
        )

    def predict(self, frame: Frame) -> FilterPrediction:
        self._charge()
        inputs = self._prepare_input(frame.image)
        outputs = self.network.forward(inputs)
        return self._prediction_for(frame, outputs["counts"][0], outputs["grid"][0])

    def predict_batch(self, frames: Sequence[Frame]) -> BatchPrediction:
        """One stacked ``(N, C, H, W)`` forward pass for the whole batch."""
        if not frames:
            return BatchPrediction(filter_name=self.name, predictions=())
        self._charge_batch(len(frames))
        inputs = np.concatenate(
            [self._prepare_input(frame.image) for frame in frames], axis=0
        )
        outputs = self.network.forward(inputs)
        counts = outputs["counts"]
        grid_scores = outputs["grid"]
        return BatchPrediction(
            filter_name=self.name,
            predictions=tuple(
                self._prediction_for(frame, counts[position], grid_scores[position])
                for position, frame in enumerate(frames)
            ),
        )
