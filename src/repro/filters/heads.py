"""Trained estimation heads over frozen backbone features.

The paper's filters are small trainable heads on top of frozen early
convolution layers.  Here the heads are linear models fit in closed form
(ridge regression), which keeps training deterministic and fast on CPU while
preserving exactly the estimation structure of the paper:

* :class:`GridScoringHead` — the analogue of the class-activation map / grid
  branch: a per-class linear scorer over per-cell features whose thresholded
  output is the class location mask;
* :class:`CountCalibration` — the count head: the per-class count is a
  calibrated affine function of the summed cell scores (density-style
  counting), mirroring how the branch's fully connected count output
  aggregates the activation map;
* :class:`PooledCountHead` — the ``OD-COF`` head: a count regressor that only
  sees globally pooled features (no spatial structure), which is why it
  degrades on frames with many objects exactly as the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage


#: names of the per-class aggregate features the count head consumes
COUNT_FEATURE_NAMES = ("score_sum", "occupied_cells", "components")


def thresholded_sum(scores: np.ndarray, threshold: float) -> float:
    """Sum of the grid-cell scores that clear the occupancy threshold.

    Summing *all* cell scores would let thousands of near-zero background
    cells dominate the count signal; restricting the sum to confident cells
    makes the count a density-style aggregate of the occupied area, which the
    :class:`CountCalibration` then maps to an object count.
    """
    scores = np.asarray(scores, dtype=np.float64)
    return float(scores[scores >= threshold].sum())


def suppress_cross_class(
    location_scores: dict[str, np.ndarray], threshold: float
) -> dict[str, np.ndarray]:
    """Keep, per grid cell, only the highest-scoring class above the threshold.

    The per-class heads are trained independently (as the per-class activation
    maps in the paper are), so a strongly foreground cell can exceed the
    threshold for more than one class.  A convolutional branch learns to
    discriminate these cases; for the linear heads we resolve the competition
    explicitly: if another class scores strictly higher on a cell (and is
    above threshold), the losing class's score on that cell is zeroed.

    The computation is purely elementwise, so it accepts ``(g, g)`` maps or
    batched ``(N, g, g)`` stacks alike; each frame's result is bit-identical
    either way (the batched filter path relies on this).
    """
    if not location_scores:
        return {}
    names = list(location_scores)
    stacked = np.stack([np.asarray(location_scores[name], dtype=np.float64) for name in names])
    max_scores = stacked.max(axis=0)
    suppressed = {}
    for index, name in enumerate(names):
        scores = stacked[index].copy()
        losing = (scores < max_scores) & (max_scores >= threshold)
        scores[losing] = 0.0
        suppressed[name] = scores
    return suppressed


def count_features(scores: np.ndarray, threshold: float) -> np.ndarray:
    """Aggregate features of one class's score map used for count estimation.

    The count head regresses the per-class object count on three aggregates
    of the thresholded activation map: the summed score mass (density), the
    number of occupied cells (covered area) and the number of connected
    components (distinct blobs).  This mirrors how the paper's count output
    aggregates the regularised activation map through the fully connected
    layer, and is what lets exact counts stay accurate when object sizes vary.
    """
    scores = np.asarray(scores, dtype=np.float64)
    mask = scores >= threshold
    if not mask.any():
        return np.zeros(len(COUNT_FEATURE_NAMES))
    _, num_components = ndimage.label(mask)
    return np.array([float(scores[mask].sum()), float(mask.sum()), float(num_components)])


@dataclass
class RidgeAccumulator:
    """Streaming normal-equation accumulator for ridge regression.

    Solves ``min_w ||X w - y||^2 + alpha ||w||^2`` without materialising
    ``X``: callers feed ``(features, targets)`` batches and the accumulator
    keeps only ``X^T X`` and ``X^T y``.  A bias column is appended
    automatically.
    """

    num_features: int
    num_outputs: int = 1
    alpha: float = 1e-3
    _xtx: np.ndarray = field(init=False)
    _xty: np.ndarray = field(init=False)
    _count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.num_features <= 0 or self.num_outputs <= 0:
            raise ValueError("num_features and num_outputs must be positive")
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative: {self.alpha}")
        size = self.num_features + 1
        self._xtx = np.zeros((size, size))
        self._xty = np.zeros((size, self.num_outputs))

    def add_batch(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        sample_weights: np.ndarray | None = None,
    ) -> None:
        """Accumulate a batch: ``features (N, F)``, ``targets (N,)`` or ``(N, outputs)``.

        ``sample_weights`` (shape ``(N,)``) re-weights individual rows; this
        is how occupied grid cells — which are rare — are balanced against
        the overwhelming majority of empty cells (the analogue of the
        ``lambda_obj`` / ``lambda_noobj`` terms in the paper's equation 3).
        """
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.num_features:
            raise ValueError(
                f"expected features (N, {self.num_features}), got {features.shape}"
            )
        if targets.ndim == 1:
            targets = targets[:, None]
        if targets.shape != (features.shape[0], self.num_outputs):
            raise ValueError(
                f"expected targets ({features.shape[0]}, {self.num_outputs}), got {targets.shape}"
            )
        augmented = np.concatenate(
            [features, np.ones((features.shape[0], 1))], axis=1
        )
        if sample_weights is None:
            self._xtx += augmented.T @ augmented
            self._xty += augmented.T @ targets
        else:
            weights = np.asarray(sample_weights, dtype=np.float64)
            if weights.shape != (features.shape[0],):
                raise ValueError(
                    f"sample_weights must have shape ({features.shape[0]},), got {weights.shape}"
                )
            if np.any(weights < 0):
                raise ValueError("sample_weights must be non-negative")
            weighted = augmented * weights[:, None]
            self._xtx += weighted.T @ augmented
            self._xty += weighted.T @ targets
        self._count += features.shape[0]

    @property
    def num_samples(self) -> int:
        return self._count

    def solve(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(weights, bias)`` with shapes ``(F, outputs)`` and ``(outputs,)``."""
        if self._count == 0:
            raise RuntimeError("no samples accumulated")
        size = self.num_features + 1
        regulariser = self.alpha * np.eye(size)
        regulariser[-1, -1] = 0.0  # do not penalise the bias
        solution = np.linalg.solve(self._xtx + regulariser, self._xty)
        return solution[:-1, :], solution[-1, :]


@dataclass
class GridScoringHead:
    """Per-class linear scorer over per-cell features.

    ``weights`` has shape ``(num_classes, F)`` and ``bias`` ``(num_classes,)``;
    scoring a ``(g, g, F)`` feature tensor yields a ``(num_classes, g, g)``
    score tensor in (approximately) ``[0, 1]``.
    """

    class_names: tuple[str, ...]
    weights: np.ndarray
    bias: np.ndarray

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        bias = np.asarray(self.bias, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[0] != len(self.class_names):
            raise ValueError(
                f"weights must be (num_classes, F), got {weights.shape} for "
                f"{len(self.class_names)} classes"
            )
        if bias.shape != (len(self.class_names),):
            raise ValueError(f"bias must be (num_classes,), got {bias.shape}")
        self.weights = weights
        self.bias = bias

    @property
    def num_features(self) -> int:
        return self.weights.shape[1]

    def score(self, cell_features: np.ndarray) -> dict[str, np.ndarray]:
        """Per-class cell scores for a ``(g, g, F)`` feature tensor."""
        features = np.asarray(cell_features, dtype=np.float64)
        if features.ndim != 3 or features.shape[2] != self.num_features:
            raise ValueError(
                f"expected (g, g, {self.num_features}) features, got {features.shape}"
            )
        g_rows, g_cols, _ = features.shape
        flat = features.reshape(-1, self.num_features)
        scores = flat @ self.weights.T + self.bias
        scores = np.clip(scores, 0.0, 1.0)
        scores = scores.reshape(g_rows, g_cols, len(self.class_names))
        return {
            name: scores[:, :, index] for index, name in enumerate(self.class_names)
        }

    def score_batch(self, cell_features: np.ndarray) -> dict[str, np.ndarray]:
        """Per-class cell scores for a ``(N, g, g, F)`` feature batch.

        Returns ``{class: (N, g, g)}``.  The matrix product broadcasts over
        the batch axis (one identically-shaped GEMM per frame), so each slice
        is bit-identical to :meth:`score` on that frame's features.
        """
        features = np.asarray(cell_features, dtype=np.float64)
        if features.ndim != 4 or features.shape[3] != self.num_features:
            raise ValueError(
                f"expected (N, g, g, {self.num_features}) features, got {features.shape}"
            )
        n, g_rows, g_cols, _ = features.shape
        flat = features.reshape(n, g_rows * g_cols, self.num_features)
        scores = flat @ self.weights.T + self.bias
        scores = np.clip(scores, 0.0, 1.0)
        scores = scores.reshape(n, g_rows, g_cols, len(self.class_names))
        return {
            name: scores[:, :, :, index] for index, name in enumerate(self.class_names)
        }


@dataclass
class CountCalibration:
    """Linear calibration from activation-map aggregates to per-class counts.

    For each class ``c`` the count estimate is
    ``max(0, weights_c . count_features(scores_c) + offset_c)`` where
    :func:`count_features` provides (score sum, occupied cells, blob count).
    """

    class_names: tuple[str, ...]
    weights: np.ndarray  # (num_classes, num_count_features)
    offset: np.ndarray  # (num_classes,)

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        offset = np.asarray(self.offset, dtype=np.float64)
        num_classes = len(self.class_names)
        if weights.shape != (num_classes, len(COUNT_FEATURE_NAMES)):
            raise ValueError(
                f"weights must be ({num_classes}, {len(COUNT_FEATURE_NAMES)}), got {weights.shape}"
            )
        if offset.shape != (num_classes,):
            raise ValueError(f"offset must be ({num_classes},), got {offset.shape}")
        self.weights = weights
        self.offset = offset

    def estimate(
        self, per_class_features: dict[str, np.ndarray]
    ) -> tuple[dict[str, float], dict[str, int]]:
        """Return raw (float) and rounded per-class count estimates."""
        raw: dict[str, float] = {}
        rounded: dict[str, int] = {}
        for index, name in enumerate(self.class_names):
            features = np.asarray(
                per_class_features.get(name, np.zeros(len(COUNT_FEATURE_NAMES))),
                dtype=np.float64,
            )
            value = float(self.weights[index] @ features + self.offset[index])
            value = max(value, 0.0)
            raw[name] = value
            rounded[name] = int(round(value))
        return raw, rounded

    @classmethod
    def fit(
        cls,
        class_names: tuple[str, ...],
        feature_tensor: np.ndarray,
        true_counts: np.ndarray,
    ) -> "CountCalibration":
        """Least-squares fit of the per-class count calibration.

        ``feature_tensor`` has shape ``(num_frames, num_classes,
        num_count_features)`` and ``true_counts`` ``(num_frames, num_classes)``.
        """
        feature_tensor = np.asarray(feature_tensor, dtype=np.float64)
        true_counts = np.asarray(true_counts, dtype=np.float64)
        num_classes = len(class_names)
        if feature_tensor.ndim != 3 or feature_tensor.shape[1] != num_classes:
            raise ValueError(
                "feature_tensor must be (num_frames, num_classes, num_count_features), "
                f"got {feature_tensor.shape}"
            )
        if true_counts.shape != feature_tensor.shape[:2]:
            raise ValueError(
                f"true_counts shape {true_counts.shape} does not match features"
            )
        num_features = feature_tensor.shape[2]
        weights = np.zeros((num_classes, num_features))
        offset = np.zeros(num_classes)
        for index in range(num_classes):
            x = feature_tensor[:, index, :]
            y = true_counts[:, index]
            # Guard against a degenerate class that never appears.
            if np.allclose(x, 0.0) or np.allclose(y, 0.0):
                offset[index] = float(np.mean(y))
                continue
            design = np.concatenate([x, np.ones((x.shape[0], 1))], axis=1)
            coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
            weights[index] = coeffs[:-1]
            offset[index] = float(coeffs[-1])
        return cls(class_names=class_names, weights=weights, offset=offset)


@dataclass
class PooledCountHead:
    """Total-count regressor over globally pooled features (the OD-COF head)."""

    weights: np.ndarray
    bias: float

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be a vector, got shape {weights.shape}")
        self.weights = weights
        self.bias = float(self.bias)

    def estimate(self, pooled_features: np.ndarray) -> float:
        pooled = np.asarray(pooled_features, dtype=np.float64)
        if pooled.shape != self.weights.shape:
            raise ValueError(
                f"expected pooled features of shape {self.weights.shape}, got {pooled.shape}"
            )
        return float(max(pooled @ self.weights + self.bias, 0.0))
