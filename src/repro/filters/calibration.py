"""Grid-threshold calibration.

The paper uses a fixed occupancy threshold of 0.2 on the grid-cell scores
("For OD techniques we threshold the grid cell to determine the presence of
an object using a threshold of 0.2").  This module provides the validation
sweep behind such a choice: evaluate localisation F1 over a range of
thresholds on held-out frames and pick the best one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.detection.annotation import AnnotationSet
from repro.filters.base import FrameFilter
from repro.filters.metrics import evaluate_localization
from repro.video.stream import VideoStream


@dataclass(frozen=True)
class ThresholdCalibration:
    """Result of a threshold sweep."""

    filter_name: str
    thresholds: tuple[float, ...]
    micro_f1: tuple[float, ...]
    best_threshold: float
    best_f1: float

    def as_rows(self) -> list[dict[str, float]]:
        return [
            {"threshold": t, "micro_f1": f}
            for t, f in zip(self.thresholds, self.micro_f1)
        ]


def calibrate_threshold(
    frame_filter: FrameFilter,
    stream: VideoStream,
    annotations: AnnotationSet,
    thresholds: Sequence[float] = (0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5),
) -> ThresholdCalibration:
    """Sweep grid thresholds on validation data and return the best by micro F1."""
    if not thresholds:
        raise ValueError("at least one threshold is required")
    scores = []
    for threshold in thresholds:
        report = evaluate_localization(
            frame_filter, stream, annotations, threshold=threshold
        )
        scores.append(report.micro_f1)
    best_index = int(np.argmax(scores))
    return ThresholdCalibration(
        filter_name=frame_filter.name,
        thresholds=tuple(float(t) for t in thresholds),
        micro_f1=tuple(float(s) for s in scores),
        best_threshold=float(thresholds[best_index]),
        best_f1=float(scores[best_index]),
    )
