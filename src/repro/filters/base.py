"""Filter interface and prediction data model."""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.cost import SimulatedClock
from repro.spatial.grid import Grid, GridMask
from repro.video.stream import Frame


class CountTolerance(enum.IntEnum):
    """Count tolerance bands: exact, within ±1, within ±2 (the ``-1`` / ``-2`` filter variants)."""

    EXACT = 0
    WITHIN_1 = 1
    WITHIN_2 = 2


class LocationTolerance(enum.IntEnum):
    """Grid-localisation tolerance: exact cell, Manhattan distance 1 or 2."""

    EXACT = 0
    MANHATTAN_1 = 1
    MANHATTAN_2 = 2


@dataclass(frozen=True)
class FilterPrediction:
    """Everything a filter estimates about one frame.

    ``class_counts`` holds the (rounded, non-negative) per-class count
    estimates; ``class_scores`` the raw regression outputs before rounding;
    ``location_scores`` maps each class to a ``(g, g)`` float array of
    per-cell occupancy scores which, thresholded, become the class location
    masks the spatial predicates are evaluated on.
    """

    frame_index: int
    filter_name: str
    grid: Grid
    class_counts: Mapping[str, int]
    class_scores: Mapping[str, float]
    location_scores: Mapping[str, np.ndarray]
    threshold: float
    latency_ms: float

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------
    @property
    def total_count(self) -> int:
        return int(sum(self.class_counts.values()))

    def count_of(self, class_name: str) -> int:
        return int(self.class_counts.get(class_name, 0))

    # ------------------------------------------------------------------
    # Locations
    # ------------------------------------------------------------------
    def location_mask(
        self, class_name: str, threshold: float | None = None, dilation: int = 0
    ) -> GridMask:
        """Thresholded (optionally dilated) occupancy mask for ``class_name``."""
        scores = self.location_scores.get(class_name)
        if scores is None:
            return self.grid.empty_mask()
        cutoff = self.threshold if threshold is None else threshold
        mask = GridMask(grid=self.grid, values=np.asarray(scores) >= cutoff)
        if dilation > 0:
            mask = mask.dilated(dilation)
        return mask

    def location_masks(
        self, class_names: Sequence[str], threshold: float | None = None, dilation: int = 0
    ) -> dict[str, GridMask]:
        return {
            name: self.location_mask(name, threshold=threshold, dilation=dilation)
            for name in class_names
        }

    # ------------------------------------------------------------------
    # Predicate helpers used by the query executor
    # ------------------------------------------------------------------
    def count_matches(
        self, class_name: str | None, expected: int, tolerance: CountTolerance
    ) -> bool:
        """Whether the predicted count equals ``expected`` within ``tolerance``.

        ``class_name=None`` refers to the total object count.
        """
        predicted = self.total_count if class_name is None else self.count_of(class_name)
        return abs(predicted - expected) <= int(tolerance)

    def count_at_least(self, class_name: str | None, minimum: int, tolerance: CountTolerance) -> bool:
        """Whether the predicted count is at least ``minimum`` minus the tolerance."""
        predicted = self.total_count if class_name is None else self.count_of(class_name)
        return predicted >= minimum - int(tolerance)


@dataclass(frozen=True)
class BatchPrediction:
    """Per-frame predictions of one filter over a batch of frames.

    The batch is positional: ``predictions[i]`` belongs to the ``i``-th frame
    passed to :meth:`FrameFilter.predict_batch`.  Each element is an ordinary
    :class:`FilterPrediction`, so every per-frame consumer (cascade checks,
    predicate helpers) works unchanged on batch results.
    """

    filter_name: str
    predictions: tuple[FilterPrediction, ...]

    def __len__(self) -> int:
        return len(self.predictions)

    def __iter__(self):
        return iter(self.predictions)

    def __getitem__(self, index: int) -> FilterPrediction:
        return self.predictions[index]

    @property
    def frame_indices(self) -> tuple[int, ...]:
        return tuple(prediction.frame_index for prediction in self.predictions)


class FrameFilter(abc.ABC):
    """A cheap approximate per-frame estimator.

    Filters see only the frame's pixels; the ground truth is reserved for the
    reference detector.  Each call charges the filter's simulated latency
    (the paper's measured per-frame branch cost) to the attached clock.
    """

    #: filter family name, e.g. ``"IC"`` or ``"OD"``
    family: str = "filter"
    #: component name for cost accounting
    name: str = "filter"
    #: simulated per-frame latency in milliseconds
    latency_ms: float = 0.0
    #: whether predictions carry per-class counts and location grids;
    #: ``False`` for total-count-only filters (OD-COF), whose predictions
    #: only hold the pseudo-class ``"object"``
    class_aware: bool = True

    def __init__(self, clock: SimulatedClock | None = None) -> None:
        self.clock = clock

    @property
    def identity(self) -> tuple:
        """Stable hashable key identifying this filter for prediction sharing.

        Two filters with the same identity are promised to produce identical
        predictions for the same frame, so multi-query execution may evaluate
        one of them and reuse the prediction wherever the other appears (see
        :meth:`~repro.query.executor.StreamingQueryExecutor.execute_many`).
        The default is per-instance — distinct instances of the same filter
        class may carry different trained weights, so only the *same object*
        shares by default.  Subclasses that can prove value-equality (e.g.
        filters loaded from the same weights file) may override this with a
        content-derived key.
        """
        return (type(self).__qualname__, self.name, id(self))

    @abc.abstractmethod
    def predict(self, frame: Frame) -> FilterPrediction:
        """Estimate counts and locations for ``frame``."""

    def predict_batch(self, frames: Sequence[Frame]) -> BatchPrediction:
        """Estimate counts and locations for a batch of frames.

        The base implementation falls back to a per-frame loop, so every
        filter supports batching; subclasses override it with vectorized
        implementations.  Batch results must be equivalent to calling
        :meth:`predict` on each frame, including the simulated cost charged
        per frame to the clock.
        """
        return BatchPrediction(
            filter_name=self.name,
            predictions=tuple(self.predict(frame) for frame in frames),
        )

    def predict_many(self, frames: Sequence[Frame]) -> list[FilterPrediction]:
        return list(self.predict_batch(frames))

    def _charge(self) -> None:
        if self.clock is not None:
            self.clock.charge(self.name, self.latency_ms)

    def _charge_batch(self, calls: int) -> None:
        """Charge ``calls`` frames' worth of latency in one batched charge."""
        if self.clock is not None and calls > 0:
            self.clock.charge(self.name, self.latency_ms * calls, calls=calls)
