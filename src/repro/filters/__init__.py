"""Approximate frame filters — the paper's core contribution.

Section II of the paper proposes two families of cheap, approximate filters
that estimate, per frame:

* the total number of objects (``CF`` — count filter),
* the number of objects of each class (``CCF`` — class count filter),
* the location of objects of each class on a ``g x g`` grid (``CLF`` — class
  location filter),

without running a full object detector.  The **IC** family branches off an
image-classification backbone (class-activation maps); the **OD** family
branches off an object-detection backbone; **OD-COF** is a count-only
classifier branch.  Filters are approximate (false positives and false
negatives are both possible) and come with tolerance variants: counts within
±1 / ±2 and grid localisation within Manhattan distance 1 / 2.

This package provides:

* :mod:`repro.filters.base` — the prediction data model and filter interface;
* :mod:`repro.filters.heads` — the trained estimation heads (per-cell grid
  scorer, count calibration, pooled count regressor);
* :mod:`repro.filters.ic`, :mod:`repro.filters.od` — the two filter families
  plus the count-optimised ``OD-COF`` classifier;
* :mod:`repro.filters.neural` — a faithful CNN branch-network implementation
  of both families on the :mod:`repro.nn` framework (trainable end to end
  with the paper's multi-task loss);
* :mod:`repro.filters.training` — training pipelines for both implementations;
* :mod:`repro.filters.metrics` — the paper's accuracy metrics (exact / ±1 /
  ±2 count accuracy, localisation F1 at Manhattan distance 0 / 1 / 2);
* :mod:`repro.filters.calibration` — grid-threshold calibration.
"""

from repro.filters.base import (
    BatchPrediction,
    CountTolerance,
    FilterPrediction,
    FrameFilter,
    LocationTolerance,
)
from repro.filters.heads import CountCalibration, GridScoringHead, PooledCountHead
from repro.filters.ic import ICFilter
from repro.filters.od import ODCountClassifier, ODFilter
from repro.filters.neural import NeuralBranchFilter, build_branch_network
from repro.filters.training import (
    FilterTrainer,
    NeuralTrainingConfig,
    train_neural_filter,
)
from repro.filters.metrics import (
    CountAccuracyReport,
    LocalizationReport,
    count_accuracy,
    evaluate_count_filter,
    evaluate_localization,
    localization_f1,
)
from repro.filters.calibration import ThresholdCalibration, calibrate_threshold

__all__ = [
    "BatchPrediction",
    "FilterPrediction",
    "FrameFilter",
    "CountTolerance",
    "LocationTolerance",
    "GridScoringHead",
    "CountCalibration",
    "PooledCountHead",
    "ICFilter",
    "ODFilter",
    "ODCountClassifier",
    "NeuralBranchFilter",
    "build_branch_network",
    "FilterTrainer",
    "NeuralTrainingConfig",
    "train_neural_filter",
    "CountAccuracyReport",
    "LocalizationReport",
    "count_accuracy",
    "localization_f1",
    "evaluate_count_filter",
    "evaluate_localization",
    "ThresholdCalibration",
    "calibrate_threshold",
]
