"""Filter training pipelines.

Two implementations are provided, mirroring DESIGN.md:

* :class:`FilterTrainer` — the default pipeline used by the experiments.  It
  annotates the training stream with the reference detector (as the paper
  annotates with Mask R-CNN), fits the per-class grid scoring head in closed
  form (streaming ridge regression over per-cell backbone features) and
  calibrates the count head on the summed cell scores.  Deterministic, runs
  in seconds on CPU, identical estimation structure to the paper's branches.

* :func:`train_neural_filter` — the faithful branch-network implementation on
  the :mod:`repro.nn` framework, trained end to end with the paper's
  multi-task loss and the two-phase alpha/beta schedule (counts first, then
  gradually add the localisation term).  Much slower; used by the unit tests
  and the ``train_branch_network`` example to demonstrate the full training
  path works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cost import SimulatedClock
from repro.detection.annotation import AnnotationSet, annotate_stream
from repro.detection.backbone import (
    FeatureBackbone,
    classification_backbone,
    detection_backbone,
)
from repro.detection.base import Detector
from repro.detection.oracle import ReferenceDetector
from repro.filters.branch import DEFAULT_GRID_THRESHOLD
from repro.filters.heads import (
    COUNT_FEATURE_NAMES,
    CountCalibration,
    GridScoringHead,
    PooledCountHead,
    RidgeAccumulator,
    count_features,
    suppress_cross_class,
)
from repro.filters.ic import ICFilter
from repro.filters.neural import NeuralBranchFilter, build_branch_network
from repro.filters.od import ODCountClassifier, ODFilter
from repro.nn.losses import MSELoss, SmoothL1Loss
from repro.nn.optim import Adam
from repro.spatial.grid import Grid
from repro.video.stream import VideoDataset, VideoStream


@dataclass
class FilterTrainer:
    """Trains IC / OD / OD-COF filters for one dataset.

    Parameters
    ----------
    dataset:
        The video dataset (train split is used for fitting, validation for
        threshold calibration if requested).
    annotator:
        The detector that produces training labels; defaults to the reference
        detector (the paper uses Mask R-CNN).
    grid_size:
        Side of the localisation grid ``g`` (56 in the paper).
    positive_cell_balance:
        Controls the per-class sample weight applied to occupied grid cells
        when fitting the grid head.  Occupied cells are rare (objects cover a
        small fraction of the frame, and rare classes appear in few frames),
        so each class's positive cells are up-weighted until their total
        weight is ``positive_cell_balance`` times the weight of the empty
        cells (capped at ``max_positive_weight``).  This plays the role of
        the paper's ``lambda_obj`` / ``lambda_noobj`` balancing terms in
        equation (3) and of the per-class ``weight_c`` in equation (2).
    max_train_frames:
        Cap on the number of training frames (``None`` = use all).
    """

    dataset: VideoDataset
    annotator: Detector | None = None
    grid_size: int = 56
    threshold: float = DEFAULT_GRID_THRESHOLD
    ridge_alpha: float = 1e-3
    positive_cell_balance: float = 0.12
    max_positive_weight: float = 60.0
    cross_class_negative_weight: float = 20.0
    max_train_frames: int | None = None
    background_frames: int = 40
    clock: SimulatedClock | None = None
    seed: int = 0

    _annotations: AnnotationSet | None = field(default=None, init=False, repr=False)
    _train_indices: list[int] | None = field(default=None, init=False, repr=False)

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        return self.dataset.grid(self.grid_size)

    @property
    def class_names(self) -> tuple[str, ...]:
        return self.dataset.class_names

    def _get_annotator(self) -> Detector:
        if self.annotator is None:
            self.annotator = ReferenceDetector(
                class_names=self.class_names, seed=self.seed
            )
        return self.annotator

    def train_indices(self) -> list[int]:
        if self._train_indices is None:
            total = len(self.dataset.train)
            if self.max_train_frames is not None and self.max_train_frames < total:
                # Evenly spaced subset keeps temporal coverage of the stream.
                indices = np.linspace(0, total - 1, self.max_train_frames).astype(int)
                self._train_indices = sorted(set(int(i) for i in indices))
            else:
                self._train_indices = list(range(total))
        return self._train_indices

    def annotations(self) -> AnnotationSet:
        """Training labels produced by the annotating detector (cached)."""
        if self._annotations is None:
            self._annotations = annotate_stream(
                self.dataset.train,
                self._get_annotator(),
                self.class_names,
                self.grid,
                frame_indices=self.train_indices(),
            )
        return self._annotations

    def _prepare_backbone(self, backbone: FeatureBackbone) -> FeatureBackbone:
        step = max(len(self.dataset.train) // max(self.background_frames, 1), 1)
        backbone.fit_background(
            self.dataset.train.iter_range(0, len(self.dataset.train), step),
            max_frames=self.background_frames,
        )
        return backbone

    # ------------------------------------------------------------------
    # Linear branch training
    # ------------------------------------------------------------------
    def _positive_cell_weights(self) -> dict[str, float]:
        """Per-class weight for occupied cells, balancing them against empty cells."""
        annotations = self.annotations()
        grid_cells = self.grid.rows * self.grid.cols
        total_cells = max(len(annotations) * grid_cells, 1)
        weights: dict[str, float] = {}
        for name in self.class_names:
            positives = float(annotations.location_tensor(name).sum())
            if positives <= 0:
                weights[name] = 1.0
                continue
            negatives = total_cells - positives
            weight = self.positive_cell_balance * negatives / positives
            weights[name] = float(np.clip(weight, 1.0, self.max_positive_weight))
        return weights

    def _fit_grid_head(self, backbone: FeatureBackbone) -> GridScoringHead:
        annotations = self.annotations()
        positive_weights = self._positive_cell_weights()
        accumulators = {
            name: RidgeAccumulator(
                num_features=backbone.num_features, num_outputs=1, alpha=self.ridge_alpha
            )
            for name in self.class_names
        }
        stream = self.dataset.train
        for annotated in annotations:
            features = backbone.extract(stream.frame(annotated.frame_index).image)
            flat_features = features.reshape(-1, backbone.num_features)
            all_labels = {
                name: annotated.grid_of(name).reshape(-1).astype(np.float64)
                for name in self.class_names
            }
            for name in self.class_names:
                labels = all_labels[name]
                # Cells occupied by *other* classes are hard negatives: they
                # look like foreground, and without extra weight the head
                # happily scores them as this class too (the cross-class
                # confusion the paper's trained branches avoid).
                other = np.zeros_like(labels, dtype=bool)
                for other_name in self.class_names:
                    if other_name != name:
                        other |= all_labels[other_name] > 0
                other &= labels <= 0
                sample_weights = np.where(
                    labels > 0,
                    positive_weights[name],
                    np.where(other, self.cross_class_negative_weight, 1.0),
                )
                accumulators[name].add_batch(flat_features, labels, sample_weights)
        weights_rows = []
        bias_values = []
        for name in self.class_names:
            weights, bias = accumulators[name].solve()
            weights_rows.append(weights[:, 0])
            bias_values.append(bias[0])
        return GridScoringHead(
            class_names=self.class_names,
            weights=np.stack(weights_rows, axis=0),
            bias=np.array(bias_values),
        )

    def _recalibrate_grid_head(
        self,
        backbone: FeatureBackbone,
        grid_head: GridScoringHead,
        max_frames: int = 120,
        target_negative: float = 0.10,
        target_positive: float = 0.75,
    ) -> GridScoringHead:
        """Affine per-class rescaling of the grid scores.

        Ridge regression minimises squared error, not calibration: depending
        on class frequency the raw scores of empty cells can sit close to the
        occupancy threshold, flooding rare classes with false positives.
        This pass measures the score distribution on training frames and
        rescales each class so that the high quantile of *empty* cells maps
        to ``target_negative`` and the median of *occupied* cells maps to
        ``target_positive`` — the analogue of the output calibration a
        sigmoid + balanced loss gives the paper's branch networks.
        """
        annotations = self.annotations()
        stream = self.dataset.train
        subset = list(annotations)[:: max(len(annotations) // max_frames, 1)]
        positive_scores: dict[str, list[np.ndarray]] = {n: [] for n in self.class_names}
        negative_scores: dict[str, list[np.ndarray]] = {n: [] for n in self.class_names}
        for annotated in subset:
            features = backbone.extract(stream.frame(annotated.frame_index).image)
            scores = grid_head.score(features)
            for name in self.class_names:
                labels = annotated.grid_of(name)
                class_scores = scores[name]
                if labels.any():
                    positive_scores[name].append(class_scores[labels])
                negative_scores[name].append(class_scores[~labels])

        new_weights = grid_head.weights.copy()
        new_bias = grid_head.bias.copy()
        for index, name in enumerate(self.class_names):
            if not positive_scores[name]:
                continue
            positives = np.concatenate(positive_scores[name])
            negatives = np.concatenate(negative_scores[name])
            positive_mid = float(np.quantile(positives, 0.5))
            negative_high = float(np.quantile(negatives, 0.995))
            spread = positive_mid - negative_high
            if spread <= 1e-6:
                continue
            scale = (target_positive - target_negative) / spread
            shift = target_negative - scale * negative_high
            new_weights[index] *= scale
            new_bias[index] = scale * new_bias[index] + shift
        return GridScoringHead(
            class_names=self.class_names, weights=new_weights, bias=new_bias
        )

    def _fit_count_calibration(
        self, backbone: FeatureBackbone, grid_head: GridScoringHead
    ) -> CountCalibration:
        annotations = self.annotations()
        stream = self.dataset.train
        feature_tensor = np.zeros(
            (len(annotations), len(self.class_names), len(COUNT_FEATURE_NAMES))
        )
        true_counts = annotations.counts_matrix()
        for row, annotated in enumerate(annotations):
            features = backbone.extract(stream.frame(annotated.frame_index).image)
            scores = suppress_cross_class(grid_head.score(features), self.threshold)
            for col, name in enumerate(self.class_names):
                feature_tensor[row, col] = count_features(scores[name], self.threshold)
        return CountCalibration.fit(self.class_names, feature_tensor, true_counts)

    def _train_linear_branch(
        self, backbone: FeatureBackbone
    ) -> tuple[GridScoringHead, CountCalibration]:
        backbone = self._prepare_backbone(backbone)
        grid_head = self._fit_grid_head(backbone)
        grid_head = self._recalibrate_grid_head(backbone, grid_head)
        calibration = self._fit_count_calibration(backbone, grid_head)
        return grid_head, calibration

    # ------------------------------------------------------------------
    # Public training entry points
    # ------------------------------------------------------------------
    def train_ic_filter(self) -> ICFilter:
        """Train the IC filter (classification-style backbone)."""
        backbone = classification_backbone(self.grid_size)
        grid_head, calibration = self._train_linear_branch(backbone)
        return ICFilter(
            grid_head=grid_head,
            count_calibration=calibration,
            grid=self.grid,
            backbone=backbone,
            threshold=self.threshold,
            clock=self.clock,
        )

    def train_od_filter(self) -> ODFilter:
        """Train the OD filter (detection-style backbone)."""
        backbone = detection_backbone(self.grid_size)
        grid_head, calibration = self._train_linear_branch(backbone)
        return ODFilter(
            grid_head=grid_head,
            count_calibration=calibration,
            grid=self.grid,
            backbone=backbone,
            threshold=self.threshold,
            clock=self.clock,
        )

    def train_od_count_classifier(self) -> ODCountClassifier:
        """Train the OD-COF filter (count-only head on pooled features)."""
        backbone = self._prepare_backbone(detection_backbone(self.grid_size))
        annotations = self.annotations()
        stream = self.dataset.train
        accumulator = RidgeAccumulator(
            num_features=backbone.num_features, num_outputs=1, alpha=self.ridge_alpha
        )
        for annotated in annotations:
            features = backbone.extract(stream.frame(annotated.frame_index).image)
            pooled = features.reshape(-1, backbone.num_features).mean(axis=0)
            accumulator.add_batch(pooled[None, :], np.array([annotated.total_count]))
        weights, bias = accumulator.solve()
        head = PooledCountHead(weights=weights[:, 0], bias=float(bias[0]))
        return ODCountClassifier(
            count_head=head,
            grid=self.grid,
            backbone=backbone,
            clock=self.clock,
        )

    def train_all(self) -> dict[str, object]:
        """Train every filter variant; returns ``{"ic": ..., "od": ..., "od_cof": ...}``."""
        return {
            "ic": self.train_ic_filter(),
            "od": self.train_od_filter(),
            "od_cof": self.train_od_count_classifier(),
        }


# ----------------------------------------------------------------------
# Neural (CNN branch network) training
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NeuralTrainingConfig:
    """Hyper-parameters for end-to-end branch-network training.

    The defaults follow the paper: Adam with learning rate 1e-4 and
    exponential decay 5e-4, counts-only warm-up (beta=0) followed by the
    multi-task phase with (alpha, beta) = (1, 10) and beta decayed each epoch.
    """

    image_size: int = 56
    grid_size: int = 14
    epochs: int = 8
    warmup_epochs: int = 2
    batch_size: int = 16
    learning_rate: float = 1e-4
    lr_decay: float = 5e-4
    alpha: float = 1.0
    beta_initial: float = 10.0
    beta_decay: float = 0.7
    base_channels: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.image_size % self.grid_size != 0:
            raise ValueError(
                f"image_size {self.image_size} must be divisible by grid_size {self.grid_size}"
            )
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")


def _resize_image(image: np.ndarray, size: int) -> np.ndarray:
    """Block-average resize of an ``(H, W, 3)`` uint8 image to ``(size, size, 3)``."""
    height = image.shape[0]
    pixels = image.astype(np.float64) / 255.0
    if height == size:
        return pixels
    if height % size == 0:
        block = height // size
        return pixels.reshape(size, block, size, block, 3).mean(axis=(1, 3))
    indices = np.clip((np.arange(size) * height / size).astype(int), 0, height - 1)
    return pixels[indices][:, indices]


def _training_tensors(
    stream: VideoStream,
    annotations: AnnotationSet,
    class_names: Sequence[str],
    config: NeuralTrainingConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (images, counts, grids) tensors for neural training."""
    images = []
    counts = []
    grids = []
    coarse = Grid(
        rows=config.grid_size,
        cols=config.grid_size,
        frame_width=annotations.grid.frame_width,
        frame_height=annotations.grid.frame_height,
    )
    for annotated in annotations:
        frame = stream.frame(annotated.frame_index)
        images.append(_resize_image(frame.image, config.image_size).transpose(2, 0, 1))
        counts.append([annotated.count_of(name) for name in class_names])
        # Down-scale the annotation grid to the network's native grid size.
        fine = annotated.location_grids
        frame_grids = []
        for name in class_names:
            fine_grid = fine.get(name)
            if fine_grid is None:
                frame_grids.append(np.zeros((config.grid_size, config.grid_size)))
                continue
            factor = fine_grid.shape[0] // config.grid_size
            if factor >= 1:
                reduced = fine_grid.reshape(
                    config.grid_size, factor, config.grid_size, factor
                ).max(axis=(1, 3))
            else:
                reduced = fine_grid
            frame_grids.append(reduced.astype(np.float64))
        grids.append(np.stack(frame_grids, axis=0))
    return (
        np.stack(images, axis=0),
        np.array(counts, dtype=np.float64),
        np.stack(grids, axis=0),
    )


def train_neural_filter(
    stream: VideoStream,
    annotations: AnnotationSet,
    class_names: Sequence[str],
    config: NeuralTrainingConfig | None = None,
    family: str = "OD",
    clock: SimulatedClock | None = None,
) -> NeuralBranchFilter:
    """Train a CNN branch filter end to end with the paper's multi-task loss.

    Returns a :class:`NeuralBranchFilter` whose family ("IC" or "OD") only
    affects the reported name / latency; the architecture is the same branch
    network in both cases.
    """
    config = config or NeuralTrainingConfig()
    class_names = tuple(class_names)
    network = build_branch_network(
        num_classes=len(class_names),
        image_size=config.image_size,
        grid_size=config.grid_size,
        base_channels=config.base_channels,
        seed=config.seed,
    )
    images, counts, grids = _training_tensors(stream, annotations, class_names, config)
    num_samples = images.shape[0]
    count_loss = SmoothL1Loss()
    grid_loss = MSELoss()
    optimizer = Adam(learning_rate=config.learning_rate, lr_decay=config.lr_decay)
    rng = np.random.default_rng(config.seed)

    # Per-class loss weights: fraction of frames containing the class, as in
    # equation (2) of the paper.
    class_weights = np.array(
        [max((counts[:, i] > 0).mean(), 1e-3) for i in range(len(class_names))]
    )

    beta = 0.0
    for epoch in range(config.epochs):
        if epoch == config.warmup_epochs:
            beta = config.beta_initial
        elif epoch > config.warmup_epochs:
            beta *= config.beta_decay
        order = rng.permutation(num_samples)
        for start in range(0, num_samples, config.batch_size):
            batch = order[start : start + config.batch_size]
            outputs = network.forward(images[batch])
            count_pred = outputs["counts"]
            grid_pred = outputs["grid"]
            batch_counts = counts[batch]
            batch_grids = grids[batch]

            weighted_count_pred = count_pred * class_weights
            weighted_count_true = batch_counts * class_weights
            count_loss.forward(weighted_count_pred, weighted_count_true)
            grad_counts = count_loss.backward() * class_weights * config.alpha

            head_grads = {"counts": grad_counts}
            if beta > 0:
                grid_loss.forward(grid_pred, batch_grids)
                head_grads["grid"] = grid_loss.backward() * beta
            network.zero_grad()
            network.backward(head_grads)
            optimizer.step(network.parameter_groups())

    return NeuralBranchFilter(
        network=network,
        class_names=class_names,
        image_size=config.image_size,
        grid_size=config.grid_size,
        frame_width=annotations.grid.frame_width,
        frame_height=annotations.grid.frame_height,
        family=family,
        clock=clock,
    )
