"""Shared implementation of branch filters over frozen backbones.

Both filter families (IC and OD) share the same estimation structure — a
frozen convolutional backbone producing per-cell features, a per-class grid
scoring head, and a count calibration on the summed cell scores.  They differ
only in which backbone they tap (classification-style vs detection-style
features) and in their per-frame latency.  This module hosts the shared
machinery; :mod:`repro.filters.ic` and :mod:`repro.filters.od` configure it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cost import SimulatedClock
from repro.detection.backbone import FeatureBackbone
from repro.filters.base import BatchPrediction, FilterPrediction, FrameFilter
from repro.filters.heads import (
    CountCalibration,
    GridScoringHead,
    PooledCountHead,
    count_features,
    suppress_cross_class,
)
from repro.spatial.grid import Grid
from repro.video.stream import Frame

# Grid-occupancy threshold used throughout the paper's experiments.
DEFAULT_GRID_THRESHOLD = 0.2


class LinearBranchFilter(FrameFilter):
    """A branch filter: frozen backbone + grid scoring head + count calibration."""

    family = "branch"
    name = "branch_filter"

    def __init__(
        self,
        backbone: FeatureBackbone,
        grid_head: GridScoringHead,
        count_calibration: CountCalibration,
        grid: Grid,
        threshold: float = DEFAULT_GRID_THRESHOLD,
        latency_ms: float = 0.0,
        clock: SimulatedClock | None = None,
    ) -> None:
        super().__init__(clock=clock)
        if grid_head.class_names != count_calibration.class_names:
            raise ValueError(
                "grid head and count calibration must agree on the class list"
            )
        if backbone.grid_size != grid.rows or backbone.grid_size != grid.cols:
            raise ValueError(
                f"backbone grid size {backbone.grid_size} does not match grid {grid.shape}"
            )
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1]: {threshold}")
        self.backbone = backbone
        self.grid_head = grid_head
        self.count_calibration = count_calibration
        self.grid = grid
        self.threshold = threshold
        self.latency_ms = latency_ms

    @property
    def class_names(self) -> tuple[str, ...]:
        return self.grid_head.class_names

    def predict(self, frame: Frame) -> FilterPrediction:
        self._charge()
        features = self.backbone.extract(frame.image)
        location_scores = suppress_cross_class(
            self.grid_head.score(features), self.threshold
        )
        per_class_count_features = {
            name: count_features(scores, self.threshold)
            for name, scores in location_scores.items()
        }
        raw_counts, class_counts = self.count_calibration.estimate(per_class_count_features)
        return FilterPrediction(
            frame_index=frame.index,
            filter_name=self.name,
            grid=self.grid,
            class_counts=class_counts,
            class_scores=raw_counts,
            location_scores=location_scores,
            threshold=self.threshold,
            latency_ms=self.latency_ms,
        )

    def predict_batch(self, frames: Sequence[Frame]) -> BatchPrediction:
        """Vectorized prediction over a batch of frames.

        The backbone features and grid-head scores of the whole batch are
        computed in stacked numpy operations (the hot path); the cheap
        per-frame count aggregation reuses exactly the per-frame functions.
        Predictions agree with :meth:`predict` to floating-point rounding
        (the batched backbone sums in a different order, so scores can differ
        at the last ulp; see ``FeatureBackbone.extract_batch``).
        """
        if not frames:
            return BatchPrediction(filter_name=self.name, predictions=())
        self._charge_batch(len(frames))
        images = np.stack([frame.image for frame in frames])
        features = self.backbone.extract_batch(images)
        stacked_scores = suppress_cross_class(
            self.grid_head.score_batch(features), self.threshold
        )
        predictions = []
        for position, frame in enumerate(frames):
            location_scores = {
                name: scores[position] for name, scores in stacked_scores.items()
            }
            per_class_count_features = {
                name: count_features(scores, self.threshold)
                for name, scores in location_scores.items()
            }
            raw_counts, class_counts = self.count_calibration.estimate(
                per_class_count_features
            )
            predictions.append(
                FilterPrediction(
                    frame_index=frame.index,
                    filter_name=self.name,
                    grid=self.grid,
                    class_counts=class_counts,
                    class_scores=raw_counts,
                    location_scores=location_scores,
                    threshold=self.threshold,
                    latency_ms=self.latency_ms,
                )
            )
        return BatchPrediction(filter_name=self.name, predictions=tuple(predictions))


class PooledCountFilter(FrameFilter):
    """A count-only filter over globally pooled backbone features (OD-COF)."""

    family = "branch"
    name = "pooled_count_filter"
    class_aware = False

    def __init__(
        self,
        backbone: FeatureBackbone,
        count_head: PooledCountHead,
        grid: Grid,
        latency_ms: float = 0.0,
        clock: SimulatedClock | None = None,
    ) -> None:
        super().__init__(clock=clock)
        self.backbone = backbone
        self.count_head = count_head
        self.grid = grid
        self.latency_ms = latency_ms

    def predict(self, frame: Frame) -> FilterPrediction:
        self._charge()
        features = self.backbone.extract(frame.image)
        pooled = features.reshape(-1, features.shape[-1]).mean(axis=0)
        raw_count = self.count_head.estimate(pooled)
        # The COF filter has no notion of classes or locations: it reports a
        # single total-count estimate under the pseudo-class "object".
        class_counts = {"object": int(round(raw_count))}
        class_scores = {"object": raw_count}
        return FilterPrediction(
            frame_index=frame.index,
            filter_name=self.name,
            grid=self.grid,
            class_counts=class_counts,
            class_scores=class_scores,
            location_scores={},
            threshold=1.0,
            latency_ms=self.latency_ms,
        )

    def predict_batch(self, frames: Sequence[Frame]) -> BatchPrediction:
        """Vectorized count-only prediction over a batch of frames."""
        if not frames:
            return BatchPrediction(filter_name=self.name, predictions=())
        self._charge_batch(len(frames))
        images = np.stack([frame.image for frame in frames])
        features = self.backbone.extract_batch(images)
        n = features.shape[0]
        flat = features.reshape(n, -1, features.shape[-1])
        # One GEMM instead of a strided middle-axis mean (several times faster).
        ones = np.full((1, flat.shape[1]), 1.0)
        pooled = (ones @ flat)[:, 0, :] / flat.shape[1]
        predictions = []
        for position, frame in enumerate(frames):
            raw_count = self.count_head.estimate(pooled[position])
            class_counts = {"object": int(round(raw_count))}
            class_scores = {"object": raw_count}
            predictions.append(
                FilterPrediction(
                    frame_index=frame.index,
                    filter_name=self.name,
                    grid=self.grid,
                    class_counts=class_counts,
                    class_scores=class_scores,
                    location_scores={},
                    threshold=1.0,
                    latency_ms=self.latency_ms,
                )
            )
        return BatchPrediction(filter_name=self.name, predictions=tuple(predictions))
