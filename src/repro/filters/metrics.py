"""Filter accuracy metrics — exactly the quantities plotted in the paper's Figures 7–15.

* **Count accuracy** (Figure 7, Figures 8–11): the fraction of frames whose
  predicted count equals the true count exactly, within ±1, or within ±2.
* **Localisation F1** (Figures 12–15): per-class precision / recall / F1 of
  the thresholded grid prediction against the ground-truth occupancy grid,
  where a predicted cell counts as correct when a ground-truth cell of the
  same class lies within Manhattan distance 0, 1 or 2.

Ground truth is, as in the paper, the output of the reference detector
(Mask R-CNN), provided as an :class:`~repro.detection.annotation.AnnotationSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.detection.annotation import AnnotationSet
from repro.filters.base import FilterPrediction, FrameFilter
from repro.spatial.grid import GridMask
from repro.video.stream import VideoStream


# ----------------------------------------------------------------------
# Count metrics
# ----------------------------------------------------------------------
def count_accuracy(
    predicted: Sequence[int] | np.ndarray,
    actual: Sequence[int] | np.ndarray,
    tolerance: int = 0,
) -> float:
    """Fraction of frames where ``|predicted - actual| <= tolerance``."""
    predicted = np.asarray(predicted)
    actual = np.asarray(actual)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    if predicted.size == 0:
        return 0.0
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative: {tolerance}")
    return float(np.mean(np.abs(predicted - actual) <= tolerance))


@dataclass(frozen=True)
class CountAccuracyReport:
    """Count accuracy of one filter on one dataset, at all three tolerances."""

    filter_name: str
    dataset_name: str
    num_frames: int
    exact: float
    within_1: float
    within_2: float
    per_class_exact: Mapping[str, float] = field(default_factory=dict)
    per_class_within_1: Mapping[str, float] = field(default_factory=dict)
    per_class_within_2: Mapping[str, float] = field(default_factory=dict)
    mean_absolute_error: float = 0.0

    def as_row(self) -> dict[str, object]:
        """Flat dict representation for tabular output."""
        return {
            "filter": self.filter_name,
            "dataset": self.dataset_name,
            "frames": self.num_frames,
            "exact": round(self.exact, 4),
            "within_1": round(self.within_1, 4),
            "within_2": round(self.within_2, 4),
            "mae": round(self.mean_absolute_error, 4),
        }


# ----------------------------------------------------------------------
# Localisation metrics
# ----------------------------------------------------------------------
def localization_counts(
    predicted: GridMask, actual: GridMask, tolerance: int = 0
) -> tuple[int, int, int]:
    """``(true_positives, false_positives, false_negatives)`` at a Manhattan tolerance."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative: {tolerance}")
    actual_dilated = actual.dilated(tolerance) if tolerance else actual
    predicted_dilated = predicted.dilated(tolerance) if tolerance else predicted
    true_positives = int(predicted.intersection(actual_dilated).count)
    false_positives = int(predicted.count - true_positives)
    matched_actual = int(actual.intersection(predicted_dilated).count)
    false_negatives = int(actual.count - matched_actual)
    return true_positives, false_positives, false_negatives


def localization_f1(predicted: GridMask, actual: GridMask, tolerance: int = 0) -> float:
    """F1 of a single frame/class grid prediction (1.0 when both masks are empty)."""
    tp, fp, fn = localization_counts(predicted, actual, tolerance)
    if tp == 0 and fp == 0 and fn == 0:
        return 1.0
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class LocalizationReport:
    """Per-class localisation F1 of one filter on one dataset."""

    filter_name: str
    dataset_name: str
    num_frames: int
    per_class_f1: Mapping[str, float]
    per_class_f1_manhattan_1: Mapping[str, float]
    per_class_f1_manhattan_2: Mapping[str, float]
    micro_f1: float
    micro_f1_manhattan_1: float
    micro_f1_manhattan_2: float

    def as_rows(self) -> list[dict[str, object]]:
        rows = []
        for class_name in self.per_class_f1:
            rows.append(
                {
                    "filter": self.filter_name,
                    "dataset": self.dataset_name,
                    "class": class_name,
                    "f1": round(self.per_class_f1[class_name], 4),
                    "f1_m1": round(self.per_class_f1_manhattan_1[class_name], 4),
                    "f1_m2": round(self.per_class_f1_manhattan_2[class_name], 4),
                }
            )
        return rows


# ----------------------------------------------------------------------
# Evaluation drivers
# ----------------------------------------------------------------------
def _aligned_predictions(
    frame_filter: FrameFilter,
    stream: VideoStream,
    annotations: AnnotationSet,
) -> list[tuple[FilterPrediction, "object"]]:
    pairs = []
    for annotated in annotations:
        frame = stream.frame(annotated.frame_index)
        pairs.append((frame_filter.predict(frame), annotated))
    return pairs


def evaluate_count_filter(
    frame_filter: FrameFilter,
    stream: VideoStream,
    annotations: AnnotationSet,
    dataset_name: str | None = None,
    total_only: bool = False,
) -> CountAccuracyReport:
    """Evaluate a filter's count estimates against detector annotations.

    ``total_only=True`` evaluates only the total count (appropriate for the
    OD-COF filter which has no per-class output).
    """
    class_names = annotations.class_names
    predicted_totals: list[int] = []
    actual_totals: list[int] = []
    predicted_per_class: dict[str, list[int]] = {name: [] for name in class_names}
    actual_per_class: dict[str, list[int]] = {name: [] for name in class_names}

    for prediction, annotated in _aligned_predictions(frame_filter, stream, annotations):
        predicted_totals.append(prediction.total_count)
        actual_totals.append(annotated.total_count)
        if total_only:
            continue
        for name in class_names:
            predicted_per_class[name].append(prediction.count_of(name))
            actual_per_class[name].append(annotated.count_of(name))

    predicted_array = np.array(predicted_totals)
    actual_array = np.array(actual_totals)
    per_class_exact = {}
    per_class_1 = {}
    per_class_2 = {}
    if not total_only:
        for name in class_names:
            per_class_exact[name] = count_accuracy(
                predicted_per_class[name], actual_per_class[name], 0
            )
            per_class_1[name] = count_accuracy(
                predicted_per_class[name], actual_per_class[name], 1
            )
            per_class_2[name] = count_accuracy(
                predicted_per_class[name], actual_per_class[name], 2
            )
    mae = float(np.mean(np.abs(predicted_array - actual_array))) if predicted_array.size else 0.0
    return CountAccuracyReport(
        filter_name=frame_filter.name,
        dataset_name=dataset_name or annotations.stream_name,
        num_frames=len(annotations),
        exact=count_accuracy(predicted_array, actual_array, 0),
        within_1=count_accuracy(predicted_array, actual_array, 1),
        within_2=count_accuracy(predicted_array, actual_array, 2),
        per_class_exact=per_class_exact,
        per_class_within_1=per_class_1,
        per_class_within_2=per_class_2,
        mean_absolute_error=mae,
    )


def evaluate_localization(
    frame_filter: FrameFilter,
    stream: VideoStream,
    annotations: AnnotationSet,
    dataset_name: str | None = None,
    threshold: float | None = None,
) -> LocalizationReport:
    """Evaluate a filter's grid localisation against detector annotations.

    F1 is computed micro-averaged over frames (total TP / FP / FN per class
    across the whole test set), matching the paper's definition of counting
    true / false positives over all frames.
    """
    class_names = annotations.class_names
    grid = annotations.grid
    totals = {
        name: {tol: [0, 0, 0] for tol in (0, 1, 2)} for name in class_names
    }

    for prediction, annotated in _aligned_predictions(frame_filter, stream, annotations):
        for name in class_names:
            predicted_mask = prediction.location_mask(name, threshold=threshold)
            actual_mask = GridMask(grid=grid, values=annotated.grid_of(name))
            for tolerance in (0, 1, 2):
                tp, fp, fn = localization_counts(predicted_mask, actual_mask, tolerance)
                totals[name][tolerance][0] += tp
                totals[name][tolerance][1] += fp
                totals[name][tolerance][2] += fn

    def f1_from(tp: int, fp: int, fn: int) -> float:
        if tp == 0 and fp == 0 and fn == 0:
            return 1.0
        precision = tp / (tp + fp) if (tp + fp) else 0.0
        recall = tp / (tp + fn) if (tp + fn) else 0.0
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    per_class = {name: f1_from(*totals[name][0]) for name in class_names}
    per_class_1 = {name: f1_from(*totals[name][1]) for name in class_names}
    per_class_2 = {name: f1_from(*totals[name][2]) for name in class_names}

    def micro(tolerance: int) -> float:
        tp = sum(totals[name][tolerance][0] for name in class_names)
        fp = sum(totals[name][tolerance][1] for name in class_names)
        fn = sum(totals[name][tolerance][2] for name in class_names)
        return f1_from(tp, fp, fn)

    return LocalizationReport(
        filter_name=frame_filter.name,
        dataset_name=dataset_name or annotations.stream_name,
        num_frames=len(annotations),
        per_class_f1=per_class,
        per_class_f1_manhattan_1=per_class_1,
        per_class_f1_manhattan_2=per_class_2,
        micro_f1=micro(0),
        micro_f1_manhattan_1=micro(1),
        micro_f1_manhattan_2=micro(2),
    )
