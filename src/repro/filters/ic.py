"""IC filters: the image-classification family (Section II-A).

The paper adopts the first five convolution layers of VGG19 (pre-trained on
ImageNet), adds a global-average-pooling + fully-connected branch producing
per-class counts, and reads per-class *class-activation maps* off the same
branch to localise objects on a 56x56 grid.  Estimates:

* ``IC-CF``  — total object count (sum of the per-class counts);
* ``IC-CCF`` — per-class counts (the branch's output vector);
* ``IC-CLF`` — per-class location grids (thresholded activation maps).

Here the VGG19 trunk is replaced by the classification-style frozen feature
backbone (see DESIGN.md); the branch head is trained on detector annotations
exactly as in the paper.  The per-frame latency charged to the simulated
clock is the paper's measured 1.5 ms.

Both single-frame :meth:`~repro.filters.base.FrameFilter.predict` and the
vectorized :meth:`~repro.filters.base.FrameFilter.predict_batch` (inherited
from :class:`~repro.filters.branch.LinearBranchFilter`) are supported; the
batched path stacks the backbone and head computation across frames and is
what the batched query executor drives.
"""

from __future__ import annotations

from repro.cost import IC_BRANCH_MS, SimulatedClock
from repro.detection.backbone import FeatureBackbone, classification_backbone
from repro.filters.branch import DEFAULT_GRID_THRESHOLD, LinearBranchFilter
from repro.filters.heads import CountCalibration, GridScoringHead
from repro.spatial.grid import Grid


class ICFilter(LinearBranchFilter):
    """The IC filter: classification-backbone branch providing CF / CCF / CLF."""

    family = "IC"
    name = "ic_filter"

    def __init__(
        self,
        grid_head: GridScoringHead,
        count_calibration: CountCalibration,
        grid: Grid,
        backbone: FeatureBackbone | None = None,
        threshold: float = DEFAULT_GRID_THRESHOLD,
        latency_ms: float = IC_BRANCH_MS,
        clock: SimulatedClock | None = None,
    ) -> None:
        super().__init__(
            backbone=backbone or classification_backbone(grid.rows),
            grid_head=grid_head,
            count_calibration=count_calibration,
            grid=grid,
            threshold=threshold,
            latency_ms=latency_ms,
            clock=clock,
        )
