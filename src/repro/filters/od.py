"""OD filters: the object-detection family (Section II-B).

The paper branches off the first eight convolution layers of YOLOv2's
Darknet-19 backbone into a small network that predicts per-class counts and a
56x56 per-class occupancy grid (Figure 4), trained end-to-end with the masked
grid loss of equation (3).  A second, count-only branch (Figure 5 / Table I)
is trained exclusively to predict the total number of objects: the
``OD-COF`` filter.

Estimates mirror the IC family: ``OD-CF``, ``OD-CCF``, ``OD-CLF`` from the
main branch and ``OD-COF`` from the count-only branch.  The detection-style
backbone retains full spatial resolution, which is why OD filters localise
markedly better than IC filters (Figures 12–15) while remaining competitive
on counts.  Latencies follow the paper: 1.9 ms per frame for both branches.

Both filters inherit the vectorized
:meth:`~repro.filters.base.FrameFilter.predict_batch` implementation of
their linear-branch base classes, which the batched query executor uses to
amortise numpy call overhead across a chunk of frames.
"""

from __future__ import annotations

from repro.cost import OD_BRANCH_MS, OD_COF_MS, SimulatedClock
from repro.detection.backbone import FeatureBackbone, detection_backbone
from repro.filters.branch import (
    DEFAULT_GRID_THRESHOLD,
    LinearBranchFilter,
    PooledCountFilter,
)
from repro.filters.heads import CountCalibration, GridScoringHead, PooledCountHead
from repro.spatial.grid import Grid


class ODFilter(LinearBranchFilter):
    """The OD filter: detection-backbone branch providing CF / CCF / CLF."""

    family = "OD"
    name = "od_filter"

    def __init__(
        self,
        grid_head: GridScoringHead,
        count_calibration: CountCalibration,
        grid: Grid,
        backbone: FeatureBackbone | None = None,
        threshold: float = DEFAULT_GRID_THRESHOLD,
        latency_ms: float = OD_BRANCH_MS,
        clock: SimulatedClock | None = None,
    ) -> None:
        super().__init__(
            backbone=backbone or detection_backbone(grid.rows),
            grid_head=grid_head,
            count_calibration=count_calibration,
            grid=grid,
            threshold=threshold,
            latency_ms=latency_ms,
            clock=clock,
        )


class ODCountClassifier(PooledCountFilter):
    """The OD-COF filter: a count-only branch over pooled detection features."""

    family = "OD"
    name = "od_cof"

    def __init__(
        self,
        count_head: PooledCountHead,
        grid: Grid,
        backbone: FeatureBackbone | None = None,
        latency_ms: float = OD_COF_MS,
        clock: SimulatedClock | None = None,
    ) -> None:
        super().__init__(
            backbone=backbone or detection_backbone(grid.rows),
            count_head=count_head,
            grid=grid,
            latency_ms=latency_ms,
            clock=clock,
        )
