"""Plan-level (PL0xx) and concurrency pre-flight (CC0xx) analyzer tests.

The PL tests drive the real planner over trained filters so the dead/dup
detection is exercised against genuine ``CountCheck`` steps; the CC tests
use small module-level check classes that exhibit exactly one defect each.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import pytest

from repro.analysis import (
    AnalysisError,
    Severity,
    audit_cascade,
    audit_check,
    lint_plan,
    optimize_cascade,
    short_circuit_diagnostic,
)
from repro.query import (
    CascadeStep,
    FilterCascade,
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
)


@pytest.fixture(scope="module")
def filters(trained_od_filter, trained_od_cof):
    return {"od": trained_od_filter, "od_cof": trained_od_cof}


@pytest.fixture(scope="module")
def planner(filters):
    return QueryPlanner(filters, PlannerConfig(count_tolerance=1, location_dilation=1))


# ---------------------------------------------------------------------------
# PL001 / PL002 / PL003 golden tests
# ---------------------------------------------------------------------------


def test_pl001_duplicate_step(planner):
    query = QueryBuilder("dup").total_count().at_most(4).build()
    cascade = planner.plan(query, analyze=False)
    doubled = replace(cascade, steps=cascade.steps + cascade.steps)
    report = lint_plan(doubled)
    assert "PL001" in report.codes
    optimized, _ = optimize_cascade(doubled)
    assert len(optimized) == len(cascade)


def test_pl002_dead_step_at_tolerance(planner):
    # COUNT(car) >= 1 at tolerance 1 widens to predicted >= 0: always true.
    query = QueryBuilder("dead").count("car").at_least(1).build()
    cascade = planner.plan(query, analyze=False)
    report = lint_plan(cascade)
    assert "PL002" in report.codes
    assert all(d.severity is Severity.WARNING for d in report.diagnostics)


def test_pl002_not_flagged_at_zero_tolerance(filters):
    planner = QueryPlanner(filters, PlannerConfig(count_tolerance=0))
    query = QueryBuilder("live").count("car").at_least(1).build()
    cascade = planner.plan(query, analyze=False)
    assert "PL002" not in lint_plan(cascade).codes


def test_optimize_drops_dead_step_but_keeps_live_one(planner):
    query = (
        QueryBuilder("mixed")
        .count("car").at_least(1)   # dead at tolerance 1
        .total_count().at_most(4)   # AT_MOST can always reject
        .build()
    )
    raw = planner.plan(query, analyze=False)
    assert len(raw) == 2
    optimized, report = optimize_cascade(raw)
    assert "PL002" in report.codes
    assert len(optimized) == 1
    assert "COF" in optimized.steps[0].name  # the live total-count step


def test_optimize_never_empties_a_cascade(planner):
    # Every step is dead; the anchor rail keeps one so primary_filter works.
    query = QueryBuilder("all_dead").count("car").at_least(1).build()
    raw = planner.plan(query, analyze=False)
    optimized, report = optimize_cascade(raw)
    assert "PL002" in report.codes
    assert len(optimized) == 1
    assert optimized.primary_filter is not None


def test_hand_built_steps_are_never_touched(trained_od_filter):
    # No signature -> opaque: the analyzer must not reason about the lambda.
    cascade = FilterCascade(
        steps=[
            CascadeStep(
                name="opaque",
                frame_filter=trained_od_filter,
                check=lambda prediction: True,
            )
        ]
        * 2
    )
    report = lint_plan(cascade)
    assert report.codes == ()
    optimized, _ = optimize_cascade(cascade)
    assert len(optimized) == 2


def test_pl003_short_circuit_plan(planner):
    query = (
        QueryBuilder("impossible")
        .count("car").at_least(3)
        .count("car").at_most(1)
        .build()
    )
    cascade = planner.plan(query)
    assert cascade.provably_empty
    assert len(cascade) == 0
    assert cascade.describe() == "(provably empty)"
    codes = [d.code for d in cascade.diagnostics]
    assert "QA001" in codes and "PL003" in codes


def test_short_circuit_diagnostic_record():
    record = short_circuit_diagnostic("impossible")
    assert record.code == "PL003"
    assert record.severity is Severity.INFO
    assert "impossible" in record.message


def test_plan_strict_raises_on_contradiction(planner):
    query = (
        QueryBuilder("impossible")
        .count("car").at_least(3)
        .count("car").at_most(1)
        .build()
    )
    with pytest.raises(AnalysisError, match="QA001"):
        planner.plan(query, strict=True)


def test_plan_attaches_diagnostics_on_live_queries(planner):
    query = (
        QueryBuilder("mixed")
        .count("car").at_least(1)
        .total_count().at_most(4)
        .build()
    )
    cascade = planner.plan(query)
    assert not cascade.provably_empty
    assert "PL002" in [d.code for d in cascade.diagnostics]


# ---------------------------------------------------------------------------
# Concurrency pre-flight (CC0xx)
# ---------------------------------------------------------------------------


class _UnpicklableCheck:
    """Module-level class (passes CC002) whose instances cannot pickle."""

    def __init__(self):
        self.fn = lambda prediction: True  # lambdas in __dict__ defeat pickle

    def __call__(self, prediction):
        return self.fn(prediction)


@dataclass(frozen=True)
class _MutableContainerCheck:
    cache: list

    def __call__(self, prediction):
        return True


class _SelfMutatingCheck:
    def __call__(self, prediction):
        self.calls = getattr(self, "calls", 0) + 1
        return True


def _module_level_check(prediction):
    return True


def _one_step(trained_od_filter, check):
    return FilterCascade(
        steps=[CascadeStep(name="step", frame_filter=trained_od_filter, check=check)]
    )


def test_cc001_pickle_backstop(trained_od_filter):
    report = audit_cascade(_one_step(trained_od_filter, _UnpicklableCheck()))
    assert "CC001" in report.codes
    assert "CC002" not in report.codes  # the class itself is module-level


def test_cc002_lambda_check(trained_od_filter):
    report = audit_cascade(_one_step(trained_od_filter, lambda prediction: True))
    assert "CC002" in report.codes
    # CC002 already explains the failure; the pickle backstop is skipped.
    assert "CC001" not in report.codes


def test_cc002_closure_and_local_class():
    captured = 3

    def local_check(prediction):
        return prediction.count >= captured

    class LocalCheck:
        def __call__(self, prediction):
            return True

    assert any(d.code == "CC002" for d in audit_check(local_check, "closure"))
    assert any(d.code == "CC002" for d in audit_check(LocalCheck(), "local class"))
    assert audit_check(_module_level_check, "plain function") == []


def test_cc003_mutable_state(trained_od_filter):
    report = audit_cascade(_one_step(trained_od_filter, _MutableContainerCheck([])))
    assert "CC003" in report.codes
    assert report.ok  # warning severity: the step still ships, copied per worker


def test_cc004_call_mutates_self():
    findings = audit_check(_SelfMutatingCheck(), "mutator")
    assert any(d.code == "CC004" for d in findings)
    assert any("calls" in d.message for d in findings if d.code == "CC004")


def test_planner_built_cascade_is_worker_safe(planner):
    query = (
        QueryBuilder("mixed")
        .count("car").at_least(1)
        .total_count().at_most(4)
        .spatial("car").left_of("person")
        .build()
    )
    cascade = planner.plan(query)
    report = audit_cascade(cascade, strict=True)  # must not raise
    assert report.ok


def test_audit_cascade_strict_raises_before_any_worker(trained_od_filter):
    cascade = _one_step(trained_od_filter, lambda prediction: True)
    with pytest.raises(AnalysisError) as excinfo:
        audit_cascade(cascade, strict=True)
    assert any(d.code == "CC002" for d in excinfo.value.diagnostics)
