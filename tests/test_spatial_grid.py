"""Tests for the grid abstraction and grid masks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.spatial.geometry import Box, Point
from repro.spatial.grid import Grid, GridMask, cells_within_manhattan


@pytest.fixture()
def grid() -> Grid:
    return Grid(rows=8, cols=8, frame_width=80, frame_height=80)


def test_grid_validation():
    with pytest.raises(ValueError):
        Grid(rows=0, cols=8, frame_width=80, frame_height=80)
    with pytest.raises(ValueError):
        Grid(rows=8, cols=8, frame_width=0, frame_height=80)


def test_cell_of_point_and_cell_box(grid):
    assert grid.cell_of_point(Point(0, 0)) == (0, 0)
    assert grid.cell_of_point(Point(79, 79)) == (7, 7)
    assert grid.cell_of_point(Point(500, -3)) == (0, 7)  # clamped
    cell_box = grid.cell_box(2, 3)
    assert cell_box == Box(30, 20, 40, 30)
    assert grid.cell_center(0, 0) == Point(5, 5)
    with pytest.raises(IndexError):
        grid.cell_box(8, 0)


def test_cells_overlapping_box(grid):
    cells = grid.cells_overlapping_box(Box(5, 5, 25, 15))
    assert (0, 0) in cells and (0, 1) in cells and (0, 2) in cells
    assert (1, 0) in cells
    # min_coverage filters barely-touched cells: cell (0,0) is only 25% covered
    # by the box while cell (0,1) is 50% covered.
    strict = grid.cells_overlapping_box(Box(5, 5, 25, 15), min_coverage=0.4)
    assert (0, 1) in strict
    assert (0, 0) not in strict
    assert grid.cells_overlapping_box(Box(500, 500, 600, 600)) == []


def test_mask_from_boxes_and_set_algebra(grid):
    mask_a = grid.mask_from_boxes([Box(0, 0, 20, 20)])
    mask_b = grid.mask_from_boxes([Box(10, 10, 30, 30)])
    assert mask_a.count == 4 and mask_b.count == 4
    assert mask_a.union(mask_b).count == 7
    assert mask_a.intersection(mask_b).count == 1
    assert mask_a.difference(mask_b).count == 3
    assert bool(grid.empty_mask()) is False
    assert grid.empty_mask().centroid() is None


def test_mask_shape_validation(grid):
    with pytest.raises(ValueError):
        GridMask(grid=grid, values=np.zeros((3, 3), dtype=bool))
    other = Grid(rows=4, cols=4, frame_width=80, frame_height=80)
    with pytest.raises(ValueError):
        grid.empty_mask().union(other.empty_mask())


def test_mask_dilation(grid):
    values = np.zeros((8, 8), dtype=bool)
    values[4, 4] = True
    mask = GridMask(grid=grid, values=values)
    dilated = mask.dilated(1)
    assert dilated.count == 5  # the cell plus its 4 neighbours
    assert mask.dilated(0).count == 1
    corner = np.zeros((8, 8), dtype=bool)
    corner[0, 0] = True
    assert GridMask(grid=grid, values=corner).dilated(1).count == 3


def test_cells_within_manhattan():
    cells = cells_within_manhattan((2, 2), 1, 5, 5)
    assert set(cells) == {(2, 2), (1, 2), (3, 2), (2, 1), (2, 3)}
    assert cells_within_manhattan((0, 0), 2, 5, 5) == [
        (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 0),
    ]
    with pytest.raises(ValueError):
        cells_within_manhattan((0, 0), -1, 5, 5)


@given(
    st.integers(0, 7), st.integers(0, 7), st.integers(0, 3)
)
def test_manhattan_neighbourhood_property(row, col, distance):
    cells = cells_within_manhattan((row, col), distance, 8, 8)
    assert (row, col) in cells
    for r, c in cells:
        assert abs(r - row) + abs(c - col) <= distance
        assert 0 <= r < 8 and 0 <= c < 8
    assert len(set(cells)) == len(cells)


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=10), st.integers(0, 2))
def test_dilation_is_monotone(cells, distance):
    grid = Grid(rows=8, cols=8, frame_width=80, frame_height=80)
    values = np.zeros((8, 8), dtype=bool)
    for r, c in cells:
        values[r, c] = True
    mask = GridMask(grid=grid, values=values)
    dilated = mask.dilated(distance)
    # Dilation never removes cells and grows with distance.
    assert np.all(dilated.values[mask.values])
    assert dilated.count >= mask.count
    # The vectorized dilation equals the union of per-cell Manhattan balls.
    reference = np.zeros((8, 8), dtype=bool)
    for r, c in mask.occupied_cells():
        for rr, cc in cells_within_manhattan((r, c), distance, 8, 8):
            reference[rr, cc] = True
    assert np.array_equal(dilated.values, reference)
