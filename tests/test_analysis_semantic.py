"""Semantic analyzer tests: interval analysis and the QA0xx diagnostics.

Each QA code gets one golden test asserting it fires (by code, not message
text) on a minimal query that exhibits exactly that defect, plus the
surrounding report machinery (severities, strict raising, rendering).
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    AnalysisContext,
    AnalysisError,
    Interval,
    Severity,
    analyze_counts,
    combined_interval,
    interval_of,
    lint_query,
    subsumed_predicates,
)
from repro.query import QueryBuilder
from repro.query.ast import ComparisonOperator, CountPredicate
from repro.spatial.geometry import Box
from repro.spatial.regions import Region


# ---------------------------------------------------------------------------
# Interval analysis
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "operator, value, expected",
    [
        (ComparisonOperator.EQUAL, 2, Interval(2, 2)),
        (ComparisonOperator.AT_LEAST, 2, Interval(2, None)),
        (ComparisonOperator.AT_MOST, 2, Interval(0, 2)),
        (ComparisonOperator.GREATER, 2, Interval(3, None)),
        (ComparisonOperator.LESS, 2, Interval(0, 1)),
    ],
)
def test_interval_of_each_operator(operator, value, expected):
    assert interval_of(CountPredicate("car", operator, value)) == expected


def test_interval_intersection_and_emptiness():
    assert Interval(2, None).intersect(Interval(0, 4)) == Interval(2, 4)
    assert not Interval(2, 4).is_empty
    assert Interval(5, 4).is_empty
    assert not Interval(5, None).is_empty  # unbounded above is never empty


def test_combined_interval_of_conjunction():
    predicates = [
        CountPredicate("car", ComparisonOperator.AT_LEAST, 2),
        CountPredicate("car", ComparisonOperator.LESS, 5),
    ]
    assert combined_interval(predicates) == Interval(2, 4)


def test_cross_target_contradiction_detected():
    analysis = analyze_counts(
        [
            CountPredicate("car", ComparisonOperator.AT_LEAST, 3),
            CountPredicate(None, ComparisonOperator.AT_MOST, 2),
        ]
    )
    assert analysis.cross_empty
    assert analysis.is_empty
    assert not analysis.empty_targets  # each individual interval is fine


def test_subsumed_predicate_found():
    weak = CountPredicate("car", ComparisonOperator.AT_LEAST, 1)
    strong = CountPredicate("car", ComparisonOperator.AT_LEAST, 3)
    assert subsumed_predicates([weak, strong]) == [weak]
    # Predicates on different targets never subsume each other.
    other = CountPredicate("person", ComparisonOperator.AT_LEAST, 1)
    assert subsumed_predicates([weak, other]) == []


# ---------------------------------------------------------------------------
# Golden tests: one per QA code
# ---------------------------------------------------------------------------


def test_qa001_contradictory_counts():
    query = (
        QueryBuilder("impossible")
        .count("car").at_least(3)
        .count("car").at_most(1)
        .build()
    )
    report = lint_query(query)
    assert "QA001" in report.codes
    assert report.provably_empty
    assert not report.ok


def test_qa001_cross_target_contradiction():
    query = (
        QueryBuilder("over_capacity")
        .count("car").at_least(3)
        .total_count().at_most(2)
        .build()
    )
    report = lint_query(query)
    assert "QA001" in report.codes
    assert report.provably_empty


def test_qa002_subsumed_count_predicate():
    query = (
        QueryBuilder("redundant")
        .count("car").at_least(1)
        .count("car").at_least(3)
        .build()
    )
    report = lint_query(query)
    assert "QA002" in report.codes
    assert not report.provably_empty
    assert report.ok  # subsumption is a warning, not an error


def test_qa003_unknown_class_needs_vocabulary():
    query = QueryBuilder("typo").count("cra").at_least(1).build()
    context = AnalysisContext(class_names=("car", "person"))
    assert "QA003" in lint_query(query, context).codes
    # Without a vocabulary the check cannot run.
    assert "QA003" not in lint_query(query).codes


def test_qa004_unknown_color():
    query = QueryBuilder("paint").color("car", "chartreuse").build()
    report = lint_query(query)
    assert "QA004" in report.codes
    # A known color passes.
    ok = QueryBuilder("paint").color("car", "red").build()
    assert "QA004" not in lint_query(ok).codes


def test_qa005_window_larger_than_stream():
    query = QueryBuilder("wide").count("car").at_least(1).window(100).build()
    report = lint_query(query, AnalysisContext(num_frames=50))
    assert "QA005" in report.codes


def test_qa006_hopping_gap_without_stream_length():
    query = QueryBuilder("gappy").count("car").at_least(1).window(10, 25).build()
    report = lint_query(query)  # advance > size needs no stream facts
    assert "QA006" in report.codes


def test_qa006_tail_remainder_with_stream_length():
    query = QueryBuilder("tail").count("car").at_least(1).window(20, 20).build()
    report = lint_query(query, AnalysisContext(num_frames=50))
    assert "QA006" in report.codes
    # A stream the windows tile exactly is clean.
    exact = lint_query(query, AnalysisContext(num_frames=60))
    assert "QA006" not in exact.codes


def test_qa007_region_outside_frame():
    offscreen = Region(name="offscreen", box=Box(500.0, 500.0, 600.0, 600.0))
    query = QueryBuilder("nowhere").in_region("car", offscreen).at_least(1).build()
    report = lint_query(query, AnalysisContext(frame_width=448.0, frame_height=448.0))
    assert "QA007" in report.codes
    assert report.provably_empty


def test_qa008_region_demand_exceeds_count_cap():
    lot = Region(name="lot", box=Box(0.0, 0.0, 100.0, 100.0))
    query = (
        QueryBuilder("overfull")
        .in_region("car", lot).at_least(3)
        .count("car").at_most(1)
        .build()
    )
    report = lint_query(query)
    assert "QA008" in report.codes
    assert report.provably_empty


def test_qa009_predicate_needs_zero_forced_class():
    query = (
        QueryBuilder("ghost")
        .count("person").equals(0)
        .spatial("person").left_of("car")
        .build()
    )
    report = lint_query(query)
    assert "QA009" in report.codes
    assert report.provably_empty


def test_qa010_duplicate_predicate():
    query = (
        QueryBuilder("twice")
        .count("car").at_least(1)
        .count("car").at_least(1)
        .build()
    )
    report = lint_query(query)
    assert "QA010" in report.codes
    # The pair is also mutually subsumed.
    assert "QA002" in report.codes


# ---------------------------------------------------------------------------
# Report machinery
# ---------------------------------------------------------------------------


def test_severities_follow_the_registry():
    query = (
        QueryBuilder("mixed")
        .count("car").at_least(3)
        .count("car").at_most(1)
        .build()
    )
    report = lint_query(query)
    assert all(d.severity is Severity.ERROR for d in report.errors)
    assert {d.code for d in report.errors} == {"QA001"}


def test_strict_raises_analysis_error_with_diagnostics():
    query = (
        QueryBuilder("impossible")
        .count("car").at_least(3)
        .count("car").at_most(1)
        .build()
    )
    with pytest.raises(AnalysisError) as excinfo:
        lint_query(query, strict=True)
    assert isinstance(excinfo.value, ValueError)
    assert "QA001" in str(excinfo.value)
    assert any(d.code == "QA001" for d in excinfo.value.diagnostics)


def test_strict_does_not_raise_on_warnings_only():
    query = (
        QueryBuilder("redundant")
        .count("car").at_least(1)
        .count("car").at_least(3)
        .build()
    )
    report = lint_query(query, strict=True)  # QA002 is warning-severity
    assert "QA002" in report.codes


def test_clean_query_reports_nothing():
    query = (
        QueryBuilder("clean")
        .count("car").at_least(1)
        .total_count().at_most(4)
        .build()
    )
    context = AnalysisContext(
        class_names=("car", "person"), frame_width=448.0, frame_height=448.0, num_frames=50
    )
    report = lint_query(query, context, strict=True)
    assert report.codes == ()
    assert report.ok
    assert not report.provably_empty
    assert report.render() == "no findings"


def test_report_render_and_merge():
    empty = lint_query(
        QueryBuilder("a").count("car").at_least(3).count("car").at_most(1).build()
    )
    warn = lint_query(
        QueryBuilder("b").count("car").at_least(1).count("car").at_least(3).build()
    )
    merged = warn.merged_with(empty)
    assert merged.provably_empty  # either side's emptiness survives the merge
    assert set(merged.codes) == {"QA001", "QA002"}
    rendered = merged.render()
    assert "QA001" in rendered and "error" in rendered


def test_context_for_stream_extracts_facts(tiny_jackson):
    context = AnalysisContext.for_stream(tiny_jackson.test)
    assert context.num_frames == len(tiny_jackson.test)
    assert context.class_names is not None
    assert "car" in context.class_names
    assert context.frame_width and context.frame_height
