"""Integration tests: filter training, prediction and evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import IC_BRANCH_MS, OD_BRANCH_MS, SimulatedClock
from repro.filters import (
    calibrate_threshold,
    count_accuracy,
    evaluate_count_filter,
    evaluate_localization,
    localization_f1,
)
from repro.filters.base import CountTolerance
from repro.filters.metrics import localization_counts
from repro.spatial.grid import Grid, GridMask


def test_count_accuracy_metric():
    predicted = [1, 2, 3, 5]
    actual = [1, 3, 3, 9]
    assert count_accuracy(predicted, actual, 0) == pytest.approx(0.5)
    assert count_accuracy(predicted, actual, 1) == pytest.approx(0.75)
    assert count_accuracy(predicted, actual, 4) == pytest.approx(1.0)
    assert count_accuracy([], [], 0) == 0.0
    with pytest.raises(ValueError):
        count_accuracy([1], [1, 2], 0)
    with pytest.raises(ValueError):
        count_accuracy([1], [1], -1)


def test_localization_f1_metric():
    grid = Grid(rows=6, cols=6, frame_width=60, frame_height=60)
    truth = np.zeros((6, 6), dtype=bool)
    truth[2, 2] = True
    predicted_exact = GridMask(grid=grid, values=truth.copy())
    assert localization_f1(predicted_exact, GridMask(grid=grid, values=truth)) == 1.0
    shifted = np.zeros((6, 6), dtype=bool)
    shifted[2, 3] = True
    predicted_shifted = GridMask(grid=grid, values=shifted)
    assert localization_f1(predicted_shifted, GridMask(grid=grid, values=truth), 0) == 0.0
    assert localization_f1(predicted_shifted, GridMask(grid=grid, values=truth), 1) == 1.0
    # Both empty counts as perfect.
    empty = grid.empty_mask()
    assert localization_f1(empty, empty) == 1.0
    tp, fp, fn = localization_counts(predicted_shifted, GridMask(grid=grid, values=truth), 0)
    assert (tp, fp, fn) == (0, 1, 1)


def test_trained_od_filter_predicts_reasonably(trained_od_filter, tiny_jackson, jackson_test_annotations):
    report = evaluate_count_filter(
        trained_od_filter, tiny_jackson.test, jackson_test_annotations
    )
    assert report.num_frames == len(jackson_test_annotations)
    assert report.within_1 >= 0.7
    assert 0.0 <= report.exact <= report.within_1 <= report.within_2 <= 1.0
    localization = evaluate_localization(
        trained_od_filter, tiny_jackson.test, jackson_test_annotations
    )
    assert localization.micro_f1_manhattan_1 >= localization.micro_f1


def test_prediction_contents(trained_od_filter, tiny_jackson):
    frame = tiny_jackson.test.frame(3)
    prediction = trained_od_filter.predict(frame)
    assert prediction.frame_index == 3
    assert prediction.total_count == sum(prediction.class_counts.values())
    assert set(prediction.location_scores) == set(tiny_jackson.class_names)
    mask = prediction.location_mask("car")
    assert mask.grid.shape == (56, 56)
    dilated = prediction.location_mask("car", dilation=1)
    assert dilated.count >= mask.count
    assert prediction.location_mask("unknown-class").count == 0
    # Tolerance helpers used by the query planner.
    car_count = prediction.count_of("car")
    assert prediction.count_matches("car", car_count, CountTolerance.EXACT)
    assert prediction.count_matches("car", car_count + 1, CountTolerance.WITHIN_1)
    assert prediction.count_at_least("car", car_count, CountTolerance.EXACT)


def test_filters_charge_their_latency(trained_od_filter, trained_ic_filter, tiny_jackson):
    clock = SimulatedClock()
    trained_od_filter.clock = clock
    trained_ic_filter.clock = clock
    try:
        trained_od_filter.predict(tiny_jackson.test.frame(0))
        trained_ic_filter.predict(tiny_jackson.test.frame(0))
    finally:
        trained_od_filter.clock = None
        trained_ic_filter.clock = None
    assert clock.elapsed_ms == pytest.approx(OD_BRANCH_MS + IC_BRANCH_MS)


def test_od_cof_reports_total_count_only(trained_od_cof, tiny_jackson, jackson_test_annotations):
    prediction = trained_od_cof.predict(tiny_jackson.test.frame(0))
    assert list(prediction.class_counts) == ["object"]
    assert prediction.location_scores == {}
    report = evaluate_count_filter(
        trained_od_cof, tiny_jackson.test, jackson_test_annotations, total_only=True
    )
    assert report.within_2 >= 0.6


def test_ic_and_od_filters_share_interface(trained_ic_filter, trained_od_filter, tiny_jackson):
    frame = tiny_jackson.test.frame(10)
    for frame_filter in (trained_ic_filter, trained_od_filter):
        prediction = frame_filter.predict(frame)
        assert prediction.filter_name == frame_filter.name
        assert prediction.latency_ms == frame_filter.latency_ms
    assert trained_ic_filter.family == "IC"
    assert trained_od_filter.family == "OD"


def test_threshold_calibration(trained_od_filter, tiny_jackson, jackson_test_annotations):
    calibration = calibrate_threshold(
        trained_od_filter,
        tiny_jackson.test,
        jackson_test_annotations,
        thresholds=(0.1, 0.2, 0.4),
    )
    assert calibration.best_threshold in (0.1, 0.2, 0.4)
    assert len(calibration.as_rows()) == 3
    assert max(calibration.micro_f1) == calibration.best_f1
    with pytest.raises(ValueError):
        calibrate_threshold(
            trained_od_filter, tiny_jackson.test, jackson_test_annotations, thresholds=()
        )


def test_trainer_annotations_are_cached(jackson_trainer):
    first = jackson_trainer.annotations()
    second = jackson_trainer.annotations()
    assert first is second
    assert len(first) > 0
