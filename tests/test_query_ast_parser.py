"""Tests for the query data model, builder and SQL-like parser."""

from __future__ import annotations

import pytest

from repro.query import ParseError, QueryBuilder, parse_query
from repro.query.ast import (
    ColorPredicate,
    ComparisonOperator,
    CountPredicate,
    Query,
    RegionPredicate,
    SpatialPredicate,
    WindowSpec,
)
from repro.spatial.regions import Quadrant, quadrant_region
from repro.spatial.relations import Direction


def test_comparison_operator():
    assert ComparisonOperator.EQUAL.compare(2, 2)
    assert ComparisonOperator.AT_LEAST.compare(3, 2)
    assert not ComparisonOperator.AT_MOST.compare(3, 2)


def test_predicate_validation_and_description():
    with pytest.raises(ValueError):
        CountPredicate("car", ComparisonOperator.EQUAL, -1)
    predicate = CountPredicate(None, ComparisonOperator.AT_LEAST, 3)
    assert "objects" in predicate.describe()
    spatial = SpatialPredicate("car", "bus", Direction.LEFT_OF)
    assert "left_of" in spatial.describe()
    region = RegionPredicate("person", quadrant_region(Quadrant.LOWER_LEFT, 100, 100))
    assert "lower_left" in region.describe()
    assert "red" in ColorPredicate("car", "red").describe()


def test_query_introspection():
    query = (
        QueryBuilder("q")
        .count("car").equals(1)
        .count().at_least(2)
        .spatial("car").left_of("bus")
        .in_quadrant("person", Quadrant.LOWER_LEFT, 100, 100).at_least(1)
        .color("car", "red")
        .window(100, 50)
        .build()
    )
    assert len(query.count_predicates) == 2
    assert len(query.spatial_predicates) == 1
    assert len(query.region_predicates) == 1
    assert len(query.color_predicates) == 1
    assert query.has_spatial_constraints
    assert set(query.referenced_classes) == {"car", "bus", "person"}
    assert query.window == WindowSpec(100, 50)
    assert "q:" in query.describe()
    assert "HOPPING (SIZE 100, ADVANCE BY 50)" in query.describe()
    assert not WindowSpec(100, 50).is_tumbling
    tumbling = WindowSpec(100, 100)
    assert tumbling.is_tumbling
    assert tumbling.describe() == "TUMBLING (SIZE 100)"
    with pytest.raises(ValueError):
        Query(predicates=())
    with pytest.raises(ValueError):
        WindowSpec(0, 5)


def test_builder_produces_expected_predicates():
    query = QueryBuilder("b").count("car").at_most(3).spatial("bus").above("car").build()
    count = query.count_predicates[0]
    assert count.operator is ComparisonOperator.AT_MOST and count.value == 3
    spatial = query.spatial_predicates[0]
    assert spatial.subject_class == "bus"
    assert spatial.direction is Direction.ABOVE


def test_parse_paper_intro_query():
    text = """
    SELECT cameraID, frameID,
        C1(F1(vehBox1)) AS vehType1,
        C1(F1(vehBox2)) AS vehType2,
        C2(F2(vehBox1)) AS vehColor
    FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1, vehBox2 USING VehDetector)
    WHERE vehType1 = car AND vehColor = red AND vehType2 = truck
        AND (ORDER(vehType1, vehType2) = RIGHT)
    """
    query = parse_query(text, name="intro")
    classes = {p.class_name: p for p in query.count_predicates}
    assert classes["car"].operator is ComparisonOperator.AT_LEAST
    assert classes["truck"].value == 1
    assert query.color_predicates[0] == ColorPredicate("car", "red")
    spatial = query.spatial_predicates[0]
    # ORDER(a, b) = RIGHT means the truck is at the right of the car.
    assert spatial.subject_class == "car"
    assert spatial.reference_class == "truck"
    assert spatial.direction is Direction.LEFT_OF
    assert query.aliases["vehType1"] == "car"


def test_parse_window_and_shorthand_predicates():
    text = """
    SELECT cameraID, count(frameID)
    FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)
    WHERE COUNT(car) >= 2 AND COUNT(*) <= 10 AND INSIDE(person, LOWER_LEFT) >= 1
        AND ORDER(car, bus) = LEFT
    WINDOW HOPPING (SIZE 5000, ADVANCE BY 5000)
    """
    query = parse_query(text, frame_width=200, frame_height=200)
    assert query.window == WindowSpec(5000, 5000)
    counts = {p.class_name: p for p in query.count_predicates}
    assert counts["car"].value == 2
    assert counts[None].operator is ComparisonOperator.AT_MOST
    region = query.region_predicates[0]
    assert region.class_name == "person"
    assert region.region.box.x_max == pytest.approx(100)
    spatial = query.spatial_predicates[0]
    assert spatial.direction is Direction.RIGHT_OF  # ORDER(...)=LEFT means car right of bus


@pytest.mark.parametrize("window_position", ["before_where", "after_where"])
def test_parse_window_clause_in_either_position(window_position):
    """Regression: WINDOW before WHERE used to garble the WHERE slice.

    The WHERE split was located in the pre-window-removal text but applied to
    the post-removal text, shifting the clause boundary by the length of the
    WINDOW clause and failing with "no recognisable predicates".
    """
    window = "WINDOW HOPPING (SIZE 100, ADVANCE BY 50)"
    where = "WHERE COUNT(car) >= 1 AND ORDER(car, bus) = RIGHT"
    clauses = (
        f"{window} {where}" if window_position == "before_where" else f"{where} {window}"
    )
    text = (
        "SELECT cameraID, frameID "
        "FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector) "
        f"{clauses}"
    )
    query = parse_query(text, name="windowed")
    assert query.window == WindowSpec(100, 50)
    counts = {p.class_name: p for p in query.count_predicates}
    assert counts["car"].value == 1
    spatial = query.spatial_predicates[0]
    assert spatial.subject_class == "car"
    assert spatial.reference_class == "bus"
    assert spatial.direction is Direction.LEFT_OF


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_query("")
    with pytest.raises(ParseError):
        parse_query("DELETE FROM video WHERE x = 1")
    with pytest.raises(ParseError):
        parse_query("SELECT a FROM (PROCESS v PRODUCE a USING d)")  # no WHERE
    with pytest.raises(ParseError):
        parse_query(
            "SELECT a FROM (PROCESS v PRODUCE a USING d) WHERE something %% weird"
        )
    with pytest.raises(ParseError):
        parse_query(
            "SELECT C1(F1(b)) AS t FROM (PROCESS v PRODUCE b USING d) "
            "WHERE INSIDE(car, MIDDLE) >= 1"
        )
    # Color constraint without a class constraint for the same box.
    with pytest.raises(ParseError):
        parse_query(
            "SELECT C2(F2(box1)) AS vehColor FROM (PROCESS v PRODUCE box1 USING d) "
            "WHERE vehColor = red"
        )


def test_strict_comparison_operators():
    assert ComparisonOperator.GREATER.compare(3, 2)
    assert not ComparisonOperator.GREATER.compare(2, 2)
    assert ComparisonOperator.LESS.compare(1, 2)
    assert not ComparisonOperator.LESS.compare(2, 2)
    assert ComparisonOperator.GREATER.value == ">"
    assert ComparisonOperator.LESS.value == "<"


def test_parse_strict_comparisons():
    """Regression: ``COUNT(car) > 2`` / ``INSIDE(...) < 1`` used to raise ParseError."""
    text = """
    SELECT cameraID, frameID
    FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)
    WHERE COUNT(car) > 2 AND COUNT(*) < 10 AND INSIDE(person, LOWER_LEFT) < 1
    """
    query = parse_query(text, frame_width=200, frame_height=200)
    counts = {p.class_name: p for p in query.count_predicates}
    assert counts["car"].operator is ComparisonOperator.GREATER
    assert counts["car"].value == 2
    assert counts[None].operator is ComparisonOperator.LESS
    assert counts[None].value == 10
    region = query.region_predicates[0]
    assert region.operator is ComparisonOperator.LESS
    assert region.value == 1
    # Non-strict operators still parse as before (">=" is not read as ">").
    relaxed = parse_query(
        text.replace("> 2", ">= 2").replace("< 10", "<= 10"),
        frame_width=200,
        frame_height=200,
    )
    relaxed_counts = {p.class_name: p for p in relaxed.count_predicates}
    assert relaxed_counts["car"].operator is ComparisonOperator.AT_LEAST
    assert relaxed_counts[None].operator is ComparisonOperator.AT_MOST


def test_builder_strict_count_clauses():
    query = (
        QueryBuilder("strict")
        .count("car").greater_than(2)
        .count().less_than(10)
        .build()
    )
    car, total = query.count_predicates
    assert car.operator is ComparisonOperator.GREATER and car.value == 2
    assert total.class_name is None
    assert total.operator is ComparisonOperator.LESS and total.value == 10
