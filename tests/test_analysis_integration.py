"""End-to-end analyzer integration: parser spans, lint threading, the
provably-empty zero-frame short circuit, elimination parity, and the
process-backend pre-flight.

The headline guarantees under test:

* a provably-contradictory query executes with ZERO frames rendered (counted
  by wrapping ``stream.frame``), alone and inside ``execute_many``;
* analyzer-driven step elimination is invisible in the results — the
  optimized plan matches the raw ``analyze=False`` plan frame for frame;
* the process backend rejects unpicklable cascades *before* any worker
  spawns, with structured CC diagnostics attached.
"""

from __future__ import annotations

import warnings

import pytest

from repro.analysis import (
    AnalysisError,
    AnalysisWarning,
    WindowTailDropWarning,
)
from repro.aggregates.windows import HoppingWindow
from repro.detection import ReferenceDetector
from repro.query import (
    CascadeStep,
    FilterCascade,
    ParallelConfig,
    ParseError,
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    parse_query,
)


@pytest.fixture(scope="module")
def planner(trained_od_filter, trained_od_cof):
    filters = {"od": trained_od_filter, "od_cof": trained_od_cof}
    return QueryPlanner(filters, PlannerConfig(count_tolerance=1, location_dilation=1))


@pytest.fixture(scope="module")
def executor(tiny_jackson):
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=77)
    return StreamingQueryExecutor(detector)


def impossible_query(name="impossible"):
    return (
        QueryBuilder(name)
        .count("car").at_least(3)
        .count("car").at_most(1)
        .build()
    )


def live_query(name="live"):
    return (
        QueryBuilder(name)
        .count("car").at_least(1)
        .total_count().at_most(4)
        .build()
    )


@pytest.fixture
def render_counter(tiny_jackson, monkeypatch):
    """Counts every ``stream.frame`` call on the shared test stream."""
    stream = tiny_jackson.test
    rendered = []
    original = stream.frame

    def counting_frame(index):
        rendered.append(index)
        return original(index)

    monkeypatch.setattr(stream, "frame", counting_frame)
    return rendered


# ---------------------------------------------------------------------------
# Parser spans and syntax strictness
# ---------------------------------------------------------------------------


def test_parsed_predicates_carry_spans():
    query = parse_query(
        """
        SELECT cameraID, frameID
        FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)
        WHERE COUNT(car) >= 2 AND COUNT(*) <= 4
        """
    )
    assert query.source is not None
    assert len(query.predicates) == 2
    for predicate in query.predicates:
        assert predicate.span is not None
        excerpt = predicate.span.excerpt(query.source)
        assert "COUNT" in excerpt.upper()


def test_parser_rejects_trailing_garbage():
    with pytest.raises(ParseError, match="unexpected text"):
        parse_query(
            "SELECT cameraID, frameID "
            "FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector) "
            "WHERE COUNT(car) >= 1 banana"
        )


def test_parser_rejects_duplicate_window_clause():
    with pytest.raises(ParseError, match="duplicate WINDOW"):
        parse_query(
            "SELECT cameraID, frameID "
            "FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector) "
            "WINDOW HOPPING (SIZE 10, ADVANCE BY 10) "
            "WINDOW HOPPING (SIZE 20, ADVANCE BY 20) "
            "WHERE COUNT(car) >= 1"
        )


def test_parse_query_lint_warns_and_strict_raises():
    text = (
        "SELECT cameraID, frameID "
        "FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector) "
        "WHERE COUNT(car) >= 3 AND COUNT(car) <= 1"
    )
    with pytest.warns(AnalysisWarning, match="QA001"):
        parse_query(text, lint=True)
    with pytest.raises(AnalysisError, match="QA001"):
        parse_query(text, strict=True)


def test_builder_lint_warns_and_strict_raises():
    builder = QueryBuilder("impossible").count("car").at_least(3).count("car").at_most(1)
    with pytest.warns(AnalysisWarning, match="QA001"):
        builder.build(lint=True)
    with pytest.raises(AnalysisError, match="QA001"):
        builder.build(strict=True)
    # Default build stays silent and permissive (back-compat).
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        builder.build()


# ---------------------------------------------------------------------------
# Window tail-drop runtime warning (QA006's runtime counterpart)
# ---------------------------------------------------------------------------


def test_hopping_window_warns_on_tail_drop():
    window = HoppingWindow(size=20, advance=20)
    with pytest.warns(WindowTailDropWarning, match=r"trailing 10 frame"):
        bounds = list(window.windows_over(50))
    assert [(b.start, b.stop) for b in bounds] == [(0, 20), (20, 40)]


def test_hopping_window_silent_when_partial_included():
    window = HoppingWindow(size=20, advance=20)
    with warnings.catch_warnings():
        warnings.simplefilter("error", WindowTailDropWarning)
        full = list(window.windows_over(50, include_partial=True))
        exact = list(window.windows_over(40))
    assert len(full) == 3  # the trailing [40, 50) partial window is kept
    assert len(exact) == 2


# ---------------------------------------------------------------------------
# Provably-empty short circuit: zero frames rendered
# ---------------------------------------------------------------------------


def test_provably_empty_query_renders_zero_frames(
    planner, executor, tiny_jackson, render_counter
):
    query = impossible_query()
    cascade = planner.plan(query)
    assert cascade.provably_empty

    result = executor.execute(query, tiny_jackson.test, cascade)

    assert render_counter == []
    assert result.matched_frames == ()
    assert result.stats.frames_scanned == 0
    assert result.stats.detector_invocations == 0
    assert result.stats.filter_invocations == 0


def test_provably_empty_windowed_query_reports_empty_windows(
    planner, executor, tiny_jackson, render_counter
):
    query = (
        QueryBuilder("impossible_windowed")
        .count("car").at_least(3)
        .count("car").at_most(1)
        .window(10)
        .build()
    )
    cascade = planner.plan(query)
    result = executor.execute(query, tiny_jackson.test, cascade)

    assert render_counter == []
    assert result.windows is not None
    assert len(result.windows) == 5  # 50 frames / size 10
    assert all(window.num_matches == 0 for window in result.windows)


def test_execute_many_skips_only_the_empty_query(
    planner, executor, tiny_jackson, render_counter
):
    empty, live = impossible_query(), live_query()
    cascades = [planner.plan(q) for q in (empty, live)]

    solo = executor.execute(live, tiny_jackson.test, cascades[1])
    render_counter.clear()
    multi = executor.execute_many([empty, live], tiny_jackson.test, cascades)

    empty_result = next(r for r in multi if r.query_name == "impossible")
    live_result = next(r for r in multi if r.query_name == "live")
    assert empty_result.matched_frames == ()
    assert empty_result.stats.frames_scanned == 0
    assert live_result.matched_frames == solo.matched_frames
    # The shared scan decodes each frame for the live query only, once.
    assert len(render_counter) == len(tiny_jackson.test)


def test_execute_strict_raises_before_rendering(
    planner, executor, tiny_jackson, render_counter
):
    query = impossible_query()
    with pytest.raises(AnalysisError, match="QA001"):
        executor.execute(query, tiny_jackson.test, planner.plan(query), strict=True)
    assert render_counter == []


# ---------------------------------------------------------------------------
# Elimination parity: the optimized plan is invisible in the results
# ---------------------------------------------------------------------------


def test_eliminated_plan_matches_raw_plan(planner, executor, tiny_jackson):
    query = live_query("parity")
    raw = planner.plan(query, analyze=False)
    optimized = planner.plan(query)
    assert len(optimized) < len(raw)  # the dead CCF-1 step is gone

    raw_result = executor.execute(query, tiny_jackson.test, raw)
    opt_result = executor.execute(query, tiny_jackson.test, optimized)

    assert opt_result.matched_frames == raw_result.matched_frames
    assert opt_result.stats.frames_scanned == raw_result.stats.frames_scanned
    assert opt_result.stats.detector_invocations == raw_result.stats.detector_invocations
    assert opt_result.stats.filter_invocations < raw_result.stats.filter_invocations


def test_eliminated_windowed_plan_matches_raw_plan(planner, executor, tiny_jackson):
    query = (
        QueryBuilder("parity_windowed")
        .count("car").at_least(1)
        .total_count().at_most(4)
        .window(10)
        .build()
    )
    raw_result = executor.execute(
        query, tiny_jackson.test, planner.plan(query, analyze=False)
    )
    opt_result = executor.execute(query, tiny_jackson.test, planner.plan(query))

    assert opt_result.matched_frames == raw_result.matched_frames
    assert [w.bounds for w in opt_result.windows] == [w.bounds for w in raw_result.windows]
    assert [w.num_matches for w in opt_result.windows] == [
        w.num_matches for w in raw_result.windows
    ]


# ---------------------------------------------------------------------------
# Process-backend pre-flight
# ---------------------------------------------------------------------------


def test_process_backend_preflight_reports_cc_codes(
    executor, tiny_jackson, trained_od_filter
):
    cascade = FilterCascade(
        steps=[
            CascadeStep(
                name="lambda-step",
                frame_filter=trained_od_filter,
                check=lambda prediction: True,
            )
        ]
    )
    with pytest.raises(AnalysisError) as excinfo:
        executor.execute(
            live_query("unpicklable"),
            tiny_jackson.test,
            cascade,
            parallel=ParallelConfig(num_workers=2, backend="process"),
        )
    assert "thread" in str(excinfo.value)
    assert any(d.code == "CC002" for d in excinfo.value.diagnostics)
