"""Parity and shared-work tests for multi-query execution (``execute_many``).

The shared engine must be a pure optimisation: every query's result —
matched frames, windows, work counters, attributed simulated cost — is
identical to running that query alone with :meth:`execute`, while the shared
scan itself runs the detector at most once per frame (on the union of all
queries' cascade survivors) and evaluates each shared filter at most once
per frame.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import count_filter_frames
from repro.cost import SimulatedClock
from repro.detection import ReferenceDetector
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    brute_force_execute,
    merge_cascade_steps,
    parse_query,
)

WINDOWED_TEXT = """
SELECT cameraID, frameID
FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)
WINDOW HOPPING (SIZE 20, ADVANCE BY 10)
WHERE COUNT(car) >= 1
"""


def _executor(class_names, seed=77):
    return StreamingQueryExecutor(ReferenceDetector(class_names=class_names, seed=seed))


@pytest.fixture(scope="module")
def workload(trained_od_filter):
    """Four queries sharing the OD filter: three un-windowed plus one windowed."""
    planner = QueryPlanner({"od": trained_od_filter}, PlannerConfig(count_tolerance=1))
    queries = [
        QueryBuilder("cars_eq1").count("car").equals(1).build(),
        QueryBuilder("car_and_person")
        .count("car").at_least(1)
        .count("person").at_least(1)
        .build(),
        QueryBuilder("car_left_of_person")
        .count("car").equals(1)
        .count("person").equals(1)
        .spatial("car").left_of("person")
        .build(),
        parse_query(WINDOWED_TEXT, name="windowed_cars"),
    ]
    return queries, [planner.plan(query) for query in queries]


@pytest.mark.parametrize("batch_size", [None, 1, 7, 64])
def test_execute_many_parity_with_individual_execute(workload, tiny_jackson, batch_size):
    queries, cascades = workload
    multi = _executor(tiny_jackson.class_names).execute_many(
        queries, tiny_jackson.test, cascades, batch_size=batch_size
    )
    assert len(multi) == len(queries)
    for query, cascade, shared_result in zip(queries, cascades, multi):
        solo = _executor(tiny_jackson.class_names).execute(
            query, tiny_jackson.test, cascade, batch_size=batch_size
        )
        assert shared_result.query_name == query.name
        assert shared_result.matched_frames == solo.matched_frames
        assert shared_result.stats.frames_scanned == solo.stats.frames_scanned
        assert shared_result.stats.frames_passed_filters == solo.stats.frames_passed_filters
        assert shared_result.stats.detector_invocations == solo.stats.detector_invocations
        assert shared_result.stats.filter_invocations == solo.stats.filter_invocations
        # Attributed cost = what the query would have paid standalone.
        assert (
            shared_result.stats.simulated_cost.per_component_calls
            == solo.stats.simulated_cost.per_component_calls
        )
        assert shared_result.stats.simulated_cost.total_ms == pytest.approx(
            solo.stats.simulated_cost.total_ms
        )
        if query.window is not None:
            assert shared_result.windows is not None
            assert [
                (w.bounds, w.matched_frames, w.stats) for w in shared_result.windows
            ] == [(w.bounds, w.matched_frames, w.stats) for w in solo.windows]
        else:
            assert shared_result.windows is None


def test_detector_runs_once_per_union_survivor(workload, tiny_jackson):
    queries, cascades = workload
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=77)
    detected_frames: list[int] = []
    original_detect = detector.detect

    def counting_detect(frame):
        detected_frames.append(frame.index)
        return original_detect(frame)

    detector.detect = counting_detect
    multi = StreamingQueryExecutor(detector).execute_many(
        queries, tiny_jackson.test, cascades, batch_size=16
    )
    # At most one detector run per frame, exactly one per union survivor.
    assert len(detected_frames) == len(set(detected_frames))
    assert len(detected_frames) == multi.shared.detector_invocations
    detector_calls = multi.shared.cost.shared.per_component_calls.get("mask_rcnn", 0)
    assert detector_calls == multi.shared.detector_invocations
    # Every matched frame of every query was verified by the shared detector,
    # and the per-query attributions sum to at least the shared work.
    union_matched = {index for result in multi for index in result.matched_frames}
    assert union_matched <= set(detected_frames)
    per_query_survivor_totals = sum(
        result.stats.detector_invocations for result in multi.results
    )
    assert multi.shared.detector_invocations <= per_query_survivor_totals


def test_shared_filter_evaluated_at_most_once_per_frame(
    workload, tiny_jackson, trained_od_filter
):
    queries, cascades = workload
    counts: dict[int, int] = {}
    restore = count_filter_frames(trained_od_filter, counts)
    try:
        multi = _executor(tiny_jackson.class_names).execute_many(
            queries, tiny_jackson.test, cascades, batch_size=8
        )
    finally:
        restore()
    # Four queries, five cascade steps over one filter — yet no frame was
    # evaluated more than once.
    assert counts, "the shared filter never ran"
    assert max(counts.values()) == 1
    assert sum(counts.values()) == multi.shared.filter_computations
    # Standalone, each query would have paid its own evaluation per frame.
    attributed_filter_calls = sum(
        result.stats.filter_invocations for result in multi.results
    )
    assert attributed_filter_calls > multi.shared.filter_computations


def test_cascade_steps_merge_across_queries(trained_od_filter, tiny_jackson):
    planner = QueryPlanner({"od": trained_od_filter}, PlannerConfig(count_tolerance=1))
    same_a = QueryBuilder("a").count("car").at_least(1).build()
    same_b = QueryBuilder("b").count("car").at_least(1).build()
    different = QueryBuilder("c").count("person").at_least(1).build()
    cascades = [planner.plan(query) for query in (same_a, same_b, different)]
    unique_steps, assignments = merge_cascade_steps(cascades)
    assert len(unique_steps) == 2
    assert assignments == [[0], [0], [1]]
    multi = _executor(tiny_jackson.class_names).execute_many(
        [same_a, same_b, different], tiny_jackson.test, cascades, batch_size=16
    )
    assert multi.shared.unique_steps == 2
    assert multi.shared.total_steps == 3
    # Identical queries produce identical results out of the shared run.
    assert multi[0].matched_frames == multi[1].matched_frames


def test_execute_many_shared_cost_report(workload, tiny_jackson):
    queries, cascades = workload
    multi = _executor(tiny_jackson.class_names).execute_many(
        queries, tiny_jackson.test, cascades, batch_size=16
    )
    report = multi.shared.cost
    assert set(report.attributed) == {query.name for query in queries}
    # Sharing can only reduce cost; with four queries over one filter the
    # reduction must be strict.
    assert report.shared_ms < report.standalone_ms
    assert report.savings_ratio > 1.0
    assert multi.shared.savings_ratio == report.savings_ratio
    # The attributed total for each query equals its standalone simulated cost
    # (verified against execute() in the parity test); the shared breakdown
    # never exceeds any component's attributed sum.
    for component, ms in report.shared.per_component_ms.items():
        attributed_ms = sum(
            breakdown.per_component_ms.get(component, 0.0)
            for breakdown in report.attributed.values()
        )
        assert ms <= attributed_ms + 1e-9


def test_execute_many_with_planner_and_result_lookup(
    trained_od_filter, tiny_jackson
):
    planner = QueryPlanner({"od": trained_od_filter}, PlannerConfig(count_tolerance=1))
    queries = [
        QueryBuilder("only_cars").count("car").at_least(1).build(),
        QueryBuilder("only_people").count("person").at_least(1).build(),
    ]
    executor = _executor(tiny_jackson.class_names)
    multi = executor.execute_many(queries, tiny_jackson.test, planner=planner, batch_size=16)
    assert multi.result_for("only_cars").cascade_description.startswith("OD-")
    with pytest.raises(KeyError):
        multi.result_for("missing")
    for query, result in zip(queries, multi):
        solo = _executor(tiny_jackson.class_names).execute(
            query, tiny_jackson.test, planner.plan(query), batch_size=16
        )
        assert result.matched_frames == solo.matched_frames


def test_execute_many_brute_force_shares_detector(tiny_jackson):
    """With no cascades every query runs brute force, but the detector still runs once per frame."""
    queries = [
        QueryBuilder("cars").count("car").at_least(1).build(),
        QueryBuilder("people").count("person").at_least(1).build(),
        QueryBuilder("both").count("car").at_least(1).count("person").at_least(1).build(),
    ]
    multi = _executor(tiny_jackson.class_names).execute_many(queries, tiny_jackson.test)
    assert multi.shared.detector_invocations == len(tiny_jackson.test)
    for query, result in zip(queries, multi):
        solo = brute_force_execute(
            query,
            tiny_jackson.test,
            ReferenceDetector(class_names=tiny_jackson.class_names, seed=77),
        )
        assert result.matched_frames == solo.matched_frames
        assert result.stats.detector_invocations == solo.stats.detector_invocations


def test_execute_many_validation(tiny_jackson, workload):
    queries, cascades = workload
    executor = _executor(tiny_jackson.class_names)
    with pytest.raises(ValueError):
        executor.execute_many([], tiny_jackson.test)
    with pytest.raises(ValueError):
        executor.execute_many(queries, tiny_jackson.test, cascades[:1])
    with pytest.raises(ValueError):
        executor.execute_many(queries, tiny_jackson.test, cascades, batch_size=0)


def test_execute_shared_clock_accumulates_across_runs(tiny_jackson):
    """Regression: execute() must not wipe a caller-supplied shared clock.

    A shared clock passed to several executions (e.g. via
    ``brute_force_execute(clock=...)``) accumulates total cost across runs,
    while each run's own stats report only its delta.
    """
    clock = SimulatedClock()
    query = QueryBuilder("cars").count("car").at_least(1).build()
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=77)
    indices = range(0, 10)
    first = brute_force_execute(
        query, tiny_jackson.test, detector, frame_indices=indices, clock=clock
    )
    after_first = clock.elapsed_ms
    assert after_first == pytest.approx(first.stats.simulated_cost.total_ms)
    second = brute_force_execute(
        query, tiny_jackson.test, detector, frame_indices=indices, clock=clock
    )
    # The clock kept the first run's cost and added the second's...
    assert clock.elapsed_ms == pytest.approx(
        first.stats.simulated_cost.total_ms + second.stats.simulated_cost.total_ms
    )
    # ...while each run's own breakdown is its delta, not the running total.
    assert second.stats.simulated_cost.total_ms == pytest.approx(after_first)
    assert clock.breakdown.per_component_calls["mask_rcnn"] == 20


def test_execute_many_respects_shared_clock(workload, tiny_jackson):
    queries, cascades = workload
    clock = SimulatedClock()
    clock.charge("pre_existing", 123.0)
    executor = StreamingQueryExecutor(
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=77), clock=clock
    )
    multi = executor.execute_many(queries, tiny_jackson.test, cascades, batch_size=16)
    # The pre-existing charge survives and is not part of the shared report.
    assert clock.breakdown.per_component_ms["pre_existing"] == 123.0
    assert "pre_existing" not in multi.shared.cost.shared.per_component_ms
