"""Tests for object classes, appearance sampling and motion models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.spatial.geometry import Point
from repro.video.motion import LinearMotion, ParkedMotion, WanderMotion, WaypointMotion
from repro.video.objects import (
    NAMED_COLORS,
    AppearanceModel,
    TrackedObject,
    default_class_registry,
)


def test_registry_contains_expected_classes():
    registry = default_class_registry()
    for name in ("car", "bus", "truck", "person", "fish", "bicycle"):
        assert name in registry
        assert registry[name].name == name
    assert registry["car"].appearance.shape == "rectangle"
    assert registry["person"].appearance.shape == "ellipse"


def test_appearance_validation():
    with pytest.raises(ValueError):
        AppearanceModel(shape="blob", width_range=(5, 10), aspect_ratio_range=(1, 2), color_names=("red",))
    with pytest.raises(ValueError):
        AppearanceModel(shape="ellipse", width_range=(10, 5), aspect_ratio_range=(1, 2), color_names=("red",))
    with pytest.raises(ValueError):
        AppearanceModel(shape="ellipse", width_range=(5, 10), aspect_ratio_range=(1, 2), color_names=("neon",))
    with pytest.raises(ValueError):
        AppearanceModel(
            shape="ellipse",
            width_range=(5, 10),
            aspect_ratio_range=(1, 2),
            color_names=("red", "blue"),
            color_weights=(1.0,),
        )


def test_appearance_sampling_respects_ranges(rng):
    appearance = default_class_registry()["car"].appearance
    for _ in range(50):
        width, height, color = appearance.sample(rng)
        assert appearance.width_range[0] <= width <= appearance.width_range[1]
        assert color in NAMED_COLORS
        ratio = height / width
        assert appearance.aspect_ratio_range[0] <= ratio <= appearance.aspect_ratio_range[1]


def test_linear_motion():
    motion = LinearMotion(start=Point(0, 0), velocity=(2.0, -1.0))
    assert motion.position_at(0) == Point(0, 0)
    assert motion.position_at(10) == Point(20, -10)
    with pytest.raises(ValueError):
        motion.position_at(-1)


def test_parked_motion_is_stationary_and_deterministic():
    motion = ParkedMotion(position=Point(5, 5), jitter=0.5, seed=3)
    assert motion.position_at(7) == motion.position_at(7)
    still = ParkedMotion(position=Point(5, 5), jitter=0.0)
    assert still.position_at(100) == Point(5, 5)


def test_wander_motion_stays_near_anchor():
    motion = WanderMotion(anchor=Point(50, 50), radius=10, seed=1)
    for age in range(0, 200, 10):
        position = motion.position_at(age)
        assert abs(position.x - 50) <= 10 + 1e-9
        assert abs(position.y - 50) <= 10 + 1e-9


def test_waypoint_motion_follows_polyline():
    motion = WaypointMotion(waypoints=(Point(0, 0), Point(10, 0), Point(10, 10)), speed=1.0)
    assert motion.position_at(0) == Point(0, 0)
    assert motion.position_at(10) == Point(10, 0)
    assert motion.position_at(15) == Point(10, 5)
    # Past the last waypoint, keeps going in the final direction.
    beyond = motion.position_at(25)
    assert beyond.x == pytest.approx(10)
    assert beyond.y > 10
    with pytest.raises(ValueError):
        WaypointMotion(waypoints=(Point(0, 0),), speed=1.0)
    with pytest.raises(ValueError):
        WaypointMotion(waypoints=(Point(0, 0), Point(1, 1)), speed=0.0)


def test_tracked_object_lifetime_and_states():
    registry = default_class_registry()
    track = TrackedObject(
        track_id=1,
        object_class=registry["car"],
        width=40,
        height=20,
        color_name="blue",
        spawn_frame=10,
        despawn_frame=20,
        motion=LinearMotion(start=Point(0, 100), velocity=(5, 0)),
    )
    assert not track.alive_at(9)
    assert track.alive_at(10)
    assert not track.alive_at(20)
    assert track.state_at(5) is None
    state = track.state_at(12)
    assert state is not None
    assert state.class_name == "car"
    assert state.color_name == "blue"
    assert state.box.center.x == pytest.approx(10.0)
    assert state.center == state.box.center


@given(st.floats(-50, 50), st.floats(-50, 50), st.integers(0, 100))
def test_linear_motion_is_additive(vx, vy, age):
    motion = LinearMotion(start=Point(1.0, 2.0), velocity=(vx, vy))
    position = motion.position_at(age)
    assert position.x == pytest.approx(1.0 + vx * age)
    assert position.y == pytest.approx(2.0 + vy * age)
