"""Parallel pipelined execution engine: parity, re-planning, infrastructure.

The engine's core promise is *bit-identical output under concurrency*: for
every execution path (plain, windowed, multi-query, temporal-exact) and both
backends (thread, process), running with ``ParallelConfig`` must return
exactly the frames, windows and work counters of the sequential path.  The
adaptive re-planner's promise is weaker on costs but equally strict on
output: reorders change where filter milliseconds go, never which frames
match, and every reorder leaves a ``PlanRevision`` trace.

Run with ``pytest -m parallel`` (CI runs this module as its own job).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cost import merge_worker_breakdowns
from repro.detection import ReferenceDetector
from repro.query import (
    CascadeStep,
    FilterCascade,
    ParallelConfig,
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    TemporalConfig,
    merge_cascade_steps,
)
from repro.aggregates.monitor import AggregateQuerySpec

pytestmark = pytest.mark.parallel

BACKENDS = ("thread", "process")


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def planner(trained_od_filter, trained_od_cof):
    return QueryPlanner(
        {"od": trained_od_filter, "od_cof": trained_od_cof},
        PlannerConfig(count_tolerance=1, location_dilation=1),
    )


@pytest.fixture(scope="module")
def stream(tiny_jackson):
    return tiny_jackson.test


def executor(tiny_jackson):
    return StreamingQueryExecutor(
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=42)
    )


def count_query(name="plain"):
    return QueryBuilder(name).count("car").at_least(1).build()


def mixed_query(name="mixed"):
    return (
        QueryBuilder(name).count("car").at_least(1).count(None).at_most(4).build()
    )


def windowed_query(name="windowed"):
    return QueryBuilder(name).count("car").at_least(1).window(20, 10).build()


def assert_same_result(parallel_result, baseline_result):
    """Bit-identical output and work counters (costs equal to float rounding)."""
    assert parallel_result.matched_frames == baseline_result.matched_frames
    assert parallel_result.windows == baseline_result.windows
    ps, bs = parallel_result.stats, baseline_result.stats
    assert ps.frames_scanned == bs.frames_scanned
    assert ps.frames_passed_filters == bs.frames_passed_filters
    assert ps.detector_invocations == bs.detector_invocations
    assert ps.filter_invocations == bs.filter_invocations
    assert (
        ps.simulated_cost.per_component_calls == bs.simulated_cost.per_component_calls
    )
    assert ps.simulated_cost.total_ms == pytest.approx(bs.simulated_cost.total_ms)


# ----------------------------------------------------------------------
# Bit-identical parity, both backends, all paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_parity_plain(tiny_jackson, stream, planner, backend):
    query = mixed_query()
    cascade = planner.plan(query)
    baseline = executor(tiny_jackson).execute(query, stream, cascade, batch_size=8)
    parallel = executor(tiny_jackson).execute(
        query,
        stream,
        cascade,
        parallel=ParallelConfig(num_workers=4, backend=backend, chunk_size=8),
    )
    assert_same_result(parallel, baseline)
    assert parallel.stats.parallel is not None
    assert parallel.stats.parallel.backend == backend
    assert parallel.stats.parallel.num_chunks == -(-len(stream) // 8)
    assert parallel.stats.plan_revisions == ()


@pytest.mark.parametrize("backend", BACKENDS)
def test_parity_windowed(tiny_jackson, stream, planner, backend):
    query = windowed_query()
    cascade = planner.plan(query)
    baseline = executor(tiny_jackson).execute(query, stream, cascade, batch_size=8)
    parallel = executor(tiny_jackson).execute(
        query,
        stream,
        cascade,
        parallel=ParallelConfig(num_workers=3, backend=backend, chunk_size=8),
    )
    assert baseline.windows  # the query really is windowed
    assert_same_result(parallel, baseline)


@pytest.mark.parametrize("backend", BACKENDS)
def test_parity_multi_query(tiny_jackson, stream, planner, backend):
    queries = [mixed_query("q0"), count_query("q1"), windowed_query("q2")]
    cascades = [planner.plan(query) for query in queries]
    baseline = executor(tiny_jackson).execute_many(
        queries, stream, cascades, batch_size=8
    )
    parallel = executor(tiny_jackson).execute_many(
        queries,
        stream,
        cascades,
        parallel=ParallelConfig(num_workers=4, backend=backend, chunk_size=8),
    )
    for parallel_result, baseline_result in zip(parallel, baseline):
        assert_same_result(parallel_result, baseline_result)
    assert parallel.shared.frames_scanned == baseline.shared.frames_scanned
    assert parallel.shared.detector_invocations == baseline.shared.detector_invocations
    assert parallel.shared.filter_computations == baseline.shared.filter_computations
    assert (
        parallel.shared.cost.shared.per_component_calls
        == baseline.shared.cost.shared.per_component_calls
    )
    assert parallel.shared.parallel is not None
    assert parallel.shared.parallel.num_workers == 4


@pytest.mark.parametrize("backend", BACKENDS)
def test_parity_temporal_exact(tiny_jackson, stream, planner, backend):
    query = count_query("temporal")
    cascade = planner.plan(query)
    temporal = TemporalConfig(
        delta_threshold=30.0, max_stride=4, keyframe_interval=10, exact=True
    )
    plain = executor(tiny_jackson).execute(query, stream, cascade)
    baseline = executor(tiny_jackson).execute(query, stream, cascade, temporal=temporal)
    parallel = executor(tiny_jackson).execute(
        query,
        stream,
        cascade,
        temporal=temporal,
        parallel=ParallelConfig(num_workers=2, backend=backend, chunk_size=8),
    )
    # Temporal-exact composes with parallel prefetch: identical to both the
    # temporal baseline and the plain scan.
    assert parallel.matched_frames == baseline.matched_frames == plain.matched_frames
    assert parallel.temporal is not None
    assert parallel.temporal.frames_total == baseline.temporal.frames_total
    assert parallel.temporal.frames_reused == baseline.temporal.frames_reused
    # Prefetch-only composition: no filter chunks ran on workers.
    assert parallel.stats.parallel.num_chunks == 0
    assert parallel.stats.parallel.cost.per_worker == ()


@pytest.mark.parametrize("backend", BACKENDS)
def test_parity_temporal_multi_query(tiny_jackson, stream, planner, backend):
    queries = [count_query("t0"), windowed_query("t1")]
    cascades = [planner.plan(query) for query in queries]
    temporal = TemporalConfig(
        delta_threshold=30.0, max_stride=4, keyframe_interval=10, exact=True
    )
    baseline = executor(tiny_jackson).execute_many(
        queries, stream, cascades, temporal=temporal
    )
    parallel = executor(tiny_jackson).execute_many(
        queries,
        stream,
        cascades,
        temporal=temporal,
        parallel=ParallelConfig(num_workers=2, backend=backend),
    )
    for parallel_result, baseline_result in zip(parallel, baseline):
        assert parallel_result.matched_frames == baseline_result.matched_frames
        assert parallel_result.windows == baseline_result.windows
    assert parallel.shared.temporal.frames_reused == baseline.shared.temporal.frames_reused


# ----------------------------------------------------------------------
# Aggregate composition
# ----------------------------------------------------------------------
def test_aggregate_estimates_unchanged_by_parallel(tiny_jackson, stream, planner):
    from repro.aggregates.controls import class_count_control

    query = count_query("agg")
    cascade = planner.plan(query)
    spec = AggregateQuerySpec(
        name="avg-cars",
        exact_value=lambda detections: float(detections.count_of("car")),
        control_values=[class_count_control("car")],
    )
    baseline = executor(tiny_jackson).execute_aggregate(
        spec, stream, cascade, sample_size=20, repetitions=2, seed=7
    )
    parallel = executor(tiny_jackson).execute_aggregate(
        spec,
        stream,
        cascade,
        sample_size=20,
        repetitions=2,
        seed=7,
        parallel=ParallelConfig(num_workers=2, chunk_size=8),
    )
    for parallel_report, baseline_report in zip(parallel.reports, baseline.reports):
        assert parallel_report.plain.mean == baseline_report.plain.mean
        assert parallel_report.control_variate.mean == baseline_report.control_variate.mean


# ----------------------------------------------------------------------
# Adaptive re-planning
# ----------------------------------------------------------------------
ADAPTIVE = dict(
    adaptive=True,
    adaptive_window=16,
    adaptive_interval=1,
    adaptive_min_evaluated=8,
    adaptive_margin=1.1,
)


def adaptive_config(backend="thread", **overrides):
    return ParallelConfig(
        num_workers=2, backend=backend, chunk_size=8, **{**ADAPTIVE, **overrides}
    )


def test_adaptive_parity_plain_and_windowed(tiny_jackson, stream, planner):
    for query in (mixed_query("a0"), windowed_query("a1")):
        cascade = planner.plan(query)
        static = executor(tiny_jackson).execute(
            query, stream, cascade,
            parallel=ParallelConfig(num_workers=2, chunk_size=8),
        )
        adaptive = executor(tiny_jackson).execute(
            query, stream, cascade, parallel=adaptive_config()
        )
        assert adaptive.matched_frames == static.matched_frames
        assert adaptive.windows == static.windows


def test_adaptive_parity_multi_query(tiny_jackson, stream, planner):
    queries = [mixed_query("a2"), windowed_query("a3")]
    cascades = [planner.plan(query) for query in queries]
    static = executor(tiny_jackson).execute_many(
        queries, stream, cascades,
        parallel=ParallelConfig(num_workers=2, chunk_size=8),
    )
    adaptive = executor(tiny_jackson).execute_many(
        queries, stream, cascades, parallel=adaptive_config()
    )
    for adaptive_result, static_result in zip(adaptive, static):
        assert adaptive_result.matched_frames == static_result.matched_frames
        assert adaptive_result.windows == static_result.windows


def test_adaptive_parity_temporal(tiny_jackson, stream, planner):
    query = mixed_query("a4")
    cascade = planner.plan(query)
    temporal = TemporalConfig(
        delta_threshold=30.0, max_stride=4, keyframe_interval=10, exact=True
    )
    static = executor(tiny_jackson).execute(query, stream, cascade, temporal=temporal)
    adaptive = executor(tiny_jackson).execute(
        query, stream, cascade, temporal=temporal, parallel=adaptive_config()
    )
    assert adaptive.matched_frames == static.matched_frames


class _PassEverything:
    def __call__(self, prediction):
        return True


class _RejectEverything:
    def __call__(self, prediction):
        return False


def misestimated_cascade(trained_od_filter, trained_od_cof) -> FilterCascade:
    """A cascade whose planned order is maximally wrong.

    The leading step rejects nothing (its planning-time estimate claimed it
    was selective), the trailing step rejects everything.  A correct runtime
    re-planner must flip them, after which the leading filter stops being
    evaluated at all.
    """
    return FilterCascade(
        steps=[
            CascadeStep(
                name="useless-first",
                frame_filter=trained_od_filter,
                check=_PassEverything(),
                measured_pass_rate=0.05,  # the lie the planner believed
                measured_cost_ms=trained_od_filter.latency_ms,
            ),
            CascadeStep(
                name="selective-last",
                frame_filter=trained_od_cof,
                check=_RejectEverything(),
                measured_pass_rate=0.95,
                measured_cost_ms=trained_od_cof.latency_ms,
            ),
        ]
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_misestimated_cascade_triggers_revision(
    tiny_jackson, stream, trained_od_filter, trained_od_cof, backend
):
    query = count_query("mis")
    cascade = misestimated_cascade(trained_od_filter, trained_od_cof)
    static = executor(tiny_jackson).execute(
        query, stream, cascade,
        parallel=ParallelConfig(num_workers=2, backend=backend, chunk_size=8),
    )
    adaptive = executor(tiny_jackson).execute(
        query, stream, cascade, parallel=adaptive_config(backend=backend)
    )
    # The reorder is observable...
    assert len(adaptive.stats.plan_revisions) >= 1
    revision = adaptive.stats.plan_revisions[0]
    assert revision.old_order == (0, 1)
    assert revision.new_order == (1, 0)
    assert revision.step_names == ("useless-first", "selective-last")
    assert revision.expected_gain >= 1.1
    assert "useless-first" in revision.describe()
    # ...saves filter work...
    assert adaptive.stats.filter_invocations < static.stats.filter_invocations
    # ...and never changes the output.
    assert adaptive.matched_frames == static.matched_frames
    assert static.stats.plan_revisions == ()


def test_adaptive_revision_in_temporal_path(
    tiny_jackson, stream, trained_od_filter, trained_od_cof
):
    query = count_query("mis-temporal")
    cascade = misestimated_cascade(trained_od_filter, trained_od_cof)
    temporal = TemporalConfig(delta_threshold=30.0, keyframe_interval=10, exact=True)
    static = executor(tiny_jackson).execute(query, stream, cascade, temporal=temporal)
    adaptive = executor(tiny_jackson).execute(
        query, stream, cascade, temporal=temporal,
        parallel=adaptive_config(adaptive_min_evaluated=4),
    )
    assert len(adaptive.stats.plan_revisions) >= 1
    assert adaptive.matched_frames == static.matched_frames


def test_queryplanner_replan_reorders_and_annotates(
    trained_od_filter, trained_od_cof
):
    cascade = misestimated_cascade(trained_od_filter, trained_od_cof)
    # Observed evidence contradicts the planning-time estimates: the first
    # step passes everything, the second rejects everything.
    replanned = QueryPlanner.replan(cascade, [1.0, 0.0])
    assert [step.name for step in replanned.steps] == [
        "selective-last",
        "useless-first",
    ]
    # Steps are re-annotated with the observed rates...
    assert replanned.steps[0].measured_pass_rate == 0.0
    assert replanned.steps[1].measured_pass_rate == 1.0
    # ...and the output set is untouched: same filters, same checks.
    assert {step.check for step in replanned.steps} == {
        step.check for step in cascade.steps
    }
    # Unobserved steps (rate None) sort to the back and keep their annotation.
    partial = QueryPlanner.replan(cascade, [None, 0.0])
    assert [step.name for step in partial.steps] == [
        "selective-last",
        "useless-first",
    ]
    assert partial.steps[1].measured_pass_rate == 0.05
    # Replanning with agreeing rates is a stable no-op on the order.
    unchanged = QueryPlanner.replan(cascade, [0.05, 0.95])
    assert [step.name for step in unchanged.steps] == [
        "useless-first",
        "selective-last",
    ]
    with pytest.raises(ValueError, match="rates"):
        QueryPlanner.replan(cascade, [0.5])


def test_profiler_replanned_cascade_matches_order(
    trained_od_filter, trained_od_cof
):
    from repro.query import CascadeProfiler

    cascade = misestimated_cascade(trained_od_filter, trained_od_cof)
    profiler = CascadeProfiler(cascade, adaptive_config())
    for _ in range(4):
        profiler.observe([(8, 8), (8, 0)], at_frame=0)
    assert profiler.order == (1, 0)
    # The cascade object the profiler exposes agrees with the order it runs.
    assert [step.name for step in profiler.replanned_cascade().steps] == [
        cascade.steps[position].name for position in profiler.order
    ]


# ----------------------------------------------------------------------
# Cost accounting and infrastructure
# ----------------------------------------------------------------------
def test_per_worker_cost_report(tiny_jackson, stream, planner):
    query = mixed_query("cost")
    cascade = planner.plan(query)
    baseline = executor(tiny_jackson).execute(query, stream, cascade, batch_size=8)
    parallel = executor(tiny_jackson).execute(
        query, stream, cascade,
        parallel=ParallelConfig(num_workers=3, chunk_size=8),
    )
    report = parallel.stats.parallel.cost
    assert 1 <= report.num_workers <= 3
    merged = merge_worker_breakdowns(report.per_worker)
    # The workers' merged filter cost is exactly the run's filter cost:
    # total cost minus the detector's share, which the main process charged.
    detector_name = "mask_rcnn"
    expected = {
        name: calls
        for name, calls in baseline.stats.simulated_cost.per_component_calls.items()
        if name != detector_name
    }
    assert merged.per_component_calls == expected
    assert report.simulated_seconds == pytest.approx(
        sum(
            ms
            for name, ms in baseline.stats.simulated_cost.per_component_ms.items()
            if name != detector_name
        )
        / 1000.0
    )
    assert report.wall_clock_seconds > 0.0
    assert report.simulated_over_wall > 0.0
    assert 0.0 < report.balance <= 1.0


def test_process_backend_rejects_unpicklable_cascade(tiny_jackson, stream, trained_od_filter):
    cascade = FilterCascade(
        steps=[
            CascadeStep(
                name="lambda-step",
                frame_filter=trained_od_filter,
                check=lambda prediction: True,
            )
        ]
    )
    with pytest.raises(ValueError, match="thread"):
        executor(tiny_jackson).execute(
            count_query("unpicklable"),
            stream,
            cascade,
            parallel=ParallelConfig(num_workers=2, backend="process"),
        )


def test_parallel_config_validation():
    with pytest.raises(ValueError):
        ParallelConfig(num_workers=0)
    with pytest.raises(ValueError):
        ParallelConfig(backend="gpu")
    with pytest.raises(ValueError):
        ParallelConfig(chunk_size=0)
    with pytest.raises(ValueError):
        ParallelConfig(prefetch_depth=-1)
    with pytest.raises(ValueError):
        ParallelConfig(adaptive_margin=0.5)


def test_batch_size_overrides_chunk_size(tiny_jackson, stream, planner):
    query = count_query("chunk")
    cascade = planner.plan(query)
    result = executor(tiny_jackson).execute(
        query, stream, cascade, batch_size=5,
        parallel=ParallelConfig(num_workers=2, chunk_size=16),
    )
    assert result.stats.parallel.chunk_size == 5
    assert result.stats.batch_size == 5


def test_frame_prefetcher_window_is_bounded(single_object_stream):
    from repro.query.parallel import FramePrefetcher

    stream = single_object_stream
    indices = list(range(len(stream)))  # 40 frames
    prefetcher = FramePrefetcher(stream, indices, depth=4, threads=1)
    try:
        # A striding consumer (approximate temporal mode) touches a sparse
        # subsequence; the prefetcher must not retain results for the
        # skipped indices behind the scan head.
        for index in range(0, len(stream), 8):
            frame = prefetcher.frame(index)
            assert frame.index == index
        retained = len(prefetcher._futures)
        assert retained <= 2 * 4 + 1, retained
        # Backward (refinement-probe) requests still work via fall-through.
        assert prefetcher.frame(1).index == 1
    finally:
        prefetcher.close()


# ----------------------------------------------------------------------
# Satellite: thread-safe frame cache
# ----------------------------------------------------------------------
def test_frame_cache_concurrent_access(single_object_stream):
    stream = single_object_stream
    errors: list[Exception] = []

    def hammer(seed: int) -> None:
        rng = np.random.default_rng(seed)
        try:
            for _ in range(200):
                index = int(rng.integers(0, len(stream)))
                frame = stream.frame(index)
                assert frame.index == index
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # Identity-stable cached lookups survive the concurrency.
    assert stream.frame(0) is stream.frame(0)


def test_frame_cache_zero_bypasses_cache(tiny_jackson):
    from repro.video.stream import VideoStream

    base = tiny_jackson.test
    uncached = VideoStream(
        scene=base.scene,
        renderer=base.renderer,
        fps=base.fps,
        name="uncached",
        frame_cache_size=0,
    )
    first = uncached.frame(3)
    second = uncached.frame(3)
    assert first is not second
    assert np.array_equal(first.image, second.image)


# ----------------------------------------------------------------------
# Satellite: deterministic cascade-step merging
# ----------------------------------------------------------------------
def test_merge_cascade_steps_order_independent(planner):
    query_a = mixed_query("m0")
    query_b = windowed_query("m1")
    cascade_a, cascade_b = planner.plan(query_a), planner.plan(query_b)
    forward_steps, forward_assignments = merge_cascade_steps([cascade_a, cascade_b])
    reverse_steps, reverse_assignments = merge_cascade_steps([cascade_b, cascade_a])
    # The merged step list is a pure function of the step *set*, not of the
    # submission order.
    assert [step.name for step in forward_steps] == [
        step.name for step in reverse_steps
    ]
    assert [step.signature for step in forward_steps] == [
        step.signature for step in reverse_steps
    ]
    # Assignments still point each cascade at the same unique steps.
    assert forward_assignments[0] == reverse_assignments[1]
    assert forward_assignments[1] == reverse_assignments[0]
    # Sorted by (cost, name, signature): latencies ascend.
    latencies = [step.frame_filter.latency_ms for step in forward_steps]
    assert latencies == sorted(latencies)


# ----------------------------------------------------------------------
# Satellite: prefetcher shutdown on error paths (no leaked threads)
# ----------------------------------------------------------------------
class _FaultyStream:
    """Delegates to a real stream but raises when rendering one frame."""

    def __init__(self, base, fail_at):
        self._base = base
        self._fail_at = fail_at

    def __len__(self):
        return len(self._base)

    def frame(self, index):
        if index == self._fail_at:
            raise RuntimeError(f"injected decode failure at frame {index}")
        return self._base.frame(index)

    def __getattr__(self, name):
        return getattr(self._base, name)


def _live_prefetch_threads():
    return [
        thread
        for thread in threading.enumerate()
        if thread.is_alive()
        and not thread.daemon
        and ("decode-ahead" in thread.name or "filter-worker" in thread.name)
    ]


@pytest.mark.parametrize("fail_at", [0, 30])
def test_chunk_failure_does_not_leak_prefetch_threads(
    planner, stream, tiny_jackson, fail_at
):
    query = count_query()
    faulty = _FaultyStream(stream, fail_at=fail_at)
    config = ParallelConfig(num_workers=2, backend="thread", chunk_size=8)
    with pytest.raises(RuntimeError, match="injected decode failure"):
        executor(tiny_jackson).execute(query, faulty, planner.plan(query), parallel=config)
    assert _live_prefetch_threads() == []


def test_temporal_chunk_failure_does_not_leak_prefetch_threads(
    planner, stream, tiny_jackson
):
    query = count_query()
    faulty = _FaultyStream(stream, fail_at=20)
    with pytest.raises(RuntimeError, match="injected decode failure"):
        executor(tiny_jackson).execute(
            query, faulty, planner.plan(query), temporal=TemporalConfig(exact=True)
        )
    assert _live_prefetch_threads() == []


def test_execute_many_chunk_failure_does_not_leak_prefetch_threads(
    planner, stream, tiny_jackson
):
    queries = [count_query("q0"), mixed_query("q1")]
    cascades = [planner.plan(query) for query in queries]
    faulty = _FaultyStream(stream, fail_at=25)
    config = ParallelConfig(num_workers=2, backend="thread", chunk_size=8)
    with pytest.raises(RuntimeError, match="injected decode failure"):
        executor(tiny_jackson).execute_many(queries, faulty, cascades, parallel=config)
    assert _live_prefetch_threads() == []


def test_prefetcher_close_is_idempotent(stream):
    from repro.query.parallel import ChunkPrefetcher, FramePrefetcher

    chunks = [list(range(0, 8)), list(range(8, 16))]
    chunked = ChunkPrefetcher(stream, chunks, depth=1, threads=1)
    assert [frame.index for frame in chunked.get(0)] == chunks[0]
    chunked.close()
    chunked.close()  # second close is a no-op, not an error

    framed = FramePrefetcher(stream, list(range(8)), depth=4, threads=1)
    assert framed.frame(0).index == 0
    framed.close()
    framed.close()
    assert _live_prefetch_threads() == []
