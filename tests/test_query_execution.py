"""Integration tests for predicate evaluation, planning and streaming execution."""

from __future__ import annotations

import pytest

from repro.detection import ReferenceDetector
from repro.detection.base import Detection, FrameDetections
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    brute_force_execute,
    evaluate_predicates_on_detections,
)
from repro.query.evaluation import evaluate_query_on_ground_truth
from repro.query.planner import FilterCascade
from repro.spatial.geometry import Box
from repro.spatial.regions import Quadrant, quadrant_region


def _detections(*specs) -> FrameDetections:
    detections = tuple(
        Detection(class_name=name, box=box, score=0.9, color_name=color)
        for name, box, color in specs
    )
    return FrameDetections(
        frame_index=0, detections=detections, latency_ms=0.0, detector_name="test"
    )


def test_evaluate_predicates_on_detections():
    frame = _detections(
        ("car", Box.from_center(30, 80, 20, 10), "blue"),
        ("bus", Box.from_center(80, 80, 30, 15), "yellow"),
        ("person", Box.from_center(20, 20, 5, 12), "red"),
    )
    satisfied = (
        QueryBuilder("ok")
        .count("car").equals(1)
        .count("bus").at_least(1)
        .spatial("car").left_of("bus")
        .color("person", "red")
        .in_quadrant("person", Quadrant.UPPER_LEFT, 100, 100).at_least(1)
        .build()
    )
    assert evaluate_predicates_on_detections(satisfied, frame)
    violated = QueryBuilder("no").spatial("bus").left_of("car").build()
    assert not evaluate_predicates_on_detections(violated, frame)
    wrong_color = QueryBuilder("no2").color("car", "red").build()
    assert not evaluate_predicates_on_detections(wrong_color, frame)
    not_enough = QueryBuilder("no3").count("person").equals(2).build()
    assert not evaluate_predicates_on_detections(not_enough, frame)


def test_evaluate_query_on_ground_truth(tiny_jackson):
    query = QueryBuilder("any").count().at_least(0).build()
    truth = tiny_jackson.test.ground_truth(0)
    assert evaluate_query_on_ground_truth(query, truth)


def test_planner_builds_expected_cascade(trained_od_filter, trained_ic_filter, trained_od_cof):
    filters = {"od": trained_od_filter, "ic": trained_ic_filter, "od_cof": trained_od_cof}
    query = (
        QueryBuilder("q")
        .count("car").equals(1)
        .count().at_least(2)
        .spatial("car").left_of("person")
        .build()
    )
    cascade = QueryPlanner(filters, PlannerConfig(count_tolerance=1, location_dilation=2)).plan(query)
    names = [step.name for step in cascade]
    assert names == ["OD-CCF-1", "OD-COF-1", "OD-CLF-2"]
    assert len(cascade.filters) == 2  # OD filter shared by CCF and CLF steps
    # IC-preferring configuration uses the IC filter.
    ic_cascade = QueryPlanner(filters, PlannerConfig(family="ic")).plan(query)
    assert ic_cascade.steps[0].name.startswith("IC-")
    # Disabling both filter kinds yields an empty cascade.
    empty = QueryPlanner(filters, PlannerConfig(use_count_filter=False, use_location_filter=False)).plan(query)
    assert len(empty) == 0
    assert empty.describe() == "(empty)"
    with pytest.raises(ValueError):
        QueryPlanner({}, PlannerConfig())
    with pytest.raises(ValueError):
        PlannerConfig(count_tolerance=-1)
    with pytest.raises(ValueError):
        PlannerConfig(family="yolo")


def test_filtered_execution_matches_brute_force(trained_od_filter, trained_ic_filter, trained_od_cof, tiny_jackson):
    filters = {"od": trained_od_filter, "ic": trained_ic_filter, "od_cof": trained_od_cof}
    query = QueryBuilder("cars").count("car").at_least(1).build()
    cascade = QueryPlanner(filters, PlannerConfig(count_tolerance=1)).plan(query)
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=77)
    executor = StreamingQueryExecutor(detector)
    indices = range(0, 50, 2)
    filtered = executor.execute(query, tiny_jackson.test, cascade, frame_indices=indices)
    brute = brute_force_execute(
        query,
        tiny_jackson.test,
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=77),
        frame_indices=indices,
    )
    accuracy = filtered.accuracy_against(brute.matched_frames)
    # Verification uses the same detector, so no false positives are possible.
    assert accuracy["precision"] == 1.0
    assert accuracy["recall"] >= 0.9
    # The cascade never invokes the detector more often than brute force; its
    # own cost adds at most the (tiny) per-frame filter latency.
    assert filtered.stats.detector_invocations <= brute.stats.detector_invocations
    filter_overhead_s = filtered.stats.filter_invocations * trained_od_filter.latency_ms / 1000.0
    assert filtered.stats.simulated_seconds <= brute.stats.simulated_seconds + filter_overhead_s
    assert filtered.speedup_against(brute) >= 0.9
    assert filtered.stats.filter_selectivity <= 1.0
    assert brute.cascade_description == "(empty)"


def test_execution_stats_and_clock_restoration(trained_od_filter, tiny_jackson):
    query = QueryBuilder("q").count("car").at_least(1).build()
    cascade = QueryPlanner({"od": trained_od_filter}, PlannerConfig()).plan(query)
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=1)
    executor = StreamingQueryExecutor(detector)
    result = executor.execute(query, tiny_jackson.test, cascade, frame_indices=range(10))
    assert result.stats.frames_scanned == 10
    assert result.stats.filter_invocations == 10
    assert result.stats.simulated_cost.per_component_calls.get("od_filter") == 10
    # The executor must not permanently hijack the filter's clock.
    assert trained_od_filter.clock is None
    assert detector.clock is None


def test_execution_stats_empty_semantics():
    """0/0 corner cases must not pretend to be meaningful measurements."""
    import math

    from repro.cost import CostBreakdown
    from repro.query import ExecutionStats, QueryExecutionResult

    def result_with(frames_scanned=0, frames_passed=0):
        stats = ExecutionStats(
            frames_scanned=frames_scanned,
            frames_passed_filters=frames_passed,
            detector_invocations=0,
            filter_invocations=0,
            simulated_cost=CostBreakdown(),
            wall_clock_seconds=0.0,
        )
        return QueryExecutionResult(
            query_name="q", cascade_description="(empty)", matched_frames=(), stats=stats
        )

    empty = result_with()
    # An empty scan has no survival fraction; 0.0 would read "perfectly
    # selective".
    assert math.isnan(empty.stats.filter_selectivity)
    assert result_with(frames_scanned=4, frames_passed=2).stats.filter_selectivity == 0.5
    # Two zero-cost executions are equally fast, not infinitely faster.
    assert empty.speedup_against(result_with()) == 1.0
    # A zero-cost execution against a real one is still infinitely faster.
    other = result_with()
    other.stats.simulated_cost.per_component_ms["mask_rcnn"] = 200.0
    other.stats.simulated_cost.per_component_calls["mask_rcnn"] = 1
    assert empty.speedup_against(other) == float("inf")
    # ...and the real one is 0x "faster" than the free one.
    assert other.speedup_against(empty) == 0.0


def test_empty_cascade_runs_detector_on_every_frame(tiny_jackson):
    query = QueryBuilder("q").count().at_least(0).build()
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=1)
    executor = StreamingQueryExecutor(detector)
    result = executor.execute(query, tiny_jackson.test, FilterCascade(), frame_indices=range(5))
    assert result.stats.detector_invocations == 5
    assert result.num_matches == 5


def test_count_checks_handle_strict_comparisons():
    from repro.query import ComparisonOperator
    from repro.query.planner import _comparison_possible

    # "> value" may hold whenever ">= value + 1" may, widened by the slack.
    assert _comparison_possible(ComparisonOperator.GREATER, 2, 2, 1)
    assert not _comparison_possible(ComparisonOperator.GREATER, 1, 2, 1)
    assert not _comparison_possible(ComparisonOperator.GREATER, 2, 2, 0)
    assert _comparison_possible(ComparisonOperator.LESS, 2, 2, 1)
    assert not _comparison_possible(ComparisonOperator.LESS, 3, 2, 1)
    assert not _comparison_possible(ComparisonOperator.LESS, 2, 2, 0)


def test_strict_count_query_plans_and_executes(trained_od_filter, tiny_jackson):
    query = QueryBuilder("strict").count("car").greater_than(0).build()
    cascade = QueryPlanner(
        {"od": trained_od_filter}, PlannerConfig(count_tolerance=1)
    ).plan(query)
    assert len(cascade) == 1
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=77)
    filtered = StreamingQueryExecutor(detector).execute(query, tiny_jackson.test, cascade)
    brute = brute_force_execute(
        query,
        tiny_jackson.test,
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=77),
    )
    # Verification is exact, so the filtered answer never over-reports.
    assert set(filtered.matched_frames) <= set(brute.matched_frames)
    # "> 0" and ">= 1" are the same question; the exact answers agree.
    at_least = QueryBuilder("relaxed").count("car").at_least(1).build()
    relaxed = brute_force_execute(
        at_least,
        tiny_jackson.test,
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=77),
    )
    assert brute.matched_frames == relaxed.matched_frames
